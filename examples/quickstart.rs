//! Quickstart: rent a simulated bare-metal Xeon, recover its core map, and
//! catalogue it by PPIN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use core_map::core::{verify, CoreMapper};
use core_map::fleet::{CloudFleet, CpuModel, MapRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic simulated cloud: instance 0 of the 24-core Cascade
    // Lake SKU the paper evaluates the covert channel on.
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet.instance(CpuModel::Platinum8259CL, 0)?;
    println!("booted {} (PPIN {})", instance.model(), instance.ppin());

    // Run the paper's three-step methodology: slice eviction sets, OS
    // core <-> CHA discovery, all-pairs traffic observation, ILP
    // reconstruction. Needs root for the MSRs - the machine grants it.
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine)?;

    println!("\nrecovered core map (os_core/cha per tile):");
    println!("{}", map.render());

    // The simulator knows the hidden truth, so we can check ourselves.
    let exact = verify::matches_exactly(&map, instance.floorplan());
    println!("matches hidden ground truth (up to mirror): {exact}");

    // The mapping requires root once per chip; the result is keyed by the
    // PPIN so later user-level tenancies can reuse it.
    let mut registry = MapRegistry::new();
    registry.insert(map);
    let mut json = Vec::new();
    registry.save(&mut json)?;
    println!("registry entry persisted ({} bytes of JSON)", json.len());
    Ok(())
}
