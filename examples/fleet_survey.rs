//! Fleet survey: map a batch of cloud instances and study the diversity of
//! their core location patterns — a scaled-down version of the paper's
//! Sec. III measurement study (the full reproduction lives in
//! `cargo run -p coremap-bench --bin table2_patterns`).
//!
//! ```sh
//! cargo run --release --example fleet_survey
//! ```

use core_map::core::{verify, CoreMapper};
use core_map::fleet::stats::{IdMappingStats, PatternStats};
use core_map::fleet::{CloudFleet, CpuModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = CloudFleet::with_seed(2022);
    let model = CpuModel::Platinum8124M;
    let sample = 12usize;

    println!("surveying {sample} instances of {model}...\n");
    let mut patterns = PatternStats::new();
    let mut id_mappings = IdMappingStats::new();
    let mut verified = 0usize;
    for idx in 0..sample {
        let instance = fleet.instance(model, idx)?;
        let mut machine = instance.boot();
        let map = CoreMapper::new().map(&mut machine)?;
        if verify::matches_relative(&map, instance.floorplan()) {
            verified += 1;
        }
        patterns.record(&map);
        id_mappings.record(&map);
    }

    println!("distinct location patterns: {}", patterns.unique_patterns());
    println!("pattern frequencies (desc): {:?}", patterns.top_counts(8));
    println!(
        "distinct OS-core<->CHA mappings: {}",
        id_mappings.unique_mappings()
    );
    let (mapping, count) = &id_mappings.rows()[0];
    println!(
        "dominant ID mapping ({count} insts): {:?}",
        &mapping[..mapping.len().min(12)]
    );
    println!("ground-truth verified: {verified}/{sample}");
    println!(
        "\nEven this small sample shows the paper's core finding: instances\n\
         of one SKU do not share a single physical layout, while all of them\n\
         share the same (stride-4 grouped) ID mapping."
    );
    Ok(())
}
