//! Custom targets end to end: a user-supplied topology file driven
//! through a custom `MachineBackend`.
//!
//! Two seams make the engine retargetable beyond the paper's three Xeon
//! SKUs:
//!
//! * **Topology** (`coremap-topology/v1`): the die is data, not code.
//!   This example loads `examples/topologies/tutorial-3x4.json` — a 3x4
//!   teaching mesh with one harvested tile and one LLC-only tile — and
//!   builds its floorplan with
//!   [`FloorplanBuilder::from_topology`](core_map::mesh::FloorplanBuilder).
//! * **Backend**: the pipeline is generic over
//!   [`core_map::core::backend::MachineBackend`], the trait a
//!   real-hardware backend implements (see its docs for the bare-metal
//!   Linux recipe). Here the simulator is wrapped in an *instrumenting*
//!   backend that counts every primitive the methodology invokes.
//!
//! The mapper then runs with a topology *hypothesis set* — the custom die
//! plus the builtin zoo — and must identify the custom topology from the
//! trace alone, yielding both the winning hypothesis and the
//! measurement-cost profile of the attack.
//!
//! ```sh
//! cargo run --release --example custom_target
//! ```

use std::cell::Cell;

use core_map::core::backend::MachineBackend;
use core_map::core::{CoreMapper, MapperConfig};
use core_map::mesh::{ChaId, FloorplanBuilder, GridDim, OsCoreId, Topology};
use core_map::uncore::{MachineConfig, MsrError, PhysAddr, XeonMachine};

/// Counts how often each `MachineBackend` primitive is used.
#[derive(Default)]
struct Profile {
    msr_reads: Cell<u64>,
    msr_writes: Cell<u64>,
    line_reads: Cell<u64>,
    line_writes: Cell<u64>,
    flushes: Cell<u64>,
}

/// A backend that delegates to the simulator while profiling the calls —
/// on real hardware the same wrapper would measure syscall and pinning
/// overhead.
struct InstrumentedTarget {
    inner: XeonMachine,
    profile: Profile,
}

impl MachineBackend for InstrumentedTarget {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        self.profile.msr_reads.set(self.profile.msr_reads.get() + 1);
        self.inner.read_msr(addr)
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.profile
            .msr_writes
            .set(self.profile.msr_writes.get() + 1);
        self.inner.write_msr(addr, value)
    }

    fn cha_count(&self) -> usize {
        self.inner.cha_count()
    }

    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.inner.os_cores()
    }

    fn grid_dim(&self) -> GridDim {
        self.inner.grid_dim()
    }

    fn l2_geometry(&self) -> (usize, usize) {
        self.inner.l2_geometry()
    }

    fn address_space(&self) -> u64 {
        self.inner.address_space()
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        self.inner.home_of(pa)
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.profile
            .line_writes
            .set(self.profile.line_writes.get() + 1);
        self.inner.write_line(core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.profile
            .line_reads
            .set(self.profile.line_reads.get() + 1);
        self.inner.read_line(core, pa);
    }

    fn flush_caches(&mut self) {
        self.profile.flushes.set(self.profile.flushes.get() + 1);
        self.inner.flush_caches();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The target die is a data file, not a code change.
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/topologies/tutorial-3x4.json"
    ))?;
    let topology = Topology::from_json(&json)?;
    let plan = FloorplanBuilder::from_topology(topology.clone()).build()?;
    let machine = XeonMachine::new(
        plan,
        MachineConfig {
            routing: topology.routing(),
            ..MachineConfig::default()
        },
    );
    let mut target = InstrumentedTarget {
        inner: machine,
        profile: Profile::default(),
    };

    // Map under a hypothesis set: the custom die plus the builtin zoo.
    // The mapper must pick the right topology from the trace alone.
    let mut hypotheses = vec![topology.clone()];
    hypotheses.extend(Topology::builtins().iter().map(|&t| t.clone()));
    let mapper = CoreMapper::with_config(MapperConfig {
        topology_hypotheses: hypotheses,
        ..MapperConfig::default()
    });
    let (map, diag) = mapper.map_with_diagnostics(&mut target)?;
    println!(
        "mapped custom die {topology} ({} cores) through an instrumented MachineBackend",
        map.core_count()
    );
    for score in &diag.quality.hypothesis_scores {
        match &score.eliminated_by {
            Some(why) => println!("  {:<20} eliminated: {why}", score.name),
            None => println!("  {:<20} fits", score.name),
        }
    }
    println!(
        "winning topology: {}\n",
        map.topology_name().unwrap_or("<none>")
    );
    let p = &target.profile;
    println!("measurement-cost profile of the methodology:");
    println!("  MSR reads       {:>8}", p.msr_reads.get());
    println!("  MSR writes      {:>8}", p.msr_writes.get());
    println!("  cache loads     {:>8}", p.line_reads.get());
    println!("  cache stores    {:>8}", p.line_writes.get());
    println!("  cache flushes   {:>8}", p.flushes.get());
    println!(
        "\nOn real hardware each MSR access is a /dev/cpu/<n>/msr syscall and\n\
         each load/store runs on a pinned worker thread; these counts bound\n\
         the root-phase runtime of the attack on a given machine."
    );
    Ok(())
}
