//! Custom measurement backends: the `MachineBackend` seam.
//!
//! The mapping pipeline is generic over
//! [`core_map::core::backend::MachineBackend`], the trait a real-hardware
//! backend implements (see its docs for the bare-metal Linux recipe).
//! This example wraps the simulator in an *instrumenting* backend that
//! counts every primitive the methodology invokes — yielding the measurement-cost profile of the attack, broken
//! down by primitive.
//!
//! ```sh
//! cargo run --release --example custom_target
//! ```

use std::cell::Cell;

use core_map::core::backend::MachineBackend;
use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CpuModel};
use core_map::mesh::{ChaId, GridDim, OsCoreId};
use core_map::uncore::{MsrError, PhysAddr, XeonMachine};

/// Counts how often each `MachineBackend` primitive is used.
#[derive(Default)]
struct Profile {
    msr_reads: Cell<u64>,
    msr_writes: Cell<u64>,
    line_reads: Cell<u64>,
    line_writes: Cell<u64>,
    flushes: Cell<u64>,
}

/// A backend that delegates to the simulator while profiling the calls —
/// on real hardware the same wrapper would measure syscall and pinning
/// overhead.
struct InstrumentedTarget {
    inner: XeonMachine,
    profile: Profile,
}

impl MachineBackend for InstrumentedTarget {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        self.profile.msr_reads.set(self.profile.msr_reads.get() + 1);
        self.inner.read_msr(addr)
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        self.profile
            .msr_writes
            .set(self.profile.msr_writes.get() + 1);
        self.inner.write_msr(addr, value)
    }

    fn cha_count(&self) -> usize {
        self.inner.cha_count()
    }

    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.inner.os_cores()
    }

    fn grid_dim(&self) -> GridDim {
        self.inner.grid_dim()
    }

    fn l2_geometry(&self) -> (usize, usize) {
        self.inner.l2_geometry()
    }

    fn address_space(&self) -> u64 {
        self.inner.address_space()
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        self.inner.home_of(pa)
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.profile
            .line_writes
            .set(self.profile.line_writes.get() + 1);
        self.inner.write_line(core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.profile
            .line_reads
            .set(self.profile.line_reads.get() + 1);
        self.inner.read_line(core, pa);
    }

    fn flush_caches(&mut self) {
        self.profile.flushes.set(self.profile.flushes.get() + 1);
        self.inner.flush_caches();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet.instance(CpuModel::Platinum8175M, 0)?;
    let mut target = InstrumentedTarget {
        inner: instance.boot(),
        profile: Profile::default(),
    };

    let map = CoreMapper::new().map(&mut target)?;
    println!(
        "mapped {} ({} cores) through an instrumented MachineBackend\n",
        instance.model(),
        map.core_count()
    );
    let p = &target.profile;
    println!("measurement-cost profile of the methodology:");
    println!("  MSR reads       {:>8}", p.msr_reads.get());
    println!("  MSR writes      {:>8}", p.msr_writes.get());
    println!("  cache loads     {:>8}", p.line_reads.get());
    println!("  cache stores    {:>8}", p.line_writes.get());
    println!("  cache flushes   {:>8}", p.flushes.get());
    println!(
        "\nOn real hardware each MSR access is a /dev/cpu/<n>/msr syscall and\n\
         each load/store runs on a pinned worker thread; these counts bound\n\
         the root-phase runtime of the attack on a given machine."
    );
    Ok(())
}
