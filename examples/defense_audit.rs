//! Defense audit: how much does degrading the user-visible temperature
//! sensor (resolution and sampling rate) cost the attacker? (Paper Sec. IV
//! discusses exactly this mitigation: "reducing the resolution or the
//! update frequency of the temperature sensors can reduce the channel
//! capacity".)
//!
//! ```sh
//! cargo run --release --example defense_audit
//! ```

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CpuModel};
use core_map::mesh::Direction;
use core_map::thermal::sensor::TempSensor;
use core_map::thermal::{ChannelConfig, ThermalParams, ThermalSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet.instance(CpuModel::Platinum8259CL, 0)?;
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine)?;

    // A vertical 1-hop pair from the recovered map (best-case attacker).
    let cores: Vec<_> = (0..map.core_count() as u16)
        .map(core_map::mesh::OsCoreId::new)
        .collect();
    let (tx, rx) = cores
        .iter()
        .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
        .find(|&(a, b)| {
            a != b && {
                let (ca, cb) = (map.coord_of_core(a), map.coord_of_core(b));
                ca.col == cb.col && ca.row.abs_diff(cb.row) == 1
            }
        })
        .expect("vertical pair");
    let _ = Direction::Up;

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let payload: Vec<bool> = (0..400).map(|_| rng.gen()).collect();

    println!("defense audit: sensor degradation vs channel BER (400 bits)\n");
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "resolution", "sample rate", "BER@2bps", "BER@8bps"
    );
    for (res, sample_rate) in [
        (1.0, 50.0), // stock Xeon sensor
        (1.0, 10.0), // rate-limited
        (1.0, 4.0),  // heavily rate-limited
        (2.0, 50.0), // coarsened
        (4.0, 50.0), // strongly coarsened
        (4.0, 4.0),  // both defenses
    ] {
        let mut bers = Vec::new();
        for bit_rate in [2.0, 8.0] {
            let mut sim =
                ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 9)
                    .with_sensor(TempSensor::degraded(res, sample_rate));
            let report = ChannelConfig::new(vec![tx], rx, bit_rate).transfer(&mut sim, &payload);
            bers.push(report.ber());
        }
        println!(
            "{res:>10} C {sample_rate:>10} Hz {:>10.3} {:>10.3}",
            bers[0], bers[1]
        );
    }
    println!(
        "\nCoarser quantization buries the ~2 C neighbour swing outright;\n\
         rate-limiting starves the decoder of per-half-bit samples and bites\n\
         at higher bit rates first. The paper notes an attacker with physical\n\
         access could still fall back to external IR probing of the located\n\
         tiles."
    );
    Ok(())
}
