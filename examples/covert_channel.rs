//! Covert channel: exfiltrate a text message between two colluding tenants
//! through heat, using the recovered core map for placement (paper Sec.
//! IV).
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use core_map::core::CoreMapper;
use core_map::fleet::{CloudFleet, CpuModel};
use core_map::mesh::OsCoreId;
use core_map::thermal::encoding::{bits_to_bytes, bytes_to_bits};
use core_map::thermal::power::ThermalNoise;
use core_map::thermal::{ChannelConfig, ThermalParams, ThermalSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet.instance(CpuModel::Platinum8259CL, 0)?;

    // Phase 1 (root, once per chip): recover the core map.
    let mut machine = instance.boot();
    let map = CoreMapper::new().map(&mut machine)?;

    // Phase 2 (user level): the sender picks the core vertically adjacent
    // to the receiver — the strongest thermal coupling (Sec. V-A).
    let (receiver, sender) = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .find_map(|rx| map.vertical_neighbor_cores(rx).first().map(|&tx| (rx, tx)))
        .expect("some core has a vertical neighbour");
    println!(
        "sender cpu{} -> receiver cpu{} ({} hop(s) on the recovered map)",
        sender.index(),
        receiver.index(),
        map.hop_distance(sender, receiver)
    );

    let message = b"KNOW YOUR NEIGHBOR";
    let bits = bytes_to_bits(message);
    println!(
        "transmitting {} bytes ({} bits) at 2 bps over a noisy cloud host...",
        message.len(),
        bits.len()
    );

    let tiles = instance.floorplan().dim().tile_count();
    let mut sim = ThermalSim::new(instance.floorplan().clone(), ThermalParams::default(), 7)
        .with_noise(ThermalNoise::cloud(tiles));
    let report = ChannelConfig::new(vec![sender], receiver, 2.0).transfer(&mut sim, &bits);

    let received = bits_to_bytes(&report.decoded);
    println!(
        "received: {:?} (BER {:.4}, {:.0} s of transmission)",
        String::from_utf8_lossy(&received),
        report.ber(),
        report.seconds
    );
    Ok(())
}
