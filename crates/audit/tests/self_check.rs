//! The auditor audited: fixture files exercise every lint end to end —
//! true positives, lexer-aware true negatives, justified suppressions and
//! broken annotations — and the workspace scan itself must be
//! deterministic down to the byte.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use coremap_audit::{audit_file, audit_workspace, Report, SourceFile, Violation};

/// Parses a fixture under a synthetic *library* path so the full lint set
/// applies (the real scan classifies anything under `fixtures/` as exempt).
fn audit_fixture(text: &str) -> (Vec<Violation>, usize) {
    let file = SourceFile::parse("crates/ilp/src/fixture.rs", text);
    audit_file(&file)
}

fn lints_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.lint).collect()
}

#[test]
fn true_positive_fixture_trips_every_lint() {
    let (violations, suppressed) = audit_fixture(include_str!("fixtures/true_positive.rs"));
    assert_eq!(suppressed, 0);

    let lints = lints_of(&violations);
    let count = |l: &str| lints.iter().filter(|&&x| x == l).count();
    // `use HashMap`, the signature mention, and `Instant::now()`; the
    // stored `Instant` return type must NOT be flagged.
    assert_eq!(count("determinism"), 3, "{violations:#?}");
    // `unit_ctl` and `UNIT_CTL_FREEZE` on one line.
    assert_eq!(count("backend-discipline"), 2, "{violations:#?}");
    // `.unwrap()`, `.lock().unwrap()`, `panic!`.
    assert_eq!(count("panic-safety"), 3, "{violations:#?}");
    assert_eq!(count("unsafe-audit"), 1, "{violations:#?}");

    // Every violation names the synthetic file and a real line.
    for v in &violations {
        assert_eq!(v.file, "crates/ilp/src/fixture.rs");
        assert!(v.line > 0);
    }
    // The poisonable lock gets steered to the helper by name.
    assert!(
        violations.iter().any(|v| v.message.contains("lock_clean")),
        "{violations:#?}"
    );
}

#[test]
fn true_negative_fixture_is_clean_despite_greppable_tokens() {
    // The fixture names HashMap / unwrap / panic! in doc comments, line
    // comments and string literals, and unwraps inside `#[cfg(test)]` —
    // all places a naive grep fires and a lexer must not.
    let (violations, suppressed) = audit_fixture(include_str!("fixtures/true_negative.rs"));
    assert_eq!(violations, Vec::new());
    assert_eq!(suppressed, 0);
}

#[test]
fn suppressed_fixture_is_clean_and_counts_each_waiver() {
    let (violations, suppressed) = audit_fixture(include_str!("fixtures/suppressed.rs"));
    assert_eq!(violations, Vec::new());
    // Two HashMap mentions, one plain unwrap, one lock unwrap.
    assert_eq!(suppressed, 4);
}

#[test]
fn malformed_fixture_reports_broken_annotations_and_waives_nothing() {
    let (violations, suppressed) = audit_fixture(include_str!("fixtures/malformed.rs"));
    assert_eq!(suppressed, 0, "{violations:#?}");

    let lints = lints_of(&violations);
    // The justification-less allow and the unknown lint name.
    assert_eq!(
        lints
            .iter()
            .filter(|&&l| l == "malformed-suppression")
            .count(),
        2,
        "{violations:#?}"
    );
    // The stale allow over a clean function.
    assert_eq!(
        lints.iter().filter(|&&l| l == "unused-suppression").count(),
        1,
        "{violations:#?}"
    );
    // The violation the malformed annotation sat on still surfaces.
    assert!(lints.contains(&"determinism"), "{violations:#?}");
    assert!(
        violations
            .iter()
            .any(|v| v.lint == "malformed-suppression" && v.message.contains("determinizm")),
        "{violations:#?}"
    );
}

#[test]
fn seeded_violation_is_reported_with_file_line_and_lint() {
    // The acceptance scenario: a stray HashMap iteration lands in the
    // solver. The report must go non-clean and name the exact location.
    let src =
        "fn merge() {\n    let m = std::collections::HashMap::new();\n    m.insert(1, 2);\n}\n";
    let file = SourceFile::parse("crates/ilp/src/seeded.rs", src);
    let (violations, _) = audit_file(&file);
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].file, "crates/ilp/src/seeded.rs");
    assert_eq!(violations[0].line, 2);
    assert_eq!(violations[0].lint, "determinism");

    let mut report = Report::default();
    report.absorb(violations, 0);
    report.finish();
    assert!(!report.clean());
    assert!(report.human().contains("crates/ilp/src/seeded.rs:2"));
    assert!(report.json().contains("\"lint\": \"determinism\""));
}

fn workspace_root() -> &'static Path {
    // crates/audit -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn workspace_scan_is_clean_and_json_is_byte_identical_across_runs() {
    let first = audit_workspace(workspace_root()).expect("scan");
    let second = audit_workspace(workspace_root()).expect("scan");
    assert!(
        first.clean(),
        "workspace must audit clean:\n{}",
        first.human()
    );
    assert_eq!(
        first.json(),
        second.json(),
        "audit JSON must be byte-identical across runs"
    );
    assert!(first
        .json()
        .starts_with("{\n  \"schema\": \"coremap-audit/v1\""));
}
