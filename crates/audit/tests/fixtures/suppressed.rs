//! Fixture: genuine hits, each waived by a well-formed justified
//! annotation — the audit must report zero violations and count every
//! suppression as used.

use std::sync::Mutex;

// audit: allow(determinism): scratch map, drained through sorted keys before anything order-dependent happens
use std::collections::HashMap;

// audit: allow(determinism): same scratch map — only its sorted key list escapes
fn scratch(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

fn certain(r: Result<u64, ()>) -> u64 {
    // audit: allow(panic-safety): infallible — the caller constructed `r` as Ok two lines up
    r.unwrap()
}

fn counter_window(m: &Mutex<u64>) -> u64 {
    // audit: allow(panic-safety): single-threaded fixture — no sibling can poison this lock
    *m.lock().unwrap()
}
