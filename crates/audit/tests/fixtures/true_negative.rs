//! Fixture: clean code that mentions every forbidden token only where the
//! lexer must ignore it — comments, strings, doc text — plus exempt test
//! regions. A naive grep flags all of it; the auditor must flag none.

use std::collections::BTreeMap;

/// Replaces the old `HashMap` accumulator; `Instant::now()` is only named
/// in this doc comment, never called.
fn canonical(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    // The string below is data, not code: HashMap::new() and unwrap().
    let banner = "HashMap::new() then .unwrap() then panic!";
    let _ = banner;
    m.values().copied().collect()
}

fn graceful(r: Result<u64, ()>) -> u64 {
    r.unwrap_or_default()
}

fn tolerant(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tests_may_unwrap_and_hash() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.get(&1).copied(), None);
        let r: Result<u64, ()> = Ok(1);
        assert_eq!(r.unwrap(), 1);
    }
}
