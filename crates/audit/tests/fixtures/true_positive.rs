//! Fixture: every lint has at least one genuine hit. Audited by the
//! self-check tests under a synthetic library path; the real workspace
//! scan skips everything below a `fixtures/` directory.

use std::collections::HashMap;
use std::time::Instant;

fn order_dependent(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

fn stamp() -> Instant {
    Instant::now()
}

fn touch_pmon() -> u64 {
    let reg = unit_ctl(3) | UNIT_CTL_FREEZE;
    reg
}

fn read_it(r: Result<u64, ()>) -> u64 {
    r.unwrap()
}

fn grab(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

fn boom() {
    panic!("no");
}

fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
