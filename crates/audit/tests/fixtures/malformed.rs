//! Fixture: broken annotations. A justification-less allow, an unknown
//! lint name, and a stale allow covering nothing — each must surface as a
//! meta-lint violation, and the justification-less one must waive nothing.

use std::collections::HashMap; // audit: allow(determinism)

fn order_dependent(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

// audit: allow(determinizm): typo in the lint name
fn typod() {}

// audit: allow(panic-safety): left behind after the unwrap was refactored away
fn stale() {}
