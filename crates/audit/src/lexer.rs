//! A small Rust lexer: enough token structure for reliable auditing.
//!
//! The audit lints must not be naive `grep`: the word `unsafe` inside a
//! doc comment, a string literal `"HashMap"`, or the identifier
//! `unsafe_code` in a `#![forbid(...)]` attribute are not violations.
//! This lexer splits source text into identifiers, punctuation, literals
//! and comments — with correct handling of raw strings (`r#"..."#`),
//! byte strings, char literals vs. lifetimes, and nested block comments —
//! so the lints can match *code tokens* and inspect *comments* separately.
//!
//! It deliberately lexes less than rustc does (no float-suffix pedantry,
//! no shebang handling beyond skipping) — the workspace's own sources are
//! the input domain, and every construct the lints care about is covered
//! by the token kinds below.

/// What a token is, with the payload slices borrowed from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind<'a> {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, `r#async`).
    Ident(&'a str),
    /// Punctuation, one char at a time (`#`, `[`, `(`, `.`, `!`, ...).
    Punct(char),
    /// String / raw-string / byte-string literal, quotes included.
    Str(&'a str),
    /// Character or byte-character literal, quotes included.
    Char(&'a str),
    /// Numeric literal.
    Number(&'a str),
    /// Lifetime or loop label (`'a`, `'outer`), tick included.
    Lifetime(&'a str),
    /// `// ...` comment, markers included (covers `///` and `//!`).
    LineComment(&'a str),
    /// `/* ... */` comment, markers included (covers `/** ... */`).
    BlockComment(&'a str),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token's kind and text.
    pub kind: TokenKind<'a>,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&'a str> {
        match self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The comment text (markers included), if this token is a comment.
    pub fn comment(&self) -> Option<&'a str> {
        match self.kind {
            TokenKind::LineComment(s) | TokenKind::BlockComment(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is code (not a comment).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_)
        )
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Unterminated constructs (possible in
/// fixture snippets) consume the rest of the input rather than erroring:
/// the auditor must never panic on the code it is judging.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // Skip a shebang line so `#!/usr/bin/env ...` never lexes as tokens.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }
    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let c = src[i..].chars().next().unwrap_or('\0');
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            '/' if src[i..].starts_with("//") => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment(&src[start..i]),
                    line: start_line,
                });
            }
            '/' if src[i..].starts_with("/*") => {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if src[i..].starts_with("/*") {
                        depth += 1;
                        i += 2;
                    } else if src[i..].starts_with("*/") {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::BlockComment(&src[start..i]),
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_string(&src[i..]) => {
                // r"..." / r#"..."# / br#"..."# : count hashes, find the
                // matching closer.
                let mut j = i;
                while bytes[j] != b'r' {
                    j += 1; // skip the leading b of br
                }
                j += 1;
                let mut hashes = 0usize;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                let closer: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let end = src[j..]
                    .find(&closer)
                    .map_or(bytes.len(), |p| j + p + closer.len());
                line += src[i..end].matches('\n').count() as u32;
                i = end;
                tokens.push(Token {
                    kind: TokenKind::Str(&src[start..i]),
                    line: start_line,
                });
            }
            '"' | 'b' if c == '"' || src[i..].starts_with("b\"") => {
                if c == 'b' {
                    i += 1;
                }
                i += 1; // opening quote
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(&src[start..i.min(bytes.len())]),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let rest = &src[i + 1..];
                let mut chars = rest.chars();
                let first = chars.next().unwrap_or('\0');
                if first == '\\' || rest.chars().nth(1) == Some('\'') || first == '\'' {
                    // Char literal: consume to the closing quote.
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Char(&src[start..i.min(bytes.len())]),
                        line: start_line,
                    });
                } else {
                    // Lifetime / label: tick + identifier.
                    i += 1;
                    while i < bytes.len() {
                        let ch = src[i..].chars().next().unwrap_or('\0');
                        if is_ident_continue(ch) {
                            i += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime(&src[start..i]),
                        line: start_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() {
                    let ch = src[i..].chars().next().unwrap_or('\0');
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' {
                        // Stop a numeric token at `..` (range) and at a
                        // method call on a literal (`1.max(2)`).
                        if ch == '.'
                            && (src[i + 1..].starts_with('.')
                                || src[i + 1..].chars().next().is_some_and(is_ident_start))
                        {
                            break;
                        }
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(&src[start..i]),
                    line: start_line,
                });
            }
            c if is_ident_start(c) => {
                i += c.len_utf8();
                while i < bytes.len() {
                    let ch = src[i..].chars().next().unwrap_or('\0');
                    if is_ident_continue(ch) {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(&src[start..i]),
                    line: start_line,
                });
            }
            c => {
                i += c.len_utf8();
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line: start_line,
                });
            }
        }
    }
    tokens
}

/// Whether `rest` begins a raw (possibly byte) string literal.
fn starts_raw_string(rest: &str) -> bool {
    let after = rest.strip_prefix("br").or_else(|| rest.strip_prefix('r'));
    match after {
        Some(t) => {
            let t = t.trim_start_matches('#');
            t.starts_with('"') && (rest.starts_with('r') || rest.starts_with("br"))
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src).iter().filter_map(|t| t.ident()).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents_from_code_tokens() {
        let src = r##"
            // HashMap in a comment
            /* unsafe in a block
               comment */
            let s = "HashMap::new()";
            let r = r#"unsafe { SystemTime }"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap"));
        assert!(!ids.contains(&"unsafe"));
        assert!(!ids.contains(&"SystemTime"));
        assert!(ids.contains(&"let"));
    }

    #[test]
    fn identifiers_and_lines_are_tracked() {
        let toks = lex("let a = 1;\nlet unsafe_code = 2;");
        let unsafe_code = toks
            .iter()
            .find(|t| t.ident() == Some("unsafe_code"))
            .unwrap();
        assert_eq!(unsafe_code.line, 2);
        // `unsafe_code` is one identifier, not the `unsafe` keyword.
        assert!(toks.iter().all(|t| t.ident() != Some("unsafe")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char(_)))
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert!(toks[0].comment().unwrap().contains("inner"));
        assert_eq!(toks[1].ident(), Some("fn"));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let toks = lex(r#"let s = "a\"unsafe\"b"; let t = 1;"#);
        assert!(!idents(r#"let s = "a\"unsafe\"b"; let t = 1;"#).contains(&"unsafe"));
        assert!(toks.iter().any(|t| t.ident() == Some("t")));
    }

    #[test]
    fn unterminated_string_consumes_rest_without_panicking() {
        let toks = lex("let s = \"never closed\nunsafe");
        assert!(toks.iter().all(|t| t.ident() != Some("unsafe")));
    }

    #[test]
    fn line_comments_keep_their_text() {
        let toks = lex("let x = 1; // audit: allow(test-lint): because\n");
        let c = toks.last().unwrap().comment().unwrap();
        assert!(c.contains("audit: allow"));
    }
}
