//! Per-file source model: token stream, `#[cfg(test)]` regions, and
//! `// audit: allow(...)` suppression annotations.
//!
//! The lints never look at raw text; they query this model. That keeps
//! the "is this token test-only code?" and "is this line suppressed?"
//! decisions in one place, with the same answers for every lint.

use crate::lexer::{lex, Token};

/// Marker that introduces a suppression comment.
pub const ALLOW_MARKER: &str = "audit: allow(";

/// A parsed `// audit: allow(<lint>): <justification>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on (1-based).
    pub line: u32,
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The justification text after the closing `):`. Empty if missing —
    /// which the `malformed-suppression` lint rejects.
    pub justification: String,
    /// Whether the annotation parsed completely (`allow(<lint>): <text>`).
    pub well_formed: bool,
}

/// A lexed source file plus the derived region/annotation structure.
#[derive(Debug)]
pub struct SourceFile<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source text.
    pub text: &'a str,
    /// Token stream.
    pub tokens: Vec<Token<'a>>,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// All suppression annotations, in line order.
    pub suppressions: Vec<Suppression>,
}

impl<'a> SourceFile<'a> {
    /// Lexes `text` and derives regions and annotations.
    pub fn parse(path: &str, text: &'a str) -> Self {
        let tokens = lex(text);
        let test_regions = find_cfg_test_regions(&tokens);
        let suppressions = find_suppressions(&tokens);
        Self {
            path: path.replace('\\', "/"),
            text,
            tokens,
            test_regions,
            suppressions,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// The suppression covering a violation of `lint` on `line`, if any.
    ///
    /// An annotation covers its own line and the line directly below it,
    /// so both trailing comments and whole-line comments above work:
    ///
    /// ```text
    /// let x = m.get(k).unwrap(); // audit: allow(panic-safety): k inserted above
    ///
    /// // audit: allow(panic-safety): k inserted above
    /// let x = m.get(k).unwrap();
    /// ```
    pub fn suppression_for(&self, lint: &str, line: u32) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.lint == lint && (s.line == line || s.line + 1 == line))
    }

    /// Code tokens only (comments stripped), preserving order.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token<'a>> {
        self.tokens.iter().filter(|t| t.is_code())
    }
}

/// Parses every `audit: allow(...)` annotation out of the comment tokens.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are skipped: they are part of
/// the rendered API documentation, not annotations, and may legitimately
/// *quote* the suppression syntax when documenting it.
fn find_suppressions(tokens: &[Token<'_>]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for tok in tokens {
        let Some(comment) = tok.comment() else {
            continue;
        };
        if comment.starts_with("///")
            || comment.starts_with("//!")
            || comment.starts_with("/**")
            || comment.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = comment.find(ALLOW_MARKER) else {
            continue;
        };
        let after = &comment[pos + ALLOW_MARKER.len()..];
        let (lint, rest, closed) = match after.find(')') {
            Some(p) => (&after[..p], &after[p + 1..], true),
            None => (after, "", false),
        };
        let lint = lint.trim().to_string();
        let justification = rest
            .trim_start()
            .strip_prefix(':')
            .map(|j| j.trim())
            .unwrap_or("")
            .to_string();
        let well_formed = closed
            && !lint.is_empty()
            && lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
            && !justification.is_empty();
        out.push(Suppression {
            line: tok.line,
            lint,
            justification,
            well_formed,
        });
    }
    out
}

/// Finds the line ranges of items gated behind `#[cfg(test)]`.
///
/// Recognizes `#[cfg(test)]` and compound forms whose predicate mentions
/// the bare `test` flag (`#[cfg(all(test, feature = "x"))]`). After the
/// attribute (and any further attributes), the gated item extends either
/// to the matching `}` of its first brace (mod / fn / impl) or to the
/// terminating `;` (use declarations, `mod x;`).
fn find_cfg_test_regions(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_end = None;
        while j < code.len() {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    attr_end = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        let attr = &code[attr_start..=attr_end];
        let is_cfg_test = attr.iter().any(|t| t.ident() == Some("cfg"))
            && attr.iter().any(|t| t.ident() == Some("test"));
        i = attr_end + 1;
        if !is_cfg_test {
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = i;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < code.len() {
                if code[m].is_punct('[') {
                    d += 1;
                } else if code[m].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // The item body: to the matching `}` of the first `{`, or to `;`
        // if one appears first (e.g. `#[cfg(test)] use ...;`).
        let mut brace_depth = 0usize;
        let mut end_line = code.get(k).map_or(code[attr_end].line, |t| t.line);
        while k < code.len() {
            let t = code[k];
            if t.is_punct('{') {
                brace_depth += 1;
            } else if t.is_punct('}') {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && brace_depth == 0 {
                end_line = t.line;
                break;
            }
            k += 1;
        }
        regions.push((code[attr_start].line, end_line));
        i = k + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_region_spans_the_whole_block() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() { lib(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions, vec![(3, 8)]);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(5));
        assert!(f.in_test_region(7));
        assert!(!f.in_test_region(9));
    }

    #[test]
    fn cfg_test_use_declaration_region_is_one_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions, vec![(1, 2)]);
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn cfg_all_test_counts_as_test_region() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn f() {} }\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions.len(), 1);
    }

    #[test]
    fn cfg_not_mentioning_test_is_ignored() {
        let src = "#[cfg(feature = \"extra\")]\nmod m { fn f() {} }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn suppressions_parse_with_justification() {
        let src = "let x = 1; // audit: allow(panic-safety): index proven in bounds\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert!(s.well_formed);
        assert_eq!(s.lint, "panic-safety");
        assert_eq!(s.justification, "index proven in bounds");
        assert!(f.suppression_for("panic-safety", 1).is_some());
        assert!(f.suppression_for("determinism", 1).is_none());
    }

    #[test]
    fn suppression_covers_the_next_line_too() {
        let src = "// audit: allow(determinism): volatile wall-clock metric\nlet t = now();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppression_for("determinism", 2).is_some());
        assert!(f.suppression_for("determinism", 3).is_none());
    }

    #[test]
    fn missing_justification_is_malformed() {
        for src in [
            "// audit: allow(panic-safety)\n",
            "// audit: allow(panic-safety):\n",
            "// audit: allow(panic-safety):   \n",
            "// audit: allow(): because\n",
        ] {
            let f = SourceFile::parse("x.rs", src);
            assert_eq!(f.suppressions.len(), 1, "{src:?}");
            assert!(!f.suppressions[0].well_formed, "{src:?}");
        }
    }
}
