//! `coremap-audit` — the workspace's tidy-style static analysis pass.
//!
//! The measurement pipeline's correctness rests on invariants a compiler
//! does not check: byte-identical record→replay determinism, all machine
//! access flowing through the `MachineBackend` trait, and panic/poison
//! safety in the parallel fleet runner. Each was enforced by convention
//! and restored by hand after regressions (the `ilp_model`
//! `HashSet`→`BTreeSet` migration; the counted-backoff retry policy).
//! This crate enforces them mechanically, in the style of rustc's `tidy`:
//!
//! * a small Rust [`lexer`] (comment/string/attribute-aware — *not* grep),
//! * a [`lints`] registry scoped by the path [`policy`],
//! * per-line suppression via `// audit: allow(<lint>): <justification>`
//!   comments with *mandatory* justification text,
//! * human-readable and deterministic JSON (`coremap-audit/v1`)
//!   [`report`]ers.
//!
//! Run it as `cargo run -p coremap-audit -- --check`; CI gates on the
//! exit code. See `DESIGN.md` §3.9 for each lint's rationale and the
//! suppression policy.

#![warn(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod policy;
pub mod report;
pub mod source;
pub mod walk;

use std::path::Path;

pub use lints::{audit_file, Violation, LINTS};
pub use report::Report;
pub use source::SourceFile;

/// Audits every workspace source file under `root`.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if the tree cannot be walked or a file
/// cannot be read.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in walk::workspace_files(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let file = SourceFile::parse(&rel, &text);
        let (violations, suppressed) = audit_file(&file);
        report.absorb(violations, suppressed);
    }
    report.finish();
    Ok(report)
}
