//! CLI entry point: `cargo run -p coremap-audit -- --check`.

use std::path::PathBuf;
use std::process::ExitCode;

use coremap_audit::{audit_workspace, LINTS};

const USAGE: &str = "\
coremap-audit — static analysis pass for the core-map workspace

USAGE:
    coremap-audit [--check] [--root <dir>] [--json <path|->] [--list-lints]

OPTIONS:
    --check         Exit non-zero if any unsuppressed violation is found
                    (the CI gate; also the default behavior)
    --root <dir>    Workspace root to scan (default: current directory)
    --json <path>   Also write the deterministic coremap-audit/v1 JSON
                    report to <path>, or to stdout when <path> is `-`
    --list-lints    Print every lint and its rationale, then exit
    --help          Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // gating on violations is the default
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return fail("--root requires a directory argument"),
            },
            "--json" => match args.next() {
                Some(path) => json = Some(path),
                None => return fail("--json requires a path argument (or `-`)"),
            },
            "--list-lints" => {
                for (name, rationale) in LINTS {
                    println!("{name}\n    {rationale}\n");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coremap-audit: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json {
        let body = report.json();
        if path == "-" {
            print!("{body}");
        } else if let Err(e) = std::fs::write(&path, body) {
            eprintln!("coremap-audit: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", report.human());
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("coremap-audit: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
