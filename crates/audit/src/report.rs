//! Human-readable and machine-readable (`coremap-audit/v1`) reports.
//!
//! The JSON report is emitted by a hand-rolled writer, not a
//! serialization library: the report must be byte-identical across runs
//! (CI diffs it), so key order, number formatting and escaping are all
//! pinned here rather than inherited from a dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lints::Violation;

/// Everything one audit run found, plus scan statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Surviving violations, sorted by `(file, line, lint, message)`.
    pub violations: Vec<Violation>,
    /// Candidates waived by well-formed justified annotations.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Merges one file's results into the report.
    pub fn absorb(&mut self, violations: Vec<Violation>, suppressed: usize) {
        self.violations.extend(violations);
        self.suppressed += suppressed;
        self.files_scanned += 1;
    }

    /// Sorts violations into the canonical report order.
    pub fn finish(&mut self) {
        self.violations.sort();
    }

    /// Whether the audit passed (no unsuppressed violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-lint violation counts, in lint-name order.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.lint).or_insert(0) += 1;
        }
        counts
    }

    /// The human-readable report: one `file:line: [lint] message` per
    /// violation, then a summary line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.lint, v.message);
        }
        if self.violations.is_empty() {
            let _ = writeln!(
                out,
                "audit clean: {} files scanned, {} suppressed site(s)",
                self.files_scanned, self.suppressed
            );
        } else {
            let per_lint: Vec<String> = self
                .counts()
                .iter()
                .map(|(lint, n)| format!("{lint}: {n}"))
                .collect();
            let _ = writeln!(
                out,
                "audit FAILED: {} violation(s) in {} file(s) scanned ({}); {} suppressed site(s)",
                self.violations.len(),
                self.files_scanned,
                per_lint.join(", "),
                self.suppressed
            );
        }
        out
    }

    /// The `coremap-audit/v1` JSON report. Deterministic: fixed key order,
    /// violations pre-sorted, trailing newline.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"coremap-audit/v1\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        let entries: Vec<String> = counts
            .iter()
            .map(|(lint, n)| format!("\"{lint}\": {n}"))
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("},\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}",
                json_string(&v.file),
                v.line,
                json_string(v.lint),
                json_string(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.absorb(
            vec![
                Violation {
                    file: "crates/ilp/src/presolve.rs".into(),
                    line: 15,
                    lint: "determinism",
                    message: "`HashMap` on a deterministic path".into(),
                },
                Violation {
                    file: "crates/core/src/mapper.rs".into(),
                    line: 3,
                    lint: "panic-safety",
                    message: "`.unwrap()` in library code".into(),
                },
            ],
            2,
        );
        r.absorb(Vec::new(), 1);
        r.finish();
        r
    }

    #[test]
    fn human_report_names_file_line_and_lint() {
        let text = sample().human();
        assert!(text.contains("crates/ilp/src/presolve.rs:15: [determinism]"));
        assert!(text.contains("audit FAILED: 2 violation(s) in 2 file(s)"));
        assert!(text.contains("determinism: 1"));
    }

    #[test]
    fn violations_sort_by_file_then_line() {
        let r = sample();
        assert_eq!(r.violations[0].file, "crates/core/src/mapper.rs");
        assert_eq!(r.violations[1].file, "crates/ilp/src/presolve.rs");
    }

    #[test]
    fn json_is_schema_tagged_and_escapes_strings() {
        let j = sample().json();
        assert!(j.starts_with("{\n  \"schema\": \"coremap-audit/v1\","));
        assert!(j.contains("\"suppressed\": 3"));
        assert!(j.contains("\\u0060HashMap\\u0060") || j.contains("`HashMap`"));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn json_is_byte_identical_across_runs() {
        assert_eq!(sample().json(), sample().json());
    }

    #[test]
    fn empty_report_is_clean_with_empty_array() {
        let mut r = Report::default();
        r.finish();
        assert!(r.clean());
        assert!(r.json().contains("\"violations\": []"));
        assert!(r.human().contains("audit clean"));
    }

    #[test]
    fn json_string_escaping_covers_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
