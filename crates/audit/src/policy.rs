//! Path policy: which lints apply where.
//!
//! Every lint is scoped: determinism matters on the paths whose output
//! must be byte-identical across runs (the solver, the geometry layer,
//! the metrics export, replay), backend discipline matters everywhere
//! *except* the crate that owns the raw machine model, panic-safety
//! matters in library code that production callers link against. This
//! module is the single source of truth for those scopes — changing a
//! policy is a one-line diff reviewed like any other invariant change.

/// How a file participates in the build, coarse-grained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeKind {
    /// Library code production callers link against.
    Library,
    /// Binary / tool / experiment-harness code.
    Binary,
    /// Integration tests (`tests/`), benches, examples.
    TestOrHarness,
    /// Audit fixtures: never linted as workspace code.
    Fixture,
}

/// The workspace crates whose `src/` is library code for panic-safety
/// purposes. `cli`, `bench` and `audit` are tools: a tool may abort on a
/// broken invariant, a library must return an error.
const LIBRARY_CRATES: [&str; 7] = ["mesh", "obs", "uncore", "ilp", "thermal", "core", "fleet"];

/// Paths whose non-test code must be deterministic: byte-identical
/// record→replay and run-to-run metric exports depend on them. Matched by
/// prefix against `/`-separated workspace-relative paths.
///
/// * `crates/ilp/src` — the solver: constraint order decides pivot order.
/// * `crates/mesh/src` — geometry and ID types used in solver keys.
/// * `crates/core/src/ilp_model.rs` — constraint emission (PR 3 bug class).
/// * `crates/obs/src` — the deterministic metrics export itself.
/// * `crates/core/src/backend/replay.rs`, `trace.rs` — replay must issue
///   the recorded operations in the recorded order.
/// * `crates/core/src/topology_select.rs` — hypothesis scoring order and
///   tie-breaking decide which topology a fleet record reports.
const DETERMINISTIC_PATHS: [&str; 7] = [
    "crates/ilp/src",
    "crates/mesh/src",
    "crates/core/src/ilp_model.rs",
    "crates/obs/src",
    "crates/core/src/backend/replay.rs",
    "crates/core/src/backend/trace.rs",
    "crates/core/src/topology_select.rs",
];

/// The crate owning the raw MSR/PMON machine model. Only files under this
/// prefix may mention raw register-map tokens without an annotation.
const BACKEND_OWNER: &str = "crates/uncore/src";

/// Driver-layer paths sitting *at or below* the `MachineBackend` seam.
/// These are the designated consumers of the raw register map — the PMON
/// programming layer that turns symbolic events into control-register
/// writes, and the backend wrappers (record/replay/fault) that implement
/// the trait itself and must decode the operations they intercept. Raw
/// MSR/PMON tokens here are the mechanism working as designed, not a
/// discipline leak; everywhere else they need a justified annotation.
const BACKEND_DRIVER_PATHS: [&str; 2] = ["crates/core/src/monitor.rs", "crates/core/src/backend/"];

/// Classifies a workspace-relative path.
pub fn code_kind(path: &str) -> CodeKind {
    if path.split('/').any(|seg| seg == "fixtures") {
        return CodeKind::Fixture;
    }
    if path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
    {
        return CodeKind::TestOrHarness;
    }
    for name in LIBRARY_CRATES {
        if path.starts_with(&format!("crates/{name}/src")) {
            return CodeKind::Library;
        }
    }
    if path.starts_with("src/") && !path.starts_with("src/bin") {
        // The umbrella `core-map` library crate at the workspace root.
        return CodeKind::Library;
    }
    CodeKind::Binary
}

/// Whether the determinism lint applies to `path`.
pub fn is_deterministic_path(path: &str) -> bool {
    DETERMINISTIC_PATHS.iter().any(|p| path.starts_with(p))
}

/// Whether `path` belongs to the backend-owner crate (raw MSR/PMON tokens
/// allowed) or a designated driver path at the `MachineBackend` seam.
pub fn is_backend_owner(path: &str) -> bool {
    path.starts_with(BACKEND_OWNER) || BACKEND_DRIVER_PATHS.iter().any(|p| path.starts_with(p))
}

/// Whether the panic-safety lint applies to `path` (library code only;
/// test regions are excluded separately, per line).
pub fn panic_safety_applies(path: &str) -> bool {
    code_kind(path) == CodeKind::Library
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_vs_tool_vs_test_classification() {
        assert_eq!(code_kind("crates/core/src/mapper.rs"), CodeKind::Library);
        assert_eq!(code_kind("crates/fleet/src/runner.rs"), CodeKind::Library);
        assert_eq!(code_kind("src/lib.rs"), CodeKind::Library);
        assert_eq!(code_kind("crates/cli/src/main.rs"), CodeKind::Binary);
        assert_eq!(
            code_kind("crates/bench/src/bin/robustness.rs"),
            CodeKind::Binary
        );
        assert_eq!(code_kind("crates/audit/src/lints.rs"), CodeKind::Binary);
        assert_eq!(
            code_kind("crates/core/tests/reconstruction_props.rs"),
            CodeKind::TestOrHarness
        );
        assert_eq!(code_kind("tests/end_to_end.rs"), CodeKind::TestOrHarness);
        assert_eq!(
            code_kind("crates/audit/tests/fixtures/bad.rs"),
            CodeKind::Fixture
        );
    }

    #[test]
    fn deterministic_scope_covers_solver_metrics_replay() {
        assert!(is_deterministic_path("crates/ilp/src/presolve.rs"));
        assert!(is_deterministic_path("crates/mesh/src/ids.rs"));
        assert!(is_deterministic_path("crates/core/src/ilp_model.rs"));
        assert!(is_deterministic_path("crates/obs/src/json.rs"));
        assert!(is_deterministic_path("crates/core/src/backend/replay.rs"));
        assert!(is_deterministic_path("crates/core/src/topology_select.rs"));
        assert!(!is_deterministic_path("crates/core/src/mapper.rs"));
        assert!(!is_deterministic_path("crates/fleet/src/runner.rs"));
        assert!(!is_deterministic_path("crates/uncore/src/machine.rs"));
    }

    #[test]
    fn backend_owner_is_uncore_src_plus_driver_paths() {
        assert!(is_backend_owner("crates/uncore/src/msr.rs"));
        assert!(!is_backend_owner("crates/uncore/tests/msr_fuzz.rs"));
        // The PMON programming layer and the trait-implementing wrappers
        // are designated drivers.
        assert!(is_backend_owner("crates/core/src/monitor.rs"));
        assert!(is_backend_owner("crates/core/src/backend/replay.rs"));
        assert!(is_backend_owner("crates/core/src/backend/record.rs"));
        // The mapping pipeline proper is not.
        assert!(!is_backend_owner("crates/core/src/mapper.rs"));
        assert!(!is_backend_owner("crates/fleet/src/runner.rs"));
    }
}
