//! The lint registry and the lints themselves.
//!
//! Each lint scans a [`SourceFile`]'s token stream under the path policy
//! and yields candidate violations. The driver ([`audit_file`]) then
//! applies `// audit: allow(<lint>): <justification>` suppressions and
//! turns malformed or unused annotations into violations of their own, so
//! the suppression mechanism cannot rot silently.

use crate::policy;
use crate::source::SourceFile;

/// A finding: one invariant broken at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (stable identifier, also the `allow(...)` key).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Name and one-line rationale of every lint, for `--list-lints` and docs.
pub const LINTS: [(&str, &str); 6] = [
    (
        "determinism",
        "HashMap/HashSet and wall-clock reads are forbidden on deterministic \
         paths (solver, geometry, metrics export, replay): iteration order and \
         time break byte-identical record->replay and run-to-run exports",
    ),
    (
        "backend-discipline",
        "raw MSR/PMON register-map tokens are confined to crates/uncore; every \
         other layer must reach the machine through the MachineBackend trait",
    ),
    (
        "panic-safety",
        "unwrap()/expect()/panic! are forbidden in library code outside tests; \
         return typed errors, and take locks through the poison-tolerant helpers",
    ),
    (
        "unsafe-audit",
        "every `unsafe` keyword requires an adjacent `// SAFETY:` comment \
         (same line or at most three lines above)",
    ),
    (
        "malformed-suppression",
        "audit: allow(...) annotations must name a known lint and carry a \
         non-empty justification after the closing parenthesis",
    ),
    (
        "unused-suppression",
        "an allow annotation that no longer suppresses anything must be \
         removed, so stale exemptions cannot hide future violations",
    ),
];

/// Whether `name` names a registered lint.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|(n, _)| *n == name)
}

/// Raw MSR/PMON register-map tokens. Mentioning one outside
/// `crates/uncore/src` (or a test) means a layer is addressing PMON banks
/// directly instead of going through `MachineBackend`.
const RAW_BACKEND_TOKENS: [&str; 14] = [
    "counter_ctl",
    "MSR_PPIN",
    "CHA_MSR_BASE",
    "CHA_MSR_STRIDE",
    "CHA_UNIT_CTL",
    "CHA_CTL0",
    "CHA_CTR0",
    "CHA_COUNTERS",
    "UNIT_CTL_RESET",
    "UNIT_CTL_FREEZE",
    "decode_cha_msr",
    "ChaRegister",
    "ChaPmonBox",
    "unit_ctl",
];

/// Runs every lint on one file and applies the suppression policy.
///
/// Returns `(violations, suppressed_count)`: surviving violations in
/// source order, and how many candidates a well-formed annotation waived.
pub fn audit_file(file: &SourceFile<'_>) -> (Vec<Violation>, usize) {
    let mut candidates = Vec::new();
    if policy::code_kind(&file.path) == policy::CodeKind::Fixture {
        return (candidates, 0);
    }
    lint_determinism(file, &mut candidates);
    lint_backend_discipline(file, &mut candidates);
    lint_panic_safety(file, &mut candidates);
    lint_unsafe_audit(file, &mut candidates);

    // Apply suppressions, tracking which annotations earned their keep.
    let mut used = vec![false; file.suppressions.len()];
    let mut suppressed = 0usize;
    let mut violations: Vec<Violation> = Vec::new();
    for v in candidates {
        let hit = file
            .suppressions
            .iter()
            .position(|s| s.well_formed && s.lint == v.lint && covers(s.line, v.line));
        match hit {
            Some(idx) => {
                used[idx] = true;
                suppressed += 1;
            }
            None => violations.push(v),
        }
    }

    // Meta-lints on the annotations themselves. These cannot be
    // suppressed: a suppression of the suppression police is no police.
    for (idx, s) in file.suppressions.iter().enumerate() {
        if !s.well_formed || !is_known_lint(&s.lint) {
            violations.push(Violation {
                file: file.path.clone(),
                line: s.line,
                lint: "malformed-suppression",
                message: if s.lint.is_empty() || !is_known_lint(&s.lint) {
                    format!(
                        "allow annotation names unknown lint `{}`; known lints: {}",
                        s.lint,
                        LINTS.map(|(n, _)| n).join(", ")
                    )
                } else {
                    format!(
                        "allow({}) is missing its justification — write \
                         `// audit: allow({}): <why this site is exempt>`",
                        s.lint, s.lint
                    )
                },
            });
        } else if !used[idx] {
            violations.push(Violation {
                file: file.path.clone(),
                line: s.line,
                lint: "unused-suppression",
                message: format!(
                    "allow({}) suppresses nothing on line {} or {} — remove it",
                    s.lint,
                    s.line,
                    s.line + 1
                ),
            });
        }
    }

    violations.sort();
    (violations, suppressed)
}

/// Whether an annotation on `ann_line` covers a violation on `line`
/// (its own line, or the line directly below).
fn covers(ann_line: u32, line: u32) -> bool {
    ann_line == line || ann_line + 1 == line
}

fn push(
    out: &mut Vec<Violation>,
    file: &SourceFile<'_>,
    line: u32,
    lint: &'static str,
    msg: String,
) {
    out.push(Violation {
        file: file.path.clone(),
        line,
        lint,
        message: msg,
    });
}

/// determinism: no hash-order iteration or wall-clock reads on paths whose
/// output must be reproducible.
fn lint_determinism(file: &SourceFile<'_>, out: &mut Vec<Violation>) {
    if !policy::is_deterministic_path(&file.path) {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for (i, tok) in code.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        if file.in_test_region(tok.line) {
            continue;
        }
        match id {
            "HashMap" | "HashSet" => push(
                out,
                file,
                tok.line,
                "determinism",
                format!(
                    "`{id}` on a deterministic path: iteration order varies \
                     per process — use `BTree{}` or sort before iterating",
                    &id[4..]
                ),
            ),
            "thread_rng" => push(
                out,
                file,
                tok.line,
                "determinism",
                "`thread_rng` on a deterministic path: use a seeded \
                 `ChaCha8Rng` threaded through the caller"
                    .into(),
            ),
            "Instant" | "SystemTime" => {
                // Only the *reads* are nondeterministic; storing a time
                // type someone else produced is fine.
                let calls_now = code[i + 1..]
                    .iter()
                    .take(3)
                    .filter_map(|t| t.ident())
                    .any(|m| m == "now");
                if calls_now {
                    push(
                        out,
                        file,
                        tok.line,
                        "determinism",
                        format!(
                            "`{id}::now()` on a deterministic path: wall-clock \
                             values differ per run — count operations instead, \
                             or record the value as a volatile metric"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// backend-discipline: raw register-map tokens stay inside the backend
/// owner; other layers go through `MachineBackend`.
fn lint_backend_discipline(file: &SourceFile<'_>, out: &mut Vec<Violation>) {
    if policy::is_backend_owner(&file.path)
        || policy::code_kind(&file.path) == policy::CodeKind::TestOrHarness
    {
        return;
    }
    for tok in file.code_tokens() {
        let Some(id) = tok.ident() else { continue };
        if file.in_test_region(tok.line) {
            continue;
        }
        if RAW_BACKEND_TOKENS.contains(&id) {
            push(
                out,
                file,
                tok.line,
                "backend-discipline",
                format!(
                    "raw MSR/PMON token `{id}` outside crates/uncore: access \
                     the machine through the MachineBackend trait"
                ),
            );
        }
    }
}

/// panic-safety: library code returns errors instead of aborting, and
/// fleet locks go through the poison-tolerant helpers.
fn lint_panic_safety(file: &SourceFile<'_>, out: &mut Vec<Violation>) {
    if !policy::panic_safety_applies(&file.path) {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for (i, tok) in code.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        if file.in_test_region(tok.line) {
            continue;
        }
        let method_call =
            i > 0 && code[i - 1].is_punct('.') && code.get(i + 1).is_some_and(|t| t.is_punct('('));
        match id {
            "unwrap" | "expect" if method_call => {
                // `.lock().unwrap()` gets the sharper message: the
                // workspace has a poison-tolerant helper for exactly this.
                let after_lock = i >= 4
                    && code[i - 4].ident() == Some("lock")
                    && code[i - 3].is_punct('(')
                    && code[i - 2].is_punct(')');
                let msg = if after_lock {
                    format!(
                        "`.lock().{id}()` in library code: a panicked sibling \
                         poisons the mutex and this call then aborts — use the \
                         poison-tolerant lock helper (`lock_clean`)"
                    )
                } else {
                    format!(
                        "`.{id}()` in library code: return a typed error, or \
                         justify with `// audit: allow(panic-safety): <why \
                         infallible>`"
                    )
                };
                push(out, file, tok.line, "panic-safety", msg);
            }
            "panic" if code.get(i + 1).is_some_and(|t| t.is_punct('!')) => {
                push(
                    out,
                    file,
                    tok.line,
                    "panic-safety",
                    "`panic!` in library code: return a typed error, or justify \
                     a documented contract panic with an allow annotation"
                        .into(),
                );
            }
            _ => {}
        }
    }
}

/// unsafe-audit: every `unsafe` keyword carries a nearby `// SAFETY:`
/// comment. Applies everywhere, tests included — a test exercising unsafe
/// code needs the argument just as much.
fn lint_unsafe_audit(file: &SourceFile<'_>, out: &mut Vec<Violation>) {
    let has_safety_near = |line: u32| {
        file.tokens.iter().any(|t| {
            t.comment().is_some_and(|c| c.contains("SAFETY:"))
                && t.line + 3 >= line
                && t.line <= line
        })
    };
    for tok in file.code_tokens() {
        if tok.ident() == Some("unsafe") && !has_safety_near(tok.line) {
            push(
                out,
                file,
                tok.line,
                "unsafe-audit",
                "`unsafe` without an adjacent `// SAFETY:` comment: state the \
                 invariant that makes this sound (same line or up to three \
                 lines above)"
                    .into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> (Vec<Violation>, usize) {
        let f = SourceFile::parse(path, src);
        audit_file(&f)
    }

    #[test]
    fn hashmap_on_deterministic_path_is_flagged_with_location() {
        let (v, _) = run(
            "crates/ilp/src/presolve.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!(v[0].lint, "determinism");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
        assert!(v[0].message.contains("BTreeMap"));
    }

    #[test]
    fn hashmap_off_deterministic_path_is_clean() {
        let (v, _) = run(
            "crates/core/src/eviction.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn instant_now_flagged_but_stored_instant_is_not() {
        let (v, _) = run(
            "crates/obs/src/span.rs",
            "use std::time::Instant;\nfn f(s: Instant) -> u64 { s.elapsed().as_micros() as u64 }\nfn g() { let t = Instant::now(); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn test_region_is_exempt_from_determinism() {
        let (v, _) = run(
            "crates/ilp/src/presolve.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_msr_token_outside_uncore_is_flagged() {
        let (v, _) = run(
            "crates/core/src/mapper.rs",
            "use coremap_uncore::msr::{unit_ctl, UNIT_CTL_FREEZE};\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.lint == "backend-discipline"));
    }

    #[test]
    fn raw_msr_token_in_driver_paths_is_fine() {
        // The PMON programming layer and the backend wrappers are the
        // designated consumers of the register map.
        for path in [
            "crates/core/src/monitor.rs",
            "crates/core/src/backend/replay.rs",
        ] {
            let (v, _) = run(path, "fn f() { let a = UNIT_CTL_FREEZE; }\n");
            assert!(v.is_empty(), "{path}: {v:?}");
        }
    }

    #[test]
    fn raw_msr_token_inside_uncore_is_fine() {
        let (v, _) = run(
            "crates/uncore/src/machine.rs",
            "fn f() { let a = UNIT_CTL_FREEZE; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn library_unwrap_flagged_binary_unwrap_not() {
        let src = "fn f() { std::fs::read(\"x\").unwrap(); }\n";
        let (v, _) = run("crates/core/src/mapper.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic-safety");
        let (v, _) = run("crates/cli/src/main.rs", src);
        assert!(v.is_empty());
    }

    #[test]
    fn lock_unwrap_gets_the_poison_message() {
        let (v, _) = run(
            "crates/fleet/src/runner.rs",
            "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("lock_clean"), "{}", v[0].message);
    }

    #[test]
    fn unwrap_or_else_and_unwrap_or_default_are_not_unwrap() {
        let (v, _) = run(
            "crates/fleet/src/runner.rs",
            "fn f(m: std::sync::Mutex<u32>) -> u32 { m.into_inner().unwrap_or_else(|e| e.into_inner()) }\nfn g(o: Option<u32>) -> u32 { o.unwrap_or_default() }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let (v, _) = run(
            "crates/core/src/mapper.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "unsafe-audit");
    }

    #[test]
    fn unsafe_with_safety_comment_is_fine() {
        let (v, _) = run(
            "crates/core/src/mapper.rs",
            "// SAFETY: p is non-null and points into the pinned buffer.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn well_formed_suppression_waives_and_counts() {
        let (v, suppressed) = run(
            "crates/ilp/src/presolve.rs",
            "// audit: allow(determinism): scratch map, drained via sorted keys below\nuse std::collections::HashMap;\n",
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn suppression_without_justification_is_malformed_and_waives_nothing() {
        let (v, suppressed) = run(
            "crates/ilp/src/presolve.rs",
            "use std::collections::HashMap; // audit: allow(determinism)\n",
        );
        assert_eq!(suppressed, 0);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.lint == "determinism"));
        assert!(v.iter().any(|x| x.lint == "malformed-suppression"));
    }

    #[test]
    fn unknown_lint_name_is_malformed() {
        let (v, _) = run(
            "crates/ilp/src/presolve.rs",
            "fn f() {} // audit: allow(determinizm): typo\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "malformed-suppression");
        assert!(v[0].message.contains("determinizm"));
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let (v, _) = run(
            "crates/ilp/src/presolve.rs",
            "fn f() {} // audit: allow(determinism): left over from a refactor\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "unused-suppression");
    }

    #[test]
    fn suppression_of_wrong_lint_does_not_waive() {
        let (v, _) = run(
            "crates/ilp/src/presolve.rs",
            "use std::collections::HashMap; // audit: allow(panic-safety): wrong lint\n",
        );
        // The determinism hit survives AND the annotation is unused.
        assert!(v.iter().any(|x| x.lint == "determinism"), "{v:?}");
        assert!(v.iter().any(|x| x.lint == "unused-suppression"), "{v:?}");
    }

    #[test]
    fn fixtures_are_never_linted() {
        let (v, _) = run(
            "crates/audit/tests/fixtures/bad.rs",
            "use std::collections::HashMap;\nfn f() { x.unwrap(); unsafe {} }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
