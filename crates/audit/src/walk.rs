//! Workspace file discovery.
//!
//! Walks the real source trees of the workspace — `crates/*/{src,tests,
//! examples,benches}` plus the root crate's `src/` and `tests/` — and
//! yields `.rs` files as workspace-relative `/`-separated paths in sorted
//! order, so the audit scans (and therefore reports) identically on every
//! machine. `vendor/` and `target/` are never entered; `fixtures/`
//! directories are yielded but classified [`CodeKind::Fixture`] and
//! skipped by the lints.
//!
//! [`CodeKind::Fixture`]: crate::policy::CodeKind::Fixture

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const PRUNED: [&str; 4] = ["vendor", "target", ".git", ".github"];

/// Collects every auditable `.rs` file under `root`, workspace-relative,
/// sorted.
///
/// # Errors
///
/// Returns an [`std::io::Error`] when `root` or a subdirectory cannot be
/// read — the audit must fail loudly, not report "clean" on a tree it
/// could not see.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !PRUNED.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_prunes_vendor() {
        // When run from the workspace (cargo test), the manifest dir's
        // parent-parent is the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = workspace_files(root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/audit/src/walk.rs"));
        assert!(files.iter().any(|f| f == "crates/ilp/src/presolve.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output is sorted");
    }
}
