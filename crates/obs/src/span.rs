//! Wall-clock timing spans.

use std::time::Instant;

/// Guard measuring a wall-clock span, created by [`crate::time`].
///
/// On drop it records, into the registry current *at drop time*:
///
/// * counter `<name>.calls` — deterministic (one per span);
/// * histogram `<name>.us` — the elapsed microseconds, **volatile**
///   (excluded from deterministic exports).
///
/// Recording at drop time keeps the guard cheap and means a span opened
/// before [`crate::install`] and closed inside the scope still lands in
/// the registry — matching the intuition that the innermost active
/// registry owns the event.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn start(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            // audit: allow(determinism): wall-clock spans feed only volatile metrics (`<name>.us`), which the deterministic export excludes by design
            start: Instant::now(),
        }
    }

    /// Elapsed time since the span started, in whole microseconds.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        crate::with_current(|r| {
            r.add(&format!("{}.calls", self.name), 1);
            r.observe_volatile(&format!("{}.us", self.name), us);
        });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use crate::Registry;
    use std::sync::Arc;

    #[test]
    fn span_measures_nonzero_time() {
        let reg = Arc::new(Registry::new());
        let _g = crate::install(reg.clone());
        {
            let span = crate::time("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(span.elapsed_us() >= 1_000);
        }
        let h = reg.histogram("work.us").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_000);
        assert_eq!(reg.counter_value("work.calls"), 1);
    }
}
