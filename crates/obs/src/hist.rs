//! Deterministic power-of-two histograms.

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `k` counts samples whose value `v` satisfies
/// `2^(k-1) < v <= 2^k - ...`; concretely, a sample lands in the bucket
/// indexed by its bit length (`0` for the value `0`), so bucket upper
/// bounds are `0, 1, 3, 7, 15, …, 2^k - 1`. The layout is exact-count in
/// `count`/`sum`/`min`/`max` and approximate in the buckets — precise
/// enough to spot a skewed distribution of, say, simplex pivot counts per
/// LP, while staying byte-deterministic (no floating-point accumulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping add; campaigns stay far below 2^64).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample, `0` when empty.
    pub max: u64,
    /// `buckets[k]` counts samples of bit length `k` (value 0 → bucket 0).
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Bucket index of `value` (its bit length).
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `k`.
    fn bucket_bound(k: usize) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (Self::bucket_bound(k), c))
            .collect()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (bucket-wise; exact fields combine).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_exact_summary_fields() {
        let mut h = Histogram::new();
        for v in [3, 1, 10] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 14);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 10);
        assert!((h.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn buckets_follow_bit_length() {
        let mut h = Histogram::new();
        h.record(0); // bucket bound 0
        h.record(1); // bound 1
        h.record(2); // bound 3
        h.record(3); // bound 3
        h.record(8); // bound 15
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (3, 2), (15, 1)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 5, 9] {
            a.record(v);
        }
        for v in [2, 5, 100] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
        assert_eq!(ab.min, 1);
        assert_eq!(ab.max, 100);
    }

    #[test]
    fn empty_histogram_is_empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
