//! Hand-rolled JSON export with a byte-stable layout.
//!
//! The registry must export without pulling serialization dependencies
//! into every pipeline crate, and the output must be byte-identical across
//! runs: keys sorted, 2-space indentation, `u64` rendered as plain
//! integers and `f64` through Rust's shortest-roundtrip formatter.

use std::collections::BTreeMap;

use crate::registry::{Metric, MetricValue};

/// Identifies the snapshot layout; bump on breaking schema changes.
pub const SCHEMA: &str = "coremap-metrics/v1";

/// Renders the snapshot: a `schema` tag plus one sorted object per metric
/// kind. Volatile metrics are skipped unless `include_volatile`.
pub fn render(snapshot: &BTreeMap<String, Metric>, include_volatile: bool) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for (name, metric) in snapshot {
        if metric.volatile && !include_volatile {
            continue;
        }
        match &metric.value {
            MetricValue::Counter(c) => counters.push(format!("{}: {c}", quote(name))),
            MetricValue::Gauge(g) => gauges.push(format!("{}: {}", quote(name), float(*g))),
            MetricValue::Histogram(h) => {
                let buckets = h
                    .nonzero_buckets()
                    .iter()
                    .map(|(bound, count)| format!("[{bound}, {count}]"))
                    .collect::<Vec<_>>()
                    .join(", ");
                hists.push(format!(
                    "{}: {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [{buckets}] }}",
                    quote(name),
                    h.count,
                    h.sum,
                    if h.is_empty() { 0 } else { h.min },
                    h.max,
                    float(h.mean()),
                ));
            }
        }
    }
    let section = |entries: Vec<String>| {
        if entries.is_empty() {
            "{}".to_owned()
        } else {
            format!("{{\n    {}\n  }}", entries.join(",\n    "))
        }
    };
    format!(
        "{{\n  \"schema\": {},\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}}\n",
        quote(SCHEMA),
        section(counters),
        section(gauges),
        section(hists),
    )
}

/// JSON string literal with the mandatory escapes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Stable `f64` rendering; JSON has no NaN/Infinity, so those become null.
fn float(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic; integral
        // values print without a fraction ("42").
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::Registry;

    #[test]
    fn export_is_valid_and_sorted() {
        let r = Registry::new();
        r.add("z.counter", 2);
        r.add("a.counter", 1);
        r.set_gauge("m.gauge", 1.5);
        r.observe("h.hist", 3);
        let json = r.to_json(true);
        assert!(json.starts_with("{\n  \"schema\": \"coremap-metrics/v1\""));
        let a = json.find("a.counter").unwrap();
        let z = json.find("z.counter").unwrap();
        assert!(a < z, "keys must be sorted");
        assert!(json.contains("\"m.gauge\": 1.5"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn integral_gauges_render_without_fraction() {
        let r = Registry::new();
        r.set_gauge("ops", 42.0);
        assert!(r.to_json(true).contains("\"ops\": 42"));
    }

    #[test]
    fn keys_are_escaped() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn empty_registry_renders_empty_sections() {
        let r = Registry::new();
        let json = r.to_json(false);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
