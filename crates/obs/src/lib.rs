//! # coremap-obs
//!
//! Observability layer for the core-map measurement pipeline.
//!
//! The paper's methodology is a long chain of fragile measurements —
//! eviction-set construction, PMON ingress sampling, ILP reconstruction —
//! repeated across a whole fleet of instances. When a campaign misbehaves,
//! the raw `CoreMap` (or its absence) says nothing about *where* the run
//! went wrong. This crate provides the missing instrumentation: a
//! lightweight, dependency-free metrics [`Registry`] holding counters,
//! gauges and histograms, plus wall-clock timing spans, with a
//! deterministic JSON export suitable for CI snapshot assertions.
//!
//! ## Recording model
//!
//! Instrumentation points throughout the pipeline call the free functions
//! in this module ([`inc`], [`add`], [`set_gauge`], [`observe`],
//! [`time`]). They record into the *currently installed* registry — a
//! thread-local stack managed by [`install`] — and are no-ops when no
//! registry is installed, so uninstrumented callers (most unit tests) pay
//! only a thread-local read per event.
//!
//! ```
//! use std::sync::Arc;
//! use coremap_obs::{self as obs, Registry};
//!
//! let registry = Arc::new(Registry::new());
//! {
//!     let _scope = obs::install(registry.clone());
//!     obs::inc("demo.events");
//!     obs::add("demo.events", 2);
//! }
//! assert_eq!(registry.counter_value("demo.events"), 3);
//! ```
//!
//! ## Determinism
//!
//! Every metric is either *deterministic* (counters of algorithmic events:
//! simplex pivots, eviction probes, MSR reads…) or *volatile* (anything
//! derived from wall-clock time or thread scheduling: span durations,
//! per-worker job counts). [`Registry::to_json`] with
//! `include_volatile = false` exports only the deterministic subset with
//! sorted keys and stable number formatting — the same pipeline run twice
//! over the same seed produces byte-identical snapshots, whatever the
//! worker count. The fleet runner guarantees worker-count independence by
//! collecting each instance's metrics into its own sub-registry and
//! [merging](Registry::merge) them in instance order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod json;
mod registry;
mod span;

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

pub use hist::Histogram;
pub use registry::{Metric, MetricValue, Registry};
pub use span::SpanGuard;

thread_local! {
    /// Stack of installed registries; the innermost (last) one is current.
    static CURRENT: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Makes `registry` the current recording target for this thread until the
/// returned guard is dropped. Installs nest: the innermost registry wins,
/// and dropping the guard re-exposes the previous one.
///
/// The guard is deliberately `!Send`: it must be dropped on the thread it
/// was created on.
#[must_use = "recording stops when the guard is dropped"]
pub fn install(registry: Arc<Registry>) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(registry));
    InstallGuard {
        _not_send: PhantomData,
    }
}

/// The registry currently installed on this thread, if any.
pub fn current() -> Option<Arc<Registry>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Scope guard returned by [`install`]; uninstalls the registry on drop.
#[derive(Debug)]
pub struct InstallGuard {
    // `Rc`-like !Send marker: the guard pops this thread's stack.
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Runs `f` against the current registry, if one is installed.
fn with_current(f: impl FnOnce(&Registry)) {
    CURRENT.with(|c| {
        if let Some(reg) = c.borrow().last() {
            f(reg);
        }
    });
}

/// Increments the counter `name` by one in the current registry.
pub fn inc(name: &str) {
    with_current(|r| r.add(name, 1));
}

/// Adds `n` to the counter `name` in the current registry.
pub fn add(name: &str, n: u64) {
    with_current(|r| r.add(name, n));
}

/// Sets the gauge `name` to `value` in the current registry.
pub fn set_gauge(name: &str, value: f64) {
    with_current(|r| r.set_gauge(name, value));
}

/// Records `value` into the histogram `name` in the current registry.
pub fn observe(name: &str, value: u64) {
    with_current(|r| r.observe(name, value));
}

/// Starts a wall-clock timing span. On drop it increments the
/// deterministic counter `<name>.calls` and records the elapsed
/// microseconds into the *volatile* histogram `<name>.us` of whatever
/// registry is current at drop time.
pub fn time(name: &str) -> SpanGuard {
    SpanGuard::start(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_registry() {
        // Must not panic or allocate a registry.
        inc("nobody.listens");
        add("nobody.listens", 5);
        set_gauge("nobody.listens", 1.0);
        observe("nobody.listens", 1);
        drop(time("nobody.listens"));
        assert!(current().is_none());
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _o = install(outer.clone());
        inc("depth");
        {
            let _i = install(inner.clone());
            inc("depth");
            inc("depth");
        }
        inc("depth");
        assert_eq!(outer.counter_value("depth"), 2);
        assert_eq!(inner.counter_value("depth"), 2);
    }

    #[test]
    fn worker_threads_start_uninstrumented() {
        let reg = Arc::new(Registry::new());
        let _g = install(reg.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                // Thread-local stack is per thread: nothing installed here.
                assert!(current().is_none());
                inc("lost");
            });
        });
        assert_eq!(reg.counter_value("lost"), 0);
    }

    #[test]
    fn span_records_calls_and_duration() {
        let reg = Arc::new(Registry::new());
        {
            let _g = install(reg.clone());
            drop(time("phase"));
            drop(time("phase"));
        }
        assert_eq!(reg.counter_value("phase.calls"), 2);
        let snapshot = reg.to_json(true);
        assert!(snapshot.contains("phase.us"), "{snapshot}");
        // The duration histogram is volatile: deterministic export drops it.
        assert!(!reg.to_json(false).contains("phase.us"));
    }
}
