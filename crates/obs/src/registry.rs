//! The thread-safe metrics registry.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::hist::Histogram;
use crate::json;

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written instantaneous value.
    Gauge(f64),
    /// Distribution of recorded samples (boxed: a histogram is an order of
    /// magnitude larger than the other variants).
    Histogram(Box<Histogram>),
}

/// One named metric: its value plus the volatility marker.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Current value.
    pub value: MetricValue,
    /// Whether the metric depends on wall-clock time or thread scheduling
    /// (and is therefore excluded from deterministic exports).
    pub volatile: bool,
}

/// A thread-safe collection of named metrics.
///
/// Names are flat dot-separated strings (`"ilp.simplex.pivots"`). Keys are
/// kept sorted (`BTreeMap`), so snapshots and JSON exports have a stable
/// order. All recording methods take `&self`; the registry is freely
/// shared behind an `Arc` across the fleet runner's worker pool.
///
/// Locking never propagates poisoning: a panicking instrumented job (the
/// fleet runner catches per-instance panics) must not take the whole
/// campaign's metrics down with it.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // Metrics stay usable after a recorded panic; the map is always in
        // a consistent state between operations.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn upsert(
        &self,
        name: &str,
        volatile: bool,
        f: impl FnOnce(&mut MetricValue),
        new: impl FnOnce() -> MetricValue,
    ) {
        let mut map = self.lock();
        match map.get_mut(name) {
            Some(metric) => {
                metric.volatile |= volatile;
                f(&mut metric.value);
            }
            None => {
                let mut value = new();
                f(&mut value);
                map.insert(name.to_owned(), Metric { value, volatile });
            }
        }
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, n: u64) {
        self.record_counter(name, n, false);
    }

    /// Adds `n` to the *volatile* counter `name` (e.g. per-worker job
    /// counts, which depend on scheduling).
    pub fn add_volatile(&self, name: &str, n: u64) {
        self.record_counter(name, n, true);
    }

    fn record_counter(&self, name: &str, n: u64, volatile: bool) {
        self.upsert(
            name,
            volatile,
            |v| {
                if let MetricValue::Counter(c) = v {
                    *c += n;
                } else {
                    *v = MetricValue::Counter(n);
                }
            },
            || MetricValue::Counter(0),
        );
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.record_gauge(name, value, false);
    }

    /// Sets the *volatile* gauge `name` to `value` (e.g. wall-clock
    /// timestamps).
    pub fn set_gauge_volatile(&self, name: &str, value: f64) {
        self.record_gauge(name, value, true);
    }

    fn record_gauge(&self, name: &str, value: f64, volatile: bool) {
        self.upsert(
            name,
            volatile,
            |v| *v = MetricValue::Gauge(value),
            || MetricValue::Gauge(0.0),
        );
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.record_hist(name, value, false);
    }

    /// Records `value` into the *volatile* histogram `name` (e.g. span
    /// durations in microseconds).
    pub fn observe_volatile(&self, name: &str, value: u64) {
        self.record_hist(name, value, true);
    }

    fn record_hist(&self, name: &str, value: u64, volatile: bool) {
        self.upsert(
            name,
            volatile,
            |v| {
                if let MetricValue::Histogram(h) = v {
                    h.record(value);
                } else {
                    let mut h = Histogram::new();
                    h.record(value);
                    *v = MetricValue::Histogram(Box::new(h));
                }
            },
            || MetricValue::Histogram(Box::default()),
        );
    }

    /// Current value of the counter `name`, `0` if absent or not a counter.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.lock().get(name).map(|m| &m.value) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of the gauge `name`, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.lock().get(name).map(|m| &m.value) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Clone of the histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.lock().get(name).map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => Some((**h).clone()),
            _ => None,
        }
    }

    /// Sorted snapshot of every metric.
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.lock().clone()
    }

    /// Whether no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Folds every metric of `other` into `self`: counters add, gauges are
    /// overwritten by `other`'s value, histograms merge bucket-wise; the
    /// volatile marker is sticky. Merging is commutative for counters and
    /// histograms, so aggregate pipeline metrics are independent of the
    /// order per-instance registries complete in — the fleet runner
    /// nevertheless merges in instance order so per-instance gauges are
    /// deterministic too.
    pub fn merge(&self, other: &Registry) {
        let theirs = other.snapshot();
        let mut map = self.lock();
        for (name, metric) in theirs {
            match map.get_mut(&name) {
                Some(mine) => {
                    mine.volatile |= metric.volatile;
                    match (&mut mine.value, &metric.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        // Gauge-over-gauge and any type conflict: the
                        // incoming value wins.
                        (mine_value, _) => *mine_value = metric.value.clone(),
                    }
                }
                None => {
                    map.insert(name, metric);
                }
            }
        }
    }

    /// Serializes the registry as pretty-printed JSON with sorted keys and
    /// stable number formatting. With `include_volatile = false` only the
    /// deterministic subset is exported: the same seeded run then produces
    /// a byte-identical snapshot regardless of wall time, worker count or
    /// scheduling. See `DESIGN.md` ("Observability") for the schema.
    pub fn to_json(&self, include_volatile: bool) -> String {
        json::render(&self.snapshot(), include_volatile)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.add("a", 1);
        r.add("a", 2);
        assert_eq!(r.counter_value("a"), 3);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge_value("g"), Some(2.5));
    }

    #[test]
    fn merge_adds_counters_and_keeps_unique_gauges() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("shared", 2);
        b.add("shared", 3);
        b.set_gauge("only.b", 7.0);
        b.observe("h", 4);
        a.observe("h", 1);
        a.merge(&b);
        assert_eq!(a.counter_value("shared"), 5);
        assert_eq!(a.gauge_value("only.b"), Some(7.0));
        let h = a.histogram("h").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 1, 4));
    }

    #[test]
    fn volatile_marker_is_sticky_across_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("c", 1);
        b.add_volatile("c", 1);
        a.merge(&b);
        assert!(!a.to_json(false).contains("\"c\""));
        assert!(a.to_json(true).contains("\"c\""));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 4000);
    }
}
