//! The CPU SKUs evaluated in the paper.

use std::fmt;

use coremap_mesh::{DieTemplate, Topology};
use serde::{Deserialize, Serialize};

/// A Xeon SKU from the paper's evaluation (Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuModel {
    /// Xeon Platinum 8124M: AWS-custom Skylake part, 18 enabled cores on
    /// the 28-tile XCC die.
    Platinum8124M,
    /// Xeon Platinum 8175M: AWS-custom Skylake part, 24 enabled cores.
    Platinum8175M,
    /// Xeon Platinum 8259CL: AWS-custom Cascade Lake part, 24 enabled cores
    /// plus two LLC-only tiles (26 active CHAs).
    Platinum8259CL,
    /// Xeon Gold 6354: Ice Lake part evaluated on OCI, 18 enabled cores.
    Gold6354,
}

impl CpuModel {
    /// All models in the paper's order.
    pub const ALL: [CpuModel; 4] = [
        CpuModel::Platinum8124M,
        CpuModel::Platinum8175M,
        CpuModel::Platinum8259CL,
        CpuModel::Gold6354,
    ];

    /// The die this SKU is manufactured on.
    pub fn template(self) -> DieTemplate {
        match self {
            CpuModel::Gold6354 => DieTemplate::IceLakeXcc,
            _ => DieTemplate::SkylakeXcc,
        }
    }

    /// The topology description of this SKU's die — the named entry of the
    /// builtin topology zoo matching [`template`](Self::template), except
    /// that Cascade Lake is distinguished by name (the paper treats SKX and
    /// CLX as the same 5x6 mesh; the zoo keeps separate labels so fleet
    /// records carry the marketing generation).
    #[allow(clippy::expect_used)]
    pub fn topology(self) -> &'static Topology {
        let name = match self {
            CpuModel::Platinum8124M | CpuModel::Platinum8175M => "skylake-xcc",
            CpuModel::Platinum8259CL => "cascadelake-xcc",
            CpuModel::Gold6354 => "icelake-xcc",
        };
        // audit: allow(panic-safety): the builtin zoo statically contains every name listed above
        Topology::builtin(name).expect("builtin topology for every SKU")
    }

    /// Enabled core count.
    pub fn core_count(self) -> usize {
        match self {
            CpuModel::Platinum8124M | CpuModel::Gold6354 => 18,
            CpuModel::Platinum8175M | CpuModel::Platinum8259CL => 24,
        }
    }

    /// LLC-only tiles (active CHA, fused-off core).
    pub fn llc_only_count(self) -> usize {
        match self {
            CpuModel::Platinum8259CL => 2,
            CpuModel::Gold6354 => 8,
            _ => 0,
        }
    }

    /// Active CHAs (cores + LLC-only tiles).
    pub fn cha_count(self) -> usize {
        self.core_count() + self.llc_only_count()
    }

    /// Fully disabled core tiles on the die.
    pub fn disabled_count(self) -> usize {
        self.template().core_capable_count() - self.cha_count()
    }

    /// Number of instances the paper measured for this model.
    pub fn paper_population(self) -> usize {
        match self {
            CpuModel::Gold6354 => 10,
            _ => 100,
        }
    }

    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            CpuModel::Platinum8124M => "Xeon Platinum 8124M",
            CpuModel::Platinum8175M => "Xeon Platinum 8175M",
            CpuModel::Platinum8259CL => "Xeon Platinum 8259CL",
            CpuModel::Gold6354 => "Xeon Gold 6354",
        }
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent_with_dies() {
        for m in CpuModel::ALL {
            assert!(m.cha_count() <= m.template().core_capable_count(), "{m}");
            assert_eq!(
                m.cha_count() + m.disabled_count(),
                m.template().core_capable_count()
            );
        }
    }

    #[test]
    fn topology_agrees_with_template() {
        for m in CpuModel::ALL {
            let topo = m.topology();
            assert_eq!(topo.dim(), m.template().dim(), "{m}");
            assert_eq!(
                topo.core_capable_count(),
                m.template().core_capable_count(),
                "{m}"
            );
        }
        assert_eq!(
            CpuModel::Platinum8259CL.topology().name(),
            "cascadelake-xcc"
        );
    }

    #[test]
    fn paper_figures() {
        assert_eq!(CpuModel::Platinum8124M.core_count(), 18);
        assert_eq!(CpuModel::Platinum8175M.core_count(), 24);
        assert_eq!(CpuModel::Platinum8259CL.cha_count(), 26);
        assert_eq!(CpuModel::Gold6354.core_count(), 18);
        assert_eq!(CpuModel::Platinum8124M.disabled_count(), 10);
        assert_eq!(CpuModel::Platinum8175M.disabled_count(), 4);
        assert_eq!(CpuModel::Platinum8259CL.disabled_count(), 2);
    }
}
