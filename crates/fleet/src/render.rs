//! ASCII rendering of ground-truth floorplans (Fig. 4/5 style).
//!
//! Recovered maps render through [`CoreMap::render`](coremap_core::CoreMap);
//! this module renders the hidden truth for side-by-side comparison in the
//! experiment harnesses.

use std::fmt::Write;

use coremap_mesh::{Floorplan, TileCoord, TileKind};

/// Renders a floorplan as a grid of `os/cha`, `LLC/cha`, `IMC`, `SYS` and
/// `.` (disabled) cells.
pub fn render_floorplan(plan: &Floorplan) -> String {
    let dim = plan.dim();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(dim.rows);
    for row in 0..dim.rows {
        let mut line = Vec::with_capacity(dim.cols);
        for col in 0..dim.cols {
            let t = plan.tile(TileCoord::new(row, col));
            let cell = match t.kind() {
                TileKind::Core { cha, core } => format!("{}/{}", core.index(), cha.index()),
                TileKind::LlcOnly { cha } => format!("LLC/{}", cha.index()),
                TileKind::Imc => "IMC".to_owned(),
                TileKind::System => "SYS".to_owned(),
                TileKind::Disabled => ".".to_owned(),
            };
            line.push(cell);
        }
        cells.push(line);
    }
    let width = cells
        .iter()
        .flat_map(|l| l.iter().map(String::len))
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for line in cells {
        for (i, cell) in line.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};

    #[test]
    fn render_shows_all_tile_kinds() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(0, 2))
            .llc_only(TileCoord::new(4, 4))
            .build()
            .unwrap();
        let r = render_floorplan(&plan);
        assert!(r.contains("IMC"));
        assert!(r.contains("LLC/"));
        assert!(r.contains('.'));
        assert_eq!(r.lines().count(), 5);
    }
}
