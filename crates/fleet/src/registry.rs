//! PPIN-keyed persistence of recovered maps.
//!
//! The mapping step needs root, but the recovered locations are permanent
//! per chip (paper Sec. IV): an attacker maps instances once, stores the
//! result keyed by PPIN, and any later (user-level) tenancy on a known chip
//! can reuse the map.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use coremap_core::CoreMap;
use coremap_mesh::Ppin;
use serde::{Deserialize, Serialize};

/// A registry of recovered core maps keyed by PPIN.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct MapRegistry {
    maps: BTreeMap<u64, CoreMap>,
}

impl MapRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered chips.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Registers a map under its PPIN (replacing any previous map for the
    /// same chip). Maps without a PPIN are rejected.
    ///
    /// Returns whether the map was inserted.
    pub fn insert(&mut self, map: CoreMap) -> bool {
        match map.ppin() {
            Some(ppin) => {
                self.maps.insert(ppin.value(), map);
                true
            }
            None => false,
        }
    }

    /// Looks up the map of a chip.
    pub fn get(&self, ppin: Ppin) -> Option<&CoreMap> {
        self.maps.get(&ppin.value())
    }

    /// Iterates over `(ppin, map)` pairs in PPIN order.
    pub fn iter(&self) -> impl Iterator<Item = (Ppin, &CoreMap)> {
        self.maps.iter().map(|(&p, m)| (Ppin::new(p), m))
    }

    /// Serializes the registry as JSON.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer_pretty(writer, self)
    }

    /// Loads a registry from JSON.
    ///
    /// # Errors
    ///
    /// I/O and deserialization errors.
    pub fn load<R: Read>(reader: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(reader)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{ChaId, GridDim, TileCoord};

    fn map(ppin: u64) -> CoreMap {
        CoreMap::new(
            GridDim::new(1, 2),
            vec![TileCoord::new(0, 0), TileCoord::new(0, 1)],
            vec![ChaId::new(0), ChaId::new(1)],
            vec![],
        )
        .with_ppin(Ppin::new(ppin))
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = MapRegistry::new();
        assert!(r.insert(map(7)));
        assert!(r.insert(map(9)));
        assert_eq!(r.len(), 2);
        assert!(r.get(Ppin::new(7)).is_some());
        assert!(r.get(Ppin::new(8)).is_none());
    }

    #[test]
    fn unkeyed_map_rejected() {
        let mut r = MapRegistry::new();
        let unkeyed = CoreMap::new(
            GridDim::new(1, 1),
            vec![TileCoord::new(0, 0)],
            vec![ChaId::new(0)],
            vec![],
        );
        assert!(!r.insert(unkeyed));
        assert!(r.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let mut r = MapRegistry::new();
        r.insert(map(1));
        r.insert(map(2));
        let mut buf = Vec::new();
        r.save(&mut buf).unwrap();
        let back = MapRegistry::load(buf.as_slice()).unwrap();
        assert_eq!(r, back);
    }
}
