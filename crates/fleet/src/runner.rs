//! The shared parallel fleet runner.
//!
//! Every consumer that measures many instances — the CLI's fleet survey,
//! the experiment binaries regenerating the paper's tables — needs the
//! same harness: walk instances `0..count` of one model, run a per-instance
//! job on a bounded worker pool, and collect per-instance results *in
//! instance order* so the output is independent of worker count and
//! scheduling. [`FleetRunner`] is that harness; a failing instance becomes
//! an `Err` entry in the [`FleetOutcome`] instead of aborting the whole
//! campaign — including an instance that *panics*, which is caught and
//! reported as [`JobFailure::Panic`] without disturbing its siblings.
//!
//! The runner is also the aggregation point of the observability layer:
//! each instance records into its own [`coremap_obs::Registry`], and the
//! sub-registries are merged into the caller's registry *in instance
//! order*, so the deterministic metric snapshot is independent of the
//! worker count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use coremap_core::backend::MachineBackend;
use coremap_core::{verify, CoreMap, CoreMapper, MapError};
use coremap_obs as obs;

use crate::stats::{IdMappingStats, PatternStats};
use crate::{CloudFleet, CloudInstance, CpuModel};

/// Per-instance result slots, filled as workers finish.
type ResultSlots<T, E> = Mutex<Vec<Option<(CloudInstance, Result<T, JobFailure<E>>)>>>;

/// Per-instance metric sub-registries, filled as workers finish.
type RegistrySlots = Mutex<Vec<Option<Arc<obs::Registry>>>>;

/// Locks `m`, recovering the data even if a previous holder panicked.
///
/// Every write the runner makes under these mutexes is a self-contained
/// single-slot update, so a poisoned lock never leaves the shared state
/// torn — it only means some other slot's job died, which the outcome
/// already reports per instance.
fn lock_clean<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload as text for [`JobFailure::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Why one instance of a fleet campaign produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure<E> {
    /// The job returned its own error.
    Job(E),
    /// The job panicked; the payload is rendered as text.
    Panic(String),
}

impl<E> JobFailure<E> {
    /// The job's own error, if the failure was not a panic.
    pub fn job_error(&self) -> Option<&E> {
        match self {
            Self::Job(e) => Some(e),
            Self::Panic(_) => None,
        }
    }

    /// Whether this failure was a caught panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, Self::Panic(_))
    }
}

impl<E: std::fmt::Display> std::fmt::Display for JobFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Job(e) => e.fmt(f),
            Self::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// A work-queue thread pool over the instances of one fleet model.
///
/// Results are keyed by instance index, so for a deterministic job the
/// outcome is identical whatever the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    workers: usize,
}

impl FleetRunner {
    /// A runner with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runner.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` once per instance `0..count` of `model`, returning
    /// per-instance results in instance order.
    ///
    /// A panicking job does not abort the campaign: the panic is caught on
    /// the worker, reported as [`JobFailure::Panic`] for that one
    /// instance, and the worker moves on to the next queue entry.
    ///
    /// If a metrics registry is installed on the calling thread
    /// ([`coremap_obs::install`]), each job records into a fresh
    /// per-instance sub-registry; the sub-registries are merged into the
    /// caller's registry in instance order, together with the campaign
    /// counters `fleet.instances.{ok,err,panicked}`.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the model's population — a caller bug,
    /// unlike a *job* failure, which lands as an `Err` in the outcome.
    pub fn run<T, E, F>(
        &self,
        fleet: &CloudFleet,
        model: CpuModel,
        count: usize,
        job: F,
    ) -> FleetOutcome<T, E>
    where
        T: Send,
        E: Send,
        F: Fn(&CloudInstance) -> Result<T, E> + Sync,
    {
        // Hold the caller's registry for the whole campaign: the merge at
        // the end must not depend on the thread-local still being set.
        let registry = obs::current();
        let instrumented = registry.is_some();
        let queue: Mutex<Vec<usize>> = Mutex::new((0..count).rev().collect());
        let results: ResultSlots<T, E> = Mutex::new((0..count).map(|_| None).collect());
        let registries: RegistrySlots = Mutex::new((0..count).map(|_| None).collect());
        std::thread::scope(|scope| {
            for worker in 0..self.workers.min(count.max(1)) {
                let (queue, results, registries, job) = (&queue, &results, &registries, &job);
                scope.spawn(move || loop {
                    let idx = match lock_clean(queue).pop() {
                        Some(i) => i,
                        None => break,
                    };
                    #[allow(clippy::expect_used)]
                    // audit: allow(panic-safety): documented "# Panics" contract — count above the population is a caller bug, checked before any work ran
                    let instance = fleet.instance(model, idx).expect("index below population");
                    let sub = instrumented.then(|| Arc::new(obs::Registry::new()));
                    let start = std::time::Instant::now();
                    let result = {
                        let _scope = sub.clone().map(obs::install);
                        catch_unwind(AssertUnwindSafe(|| job(&instance)))
                    };
                    let result = match result {
                        Ok(Ok(v)) => Ok(v),
                        Ok(Err(e)) => Err(JobFailure::Job(e)),
                        Err(payload) => Err(JobFailure::Panic(panic_message(payload))),
                    };
                    if let Some(sub) = &sub {
                        sub.set_gauge_volatile(
                            &format!("fleet.instance.{idx:04}.wall_us"),
                            start.elapsed().as_micros() as f64,
                        );
                        sub.add_volatile(&format!("fleet.worker.{worker:02}.jobs"), 1);
                    }
                    lock_clean(results)[idx] = Some((instance, result));
                    lock_clean(registries)[idx] = sub;
                });
            }
        });
        #[allow(clippy::expect_used)]
        let results: Vec<_> = results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            // audit: allow(panic-safety): infallible by construction — the queue held exactly the indices 0..count and scope() joined every worker, so each slot was written
            .map(|r| r.expect("every index processed"))
            .collect();
        if let Some(reg) = &registry {
            // Instance-order merge: counter and histogram merges commute,
            // but gauge collisions resolve last-wins, so a fixed order keeps
            // the snapshot independent of worker scheduling.
            let subs = registries
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            for sub in subs.into_iter().flatten() {
                reg.merge(&sub);
            }
            let (mut ok, mut errs, mut panics) = (0u64, 0u64, 0u64);
            for (_, r) in &results {
                match r {
                    Ok(_) => ok += 1,
                    Err(JobFailure::Job(_)) => errs += 1,
                    Err(JobFailure::Panic(_)) => panics += 1,
                }
            }
            obs::add("fleet.instances.ok", ok);
            obs::add("fleet.instances.err", errs);
            obs::add("fleet.instances.panicked", panics);
        }
        FleetOutcome { results }
    }

    /// Maps instances `0..count` of `model` with `mapper`, booting each
    /// through `boot` — generic over the [`MachineBackend`] the campaign
    /// measures, so the same runner drives simulators, recording wrappers
    /// or fault-injection studies.
    ///
    /// Idle runner threads are handed to the ILP stage: when the campaign
    /// has fewer instances than workers, each instance's branch-and-bound
    /// solve gets `workers / count` threads (never lowering an explicit
    /// `ilp_workers` setting). Solutions are byte-identical at any worker
    /// split, so this only changes wall-clock time.
    ///
    /// Recovered maps carry the model's die template, as every consumer
    /// wants them.
    pub fn map_instances<B, F>(
        &self,
        fleet: &CloudFleet,
        model: CpuModel,
        count: usize,
        mapper: &CoreMapper,
        boot: F,
    ) -> FleetOutcome<CoreMap, MapError>
    where
        B: MachineBackend,
        F: Fn(&CloudInstance) -> B + Sync,
    {
        let mut cfg = mapper.config().clone();
        cfg.ilp_workers = cfg.ilp_workers.max(self.workers / count.max(1));
        let mapper = CoreMapper::with_config(cfg);
        self.run(fleet, model, count, |instance| {
            let mut machine = boot(instance);
            mapper.map_with_diagnostics(&mut machine).map(|(m, diag)| {
                // Deterministic per-instance cost proxy: machine operations
                // issued, unlike wall time, are identical across reruns.
                obs::set_gauge(
                    &format!("fleet.instance.{:04}.ops", instance.index()),
                    diag.machine_ops as f64,
                );
                // Selection-path maps already carry their winning
                // hypothesis name; declared-die runs record the SKU's own
                // topology so fleet records are uniformly labelled.
                let m = match m.topology_name() {
                    Some(_) => m,
                    None => m.with_topology_name(model.topology().name()),
                };
                m.with_template(model.template())
            })
        })
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

/// Per-instance results of a fleet campaign, in instance order.
#[derive(Debug)]
pub struct FleetOutcome<T, E> {
    results: Vec<(CloudInstance, Result<T, JobFailure<E>>)>,
}

impl<T, E> FleetOutcome<T, E> {
    /// Number of instances processed.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no instances were processed.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// All per-instance results, in instance order.
    pub fn iter(&self) -> impl Iterator<Item = &(CloudInstance, Result<T, JobFailure<E>>)> {
        self.results.iter()
    }

    /// Successful instances, in instance order.
    pub fn successes(&self) -> impl Iterator<Item = (&CloudInstance, &T)> {
        self.results
            .iter()
            .filter_map(|(i, r)| r.as_ref().ok().map(|v| (i, v)))
    }

    /// Failed instances (job errors and caught panics), in instance order.
    pub fn failures(&self) -> impl Iterator<Item = (&CloudInstance, &JobFailure<E>)> {
        self.results
            .iter()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of failed instances (including panicked ones).
    pub fn failure_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_err()).count()
    }

    /// Number of instances whose job panicked.
    pub fn panic_count(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, r)| matches!(r, Err(f) if f.is_panic()))
            .count()
    }

    /// One-line progress summary of the campaign, e.g.
    /// `"6 instances: 5 ok, 1 failed (1 panicked)"`.
    pub fn summary(&self) -> String {
        let failed = self.failure_count();
        let panicked = self.panic_count();
        let mut s = format!(
            "{} instances: {} ok, {} failed",
            self.len(),
            self.len() - failed,
            failed
        );
        if panicked > 0 {
            s.push_str(&format!(" ({panicked} panicked)"));
        }
        s
    }

    /// Consumes the outcome, keeping only successes (skip-and-count
    /// callers should report [`failure_count`](Self::failure_count)
    /// first).
    pub fn into_successes(self) -> Vec<(CloudInstance, T)> {
        self.results
            .into_iter()
            .filter_map(|(i, r)| r.ok().map(|v| (i, v)))
            .collect()
    }
}

/// The survey statistics every fleet campaign reports (paper Tables I/II):
/// location-pattern diversity, ID-mapping diversity, and ground-truth
/// verification counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SurveyStats {
    /// Location-pattern diversity over the recovered maps.
    pub patterns: PatternStats,
    /// OS-core↔CHA ID-mapping diversity over the recovered maps.
    pub ids: IdMappingStats,
    /// Instances whose recovered map matches ground truth relatively.
    pub verified: usize,
    /// Instances mapped successfully.
    pub mapped: usize,
    /// Instances that failed to map.
    pub failed: usize,
}

impl SurveyStats {
    /// Folds a mapping campaign's outcome into survey statistics.
    pub fn collect(outcome: &FleetOutcome<CoreMap, MapError>) -> Self {
        let mut stats = Self::default();
        for (instance, map) in outcome.successes() {
            stats.patterns.record(map);
            stats.ids.record(map);
            if verify::matches_relative(map, instance.floorplan()) {
                stats.verified += 1;
            }
            stats.mapped += 1;
        }
        stats.failed = outcome.failure_count();
        stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn runner_results_arrive_in_instance_order() {
        let fleet = CloudFleet::with_seed(9);
        let outcome = FleetRunner::new(3).run(&fleet, CpuModel::Gold6354, 4, |instance| {
            Ok::<usize, MapError>(instance.index())
        });
        let indices: Vec<usize> = outcome.successes().map(|(_, &v)| v).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(outcome.failure_count(), 0);
    }

    #[test]
    fn failures_are_collected_not_fatal() {
        let fleet = CloudFleet::with_seed(9);
        let outcome = FleetRunner::new(2).run(&fleet, CpuModel::Gold6354, 4, |instance| {
            if instance.index() % 2 == 1 {
                Err(format!("instance {} rejected", instance.index()))
            } else {
                Ok(instance.index())
            }
        });
        assert_eq!(outcome.len(), 4);
        assert_eq!(outcome.failure_count(), 2);
        let kept: Vec<usize> = outcome
            .into_successes()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn panicking_job_is_isolated_per_instance() {
        let fleet = CloudFleet::with_seed(9);
        let outcome = FleetRunner::new(2).run(&fleet, CpuModel::Gold6354, 4, |instance| {
            if instance.index() == 2 {
                panic!("deliberate test panic on #{}", instance.index());
            }
            Ok::<usize, String>(instance.index())
        });
        assert_eq!(outcome.len(), 4);
        assert_eq!(outcome.failure_count(), 1);
        assert_eq!(outcome.panic_count(), 1);
        let (instance, failure) = outcome.failures().next().unwrap();
        assert_eq!(instance.index(), 2);
        assert!(
            matches!(failure, JobFailure::Panic(msg) if msg.contains("deliberate test panic")),
            "{failure}"
        );
        let ok: Vec<usize> = outcome.successes().map(|(_, &v)| v).collect();
        assert_eq!(ok, vec![0, 1, 3]);
        assert_eq!(
            outcome.summary(),
            "4 instances: 3 ok, 1 failed (1 panicked)"
        );
    }

    #[test]
    fn campaign_counters_land_in_installed_registry() {
        let fleet = CloudFleet::with_seed(9);
        let reg = Arc::new(obs::Registry::new());
        let _g = obs::install(reg.clone());
        let outcome = FleetRunner::new(3).run(&fleet, CpuModel::Gold6354, 5, |instance| {
            obs::inc("test.job.runs");
            match instance.index() {
                1 => Err::<usize, String>("rejected".into()),
                3 => panic!("boom"),
                i => Ok(i),
            }
        });
        assert_eq!(outcome.failure_count(), 2);
        assert_eq!(reg.counter_value("fleet.instances.ok"), 3);
        assert_eq!(reg.counter_value("fleet.instances.err"), 1);
        assert_eq!(reg.counter_value("fleet.instances.panicked"), 1);
        // Per-instance sub-registries merged back: even the panicked job's
        // partial metrics survive.
        assert_eq!(reg.counter_value("test.job.runs"), 5);
    }
}
