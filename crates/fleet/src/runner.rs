//! The shared parallel fleet runner.
//!
//! Every consumer that measures many instances — the CLI's fleet survey,
//! the experiment binaries regenerating the paper's tables — needs the
//! same harness: walk instances `0..count` of one model, run a per-instance
//! job on a bounded worker pool, and collect per-instance results *in
//! instance order* so the output is independent of worker count and
//! scheduling. [`FleetRunner`] is that harness; a failing instance becomes
//! an `Err` entry in the [`FleetOutcome`] instead of aborting the whole
//! campaign.

use std::sync::Mutex;

use coremap_core::backend::MachineBackend;
use coremap_core::{verify, CoreMap, CoreMapper, MapError};

use crate::stats::{IdMappingStats, PatternStats};
use crate::{CloudFleet, CloudInstance, CpuModel};

/// Per-instance result slots, filled as workers finish.
type ResultSlots<T, E> = Mutex<Vec<Option<(CloudInstance, Result<T, E>)>>>;

/// A work-queue thread pool over the instances of one fleet model.
///
/// Results are keyed by instance index, so for a deterministic job the
/// outcome is identical whatever the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    workers: usize,
}

impl FleetRunner {
    /// A runner with `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runner.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` once per instance `0..count` of `model`, returning
    /// per-instance results in instance order.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the model's population — a caller bug,
    /// unlike a *job* failure, which lands as an `Err` in the outcome.
    pub fn run<T, E, F>(
        &self,
        fleet: &CloudFleet,
        model: CpuModel,
        count: usize,
        job: F,
    ) -> FleetOutcome<T, E>
    where
        T: Send,
        E: Send,
        F: Fn(&CloudInstance) -> Result<T, E> + Sync,
    {
        let queue: Mutex<Vec<usize>> = Mutex::new((0..count).rev().collect());
        let results: ResultSlots<T, E> = Mutex::new((0..count).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(count.max(1)) {
                scope.spawn(|| loop {
                    let idx = match queue.lock().expect("queue lock").pop() {
                        Some(i) => i,
                        None => break,
                    };
                    let instance = fleet.instance(model, idx).expect("index below population");
                    let result = job(&instance);
                    results.lock().expect("results lock")[idx] = Some((instance, result));
                });
            }
        });
        FleetOutcome {
            results: results
                .into_inner()
                .expect("results lock")
                .into_iter()
                .map(|r| r.expect("every index processed"))
                .collect(),
        }
    }

    /// Maps instances `0..count` of `model` with `mapper`, booting each
    /// through `boot` — generic over the [`MachineBackend`] the campaign
    /// measures, so the same runner drives simulators, recording wrappers
    /// or fault-injection studies.
    ///
    /// Recovered maps carry the model's die template, as every consumer
    /// wants them.
    pub fn map_instances<B, F>(
        &self,
        fleet: &CloudFleet,
        model: CpuModel,
        count: usize,
        mapper: &CoreMapper,
        boot: F,
    ) -> FleetOutcome<CoreMap, MapError>
    where
        B: MachineBackend,
        F: Fn(&CloudInstance) -> B + Sync,
    {
        self.run(fleet, model, count, |instance| {
            let mut machine = boot(instance);
            mapper
                .map(&mut machine)
                .map(|m| m.with_template(model.template()))
        })
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

/// Per-instance results of a fleet campaign, in instance order.
#[derive(Debug)]
pub struct FleetOutcome<T, E> {
    results: Vec<(CloudInstance, Result<T, E>)>,
}

impl<T, E> FleetOutcome<T, E> {
    /// Number of instances processed.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no instances were processed.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// All per-instance results, in instance order.
    pub fn iter(&self) -> impl Iterator<Item = &(CloudInstance, Result<T, E>)> {
        self.results.iter()
    }

    /// Successful instances, in instance order.
    pub fn successes(&self) -> impl Iterator<Item = (&CloudInstance, &T)> {
        self.results
            .iter()
            .filter_map(|(i, r)| r.as_ref().ok().map(|v| (i, v)))
    }

    /// Failed instances, in instance order.
    pub fn failures(&self) -> impl Iterator<Item = (&CloudInstance, &E)> {
        self.results
            .iter()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of failed instances.
    pub fn failure_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_err()).count()
    }

    /// Consumes the outcome, keeping only successes (skip-and-count
    /// callers should report [`failure_count`](Self::failure_count)
    /// first).
    pub fn into_successes(self) -> Vec<(CloudInstance, T)> {
        self.results
            .into_iter()
            .filter_map(|(i, r)| r.ok().map(|v| (i, v)))
            .collect()
    }
}

/// The survey statistics every fleet campaign reports (paper Tables I/II):
/// location-pattern diversity, ID-mapping diversity, and ground-truth
/// verification counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SurveyStats {
    /// Location-pattern diversity over the recovered maps.
    pub patterns: PatternStats,
    /// OS-core↔CHA ID-mapping diversity over the recovered maps.
    pub ids: IdMappingStats,
    /// Instances whose recovered map matches ground truth relatively.
    pub verified: usize,
    /// Instances mapped successfully.
    pub mapped: usize,
    /// Instances that failed to map.
    pub failed: usize,
}

impl SurveyStats {
    /// Folds a mapping campaign's outcome into survey statistics.
    pub fn collect(outcome: &FleetOutcome<CoreMap, MapError>) -> Self {
        let mut stats = Self::default();
        for (instance, map) in outcome.successes() {
            stats.patterns.record(map);
            stats.ids.record(map);
            if verify::matches_relative(map, instance.floorplan()) {
                stats.verified += 1;
            }
            stats.mapped += 1;
        }
        stats.failed = outcome.failure_count();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_results_arrive_in_instance_order() {
        let fleet = CloudFleet::with_seed(9);
        let outcome = FleetRunner::new(3).run(&fleet, CpuModel::Gold6354, 4, |instance| {
            Ok::<usize, MapError>(instance.index())
        });
        let indices: Vec<usize> = outcome.successes().map(|(_, &v)| v).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(outcome.failure_count(), 0);
    }

    #[test]
    fn failures_are_collected_not_fatal() {
        let fleet = CloudFleet::with_seed(9);
        let outcome = FleetRunner::new(2).run(&fleet, CpuModel::Gold6354, 4, |instance| {
            if instance.index() % 2 == 1 {
                Err(format!("instance {} rejected", instance.index()))
            } else {
                Ok(instance.index())
            }
        });
        assert_eq!(outcome.len(), 4);
        assert_eq!(outcome.failure_count(), 2);
        let kept: Vec<usize> = outcome
            .into_successes()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(kept, vec![0, 2]);
    }
}
