//! Baseline mapping approaches from the paper's related work (Sec. VI),
//! reproduced to quantify the claims made against them.
//!
//! * [`PatternDictionary`] — McCalpin's approach [TR-2021-01b]: generalize
//!   the core-map patterns observed on previously mapped instances and
//!   predict new instances by lookup, instead of measuring them. The paper
//!   argues this "is not directly applicable to different CPU models that
//!   use a different mapping pattern", and cannot follow per-instance
//!   defect diversity; the dictionary reproduces both failure modes.
//! * [`LatencyMapper`] — Horro et al. [DAC'19] located Xeon Phi KNL tiles
//!   from memory access latency. The paper notes "the latency-based
//!   mechanism is not sufficient for the Xeon CPUs with only two DRAM
//!   memory controllers": two anchor distances leave a large iso-distance
//!   ambiguity, which the reproduction measures as pairwise accuracy.

use std::collections::BTreeMap;

use coremap_core::CoreMap;
use coremap_mesh::{OsCoreId, TileCoord};
use coremap_uncore::XeonMachine;

/// McCalpin-style baseline: a dictionary from the (cheaply measurable)
/// OS-core → CHA ID vector to the full core map pattern observed on
/// training instances of the same model.
#[derive(Debug, Clone, Default)]
pub struct PatternDictionary {
    /// ID-mapping key -> (map, observation count), majority-kept.
    entries: BTreeMap<Vec<u16>, Vec<(CoreMap, usize)>>,
}

impl PatternDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns one fully-measured training instance.
    pub fn train(&mut self, map: &CoreMap) {
        let key = id_key(map);
        let bucket = self.entries.entry(key).or_default();
        let pattern = map.canonical_pattern();
        if let Some(entry) = bucket
            .iter_mut()
            .find(|(m, _)| m.canonical_pattern() == pattern)
        {
            entry.1 += 1;
        } else {
            bucket.push((map.clone(), 1));
        }
    }

    /// Number of distinct ID-mapping keys learned.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Predicts the map of an instance from its ID-mapping vector alone:
    /// returns the most frequently observed pattern for that key, if the
    /// key was ever seen during training.
    pub fn predict(&self, id_mapping: &[u16]) -> Option<&CoreMap> {
        self.entries
            .get(id_mapping)
            .and_then(|bucket| bucket.iter().max_by_key(|&&(_, n)| n))
            .map(|(m, _)| m)
    }
}

fn id_key(map: &CoreMap) -> Vec<u16> {
    map.core_to_cha().iter().map(|c| c.index() as u16).collect()
}

/// Latency-based baseline: estimate each core's tile from its memory
/// latency to the die's IMCs (distance anchors), choosing the
/// lexicographically first grid cell consistent with all anchor distances.
#[derive(Debug, Clone, Default)]
pub struct LatencyMapper;

impl LatencyMapper {
    /// Creates the mapper.
    pub fn new() -> Self {
        Self
    }

    /// Estimates per-core positions from IMC latency measurements.
    ///
    /// Latency is `base + 2 * hop_cost * distance`; with only two anchors
    /// (Skylake-generation Xeons) the distance pair rarely identifies a
    /// unique cell, and the estimate collapses onto the first consistent
    /// cell — the insufficiency the paper points out.
    pub fn estimate(&self, machine: &mut XeonMachine) -> Vec<TileCoord> {
        let dim = machine.grid_dim();
        let imcs = machine.floorplan().topology().imc_positions().to_vec();
        let cores = machine.os_cores();
        let mut positions = Vec::with_capacity(cores.len());
        for &core in &cores {
            // Recover hop distances from the latency model: the calibration
            // constants are assumed known (measurable on any one anchor
            // machine).
            let dists: Vec<usize> = (0..imcs.len())
                .map(|i| {
                    let lat = machine.memory_latency(core, i);
                    ((lat - 60) / 4) as usize
                })
                .collect();
            let cell = dim
                .iter_row_major()
                .find(|cell| {
                    imcs.iter()
                        .zip(&dists)
                        .all(|(imc, &d)| cell.hop_distance(*imc) == d)
                })
                .unwrap_or(TileCoord::new(0, 0));
            positions.push(cell);
        }
        positions
    }

    /// Pairwise relative-placement accuracy of a latency estimate against
    /// ground truth (mirror-tolerant, same metric as the main pipeline).
    pub fn accuracy(machine: &mut XeonMachine) -> f64 {
        let estimate = LatencyMapper::new().estimate(machine);
        let truth: Vec<TileCoord> = machine
            .os_cores()
            .iter()
            .map(|&c| machine.floorplan().coord_of_core(c))
            .collect();
        pairwise_accuracy(&estimate, &truth)
    }
}

/// Pairwise accuracy between two per-core placements (mirror tolerant).
fn pairwise_accuracy(estimate: &[TileCoord], truth: &[TileCoord]) -> f64 {
    let n = estimate.len().min(truth.len());
    if n < 2 {
        return 1.0;
    }
    let score = |flip: bool| {
        let mut good = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let row_ok =
                    estimate[i].row.cmp(&estimate[j].row) == truth[i].row.cmp(&truth[j].row);
                let ca = estimate[i].col.cmp(&estimate[j].col);
                let cb = truth[i].col.cmp(&truth[j].col);
                let col_ok = if flip { ca == cb.reverse() } else { ca == cb };
                if row_ok && col_ok {
                    good += 1;
                }
            }
        }
        good as f64 / total as f64
    };
    score(false).max(score(true))
}

/// Accuracy of a [`PatternDictionary`] prediction against the instance's
/// true layout: 1.0 if the predicted pattern is the instance's pattern,
/// otherwise the pairwise accuracy of the predicted per-core placement.
pub fn prediction_accuracy(predicted: &CoreMap, truth_map: &CoreMap) -> f64 {
    if predicted.canonical_pattern() == truth_map.canonical_pattern() {
        return 1.0;
    }
    let cores: Vec<OsCoreId> = (0..predicted.core_count().min(truth_map.core_count()) as u16)
        .map(OsCoreId::new)
        .collect();
    let est: Vec<TileCoord> = cores.iter().map(|&c| predicted.coord_of_core(c)).collect();
    let truth: Vec<TileCoord> = cores.iter().map(|&c| truth_map.coord_of_core(c)).collect();
    pairwise_accuracy(&est, &truth)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{ChaId, GridDim};

    fn tiny_map(swap: bool) -> CoreMap {
        let (a, b) = if swap {
            (TileCoord::new(0, 1), TileCoord::new(0, 0))
        } else {
            (TileCoord::new(0, 0), TileCoord::new(0, 1))
        };
        CoreMap::new(
            GridDim::new(1, 2),
            vec![a, b],
            vec![ChaId::new(0), ChaId::new(1)],
            vec![],
        )
    }

    #[test]
    fn dictionary_predicts_majority_pattern() {
        let mut dict = PatternDictionary::new();
        dict.train(&tiny_map(false));
        dict.train(&tiny_map(false));
        dict.train(&tiny_map(true));
        assert_eq!(dict.key_count(), 1);
        let predicted = dict.predict(&[0, 1]).expect("key known");
        assert_eq!(
            predicted.canonical_pattern(),
            tiny_map(false).canonical_pattern()
        );
    }

    #[test]
    fn dictionary_fails_on_unseen_models() {
        let mut dict = PatternDictionary::new();
        dict.train(&tiny_map(false));
        // A different ID-mapping key (e.g. a new CPU generation) misses.
        assert!(dict.predict(&[1, 0]).is_none());
    }

    #[test]
    fn prediction_accuracy_is_one_for_correct_pattern() {
        let a = tiny_map(false);
        assert_eq!(prediction_accuracy(&a, &a), 1.0);
    }

    #[test]
    fn prediction_accuracy_penalizes_wrong_layout() {
        // Three tiles in an L: swapping two of them is not a mirror image,
        // so the accuracy metric must drop below 1.
        let l_map = |swap: bool| {
            let (a, b) = if swap {
                (TileCoord::new(1, 0), TileCoord::new(0, 0))
            } else {
                (TileCoord::new(0, 0), TileCoord::new(1, 0))
            };
            CoreMap::new(
                GridDim::new(2, 2),
                vec![a, b, TileCoord::new(1, 1)],
                vec![ChaId::new(0), ChaId::new(1), ChaId::new(2)],
                vec![],
            )
        };
        let acc = prediction_accuracy(&l_map(false), &l_map(true));
        assert!(acc < 1.0, "swapped rows must cost accuracy, got {acc}");
    }

    #[test]
    fn latency_estimate_runs_and_underperforms() {
        let fleet = crate::CloudFleet::with_seed(3);
        let inst = fleet
            .instance(crate::CpuModel::Platinum8175M, 0)
            .expect("instance");
        let mut machine = inst.boot();
        let acc = LatencyMapper::accuracy(&mut machine);
        // The latency baseline must run, produce in-grid estimates, and be
        // clearly worse than the (perfect) traffic-based pipeline.
        assert!(acc > 0.0 && acc < 0.95, "latency accuracy {acc}");
    }
}
