//! # coremap-fleet
//!
//! Cloud-fleet substrate for the paper's measurement study (Sec. III): the
//! authors rented 100 bare-metal instances each of three Xeon models on AWS
//! (Platinum 8124M / 8175M / 8259CL) plus 10 Ice Lake Gold 6354 instances
//! on OCI, and mapped every one. This crate generates an equivalent
//! simulated fleet:
//!
//! * [`CpuModel`] describes the four SKUs (die template, enabled core
//!   count, LLC-only tile count);
//! * [`CloudFleet`] deterministically instantiates per-instance floorplans
//!   whose *population statistics* reproduce the paper's findings — the
//!   exact OS-core↔CHA mapping tables of Table I (including the seven
//!   8259CL variants with their 62/33/1/1/1/1/1 split) and the location
//!   pattern diversity of Table II (14 / 26 / 53 / 6 unique patterns with
//!   the reported top-4 frequencies);
//! * [`stats`] computes those tables back from *measured* maps, and
//!   [`MapRegistry`] persists PPIN-keyed [`CoreMap`](coremap_core::CoreMap)s
//!   the way an attacker would catalogue mapped instances;
//! * [`FleetRunner`] is the shared campaign harness: it walks a model's
//!   instances with a work-queue worker pool, collects per-instance
//!   `Result`s in instance order (worker-count-independent output, failures
//!   recorded rather than fatal), and is generic over the
//!   [`MachineBackend`](coremap_core::backend::MachineBackend) each
//!   instance boots into.
//!
//! ```
//! use coremap_fleet::{CloudFleet, CpuModel};
//!
//! # fn main() -> Result<(), coremap_fleet::FleetError> {
//! let fleet = CloudFleet::with_seed(2022);
//! let inst = fleet.instance(CpuModel::Platinum8259CL, 3)?;
//! assert_eq!(inst.floorplan().core_count(), 24);
//! assert_eq!(inst.floorplan().cha_count(), 26); // two LLC-only tiles
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod error;
mod fleet;
mod model;
mod registry;
pub mod render;
mod runner;
pub mod sampler;
pub mod stats;

pub use error::FleetError;
pub use fleet::{CloudFleet, CloudInstance};
pub use model::CpuModel;
pub use registry::MapRegistry;
pub use runner::{FleetOutcome, FleetRunner, JobFailure, SurveyStats};
