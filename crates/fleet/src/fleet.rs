//! Fleet and instance types.

use coremap_mesh::{Floorplan, FloorplanBuilder, Ppin, TileCoord};
use coremap_uncore::{MachineConfig, NoiseModel, XeonMachine};

use crate::sampler;
use crate::{CpuModel, FleetError};

/// A deterministic simulated cloud fleet: every `(model, index)` pair
/// resolves to the same instance for a given fleet seed, the way a given
/// EC2 bare-metal host always exposes the same physical chip.
#[derive(Debug, Clone)]
pub struct CloudFleet {
    seed: u64,
    noise: NoiseModel,
}

impl CloudFleet {
    /// A fleet with the given generation seed and quiet machines.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            noise: NoiseModel::quiet(),
        }
    }

    /// Sets the background mesh noise booted machines will exhibit.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The fleet seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rentable instances of a model (the paper's populations:
    /// 100 per AWS SKU, 10 for the OCI Ice Lake SKU).
    pub fn population(&self, model: CpuModel) -> usize {
        model.paper_population()
    }

    /// Materializes instance `index` of `model`.
    ///
    /// # Errors
    ///
    /// [`FleetError::InstanceOutOfRange`] if `index` exceeds the
    /// population.
    pub fn instance(&self, model: CpuModel, index: usize) -> Result<CloudInstance, FleetError> {
        let population = self.population(model);
        if index >= population {
            return Err(FleetError::InstanceOutOfRange {
                model,
                index,
                population,
            });
        }
        let pattern = sampler::instance_patterns(model, self.seed)[index];
        let plan = build_floorplan(model, pattern, self.seed)?;
        let (ppin, hash_secret, noise_seed) = sampler::instance_secrets(model, index, self.seed);
        Ok(CloudInstance {
            model,
            index,
            pattern,
            ppin: Ppin::new(ppin),
            hash_secret,
            noise_seed,
            noise: self.noise,
            plan,
        })
    }

    /// Iterates over the whole population of a model.
    #[allow(clippy::expect_used)]
    pub fn instances(&self, model: CpuModel) -> impl Iterator<Item = CloudInstance> + '_ {
        (0..self.population(model)).map(move |i| {
            self.instance(model, i)
                // audit: allow(panic-safety): infallible — every i below population(model) is a valid instance index by definition
                .expect("index below population is valid")
        })
    }
}

/// Builds the ground-truth floorplan of `(model, pattern)`.
fn build_floorplan(
    model: CpuModel,
    pattern: usize,
    fleet_seed: u64,
) -> Result<Floorplan, FleetError> {
    let disabled = sampler::disabled_set(model, pattern, fleet_seed);
    let mut builder = FloorplanBuilder::new(model.template()).disable_all(disabled.clone());

    let llc_count = model.llc_only_count();
    if llc_count > 0 {
        // Determine target LLC-only CHA IDs, then mark the tiles that will
        // receive those IDs under the die's numbering over enabled tiles.
        let target_chas: Vec<u16> = match model {
            CpuModel::Platinum8259CL => {
                let (a, b) = sampler::llc_case_8259cl(pattern);
                let mut v = vec![a, b];
                v.sort_unstable();
                v
            }
            CpuModel::Gold6354 => sampler::llc_chas_6354(pattern, fleet_seed),
            _ => unreachable!("only 8259CL and 6354 have LLC-only tiles"),
        };
        let enabled: Vec<TileCoord> = model
            .template()
            .core_capable_positions()
            .iter()
            .copied()
            .filter(|c| !disabled.contains(c))
            .collect();
        for &cha in &target_chas {
            builder = builder.llc_only(enabled[cha as usize]);
        }
    }
    Ok(builder.build()?)
}

/// One rented bare-metal instance: a concrete chip with hidden layout and
/// per-chip secrets.
#[derive(Debug, Clone)]
pub struct CloudInstance {
    model: CpuModel,
    index: usize,
    pattern: usize,
    ppin: Ppin,
    hash_secret: u64,
    noise_seed: u64,
    noise: NoiseModel,
    plan: Floorplan,
}

impl CloudInstance {
    /// The instance's SKU.
    pub fn model(&self) -> CpuModel {
        self.model
    }

    /// Index within the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Ground-truth pattern index (verification only — a real tenant
    /// cannot see this).
    pub fn pattern(&self) -> usize {
        self.pattern
    }

    /// The chip's PPIN.
    pub fn ppin(&self) -> Ppin {
        self.ppin
    }

    /// Ground-truth floorplan (verification only).
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// Boots the instance into a measurable machine.
    pub fn boot(&self) -> XeonMachine {
        XeonMachine::new(
            self.plan.clone(),
            MachineConfig {
                ppin: self.ppin,
                slice_hash_secret: self.hash_secret,
                noise_seed: self.noise_seed,
                noise: self.noise,
                ..MachineConfig::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn populations_match_paper() {
        let fleet = CloudFleet::with_seed(1);
        assert_eq!(fleet.population(CpuModel::Platinum8124M), 100);
        assert_eq!(fleet.population(CpuModel::Gold6354), 10);
    }

    #[test]
    fn out_of_range_rejected() {
        let fleet = CloudFleet::with_seed(1);
        let err = fleet.instance(CpuModel::Gold6354, 10).unwrap_err();
        assert!(matches!(err, FleetError::InstanceOutOfRange { .. }));
    }

    #[test]
    fn instances_are_deterministic() {
        let fleet = CloudFleet::with_seed(9);
        let a = fleet.instance(CpuModel::Platinum8175M, 17).unwrap();
        let b = fleet.instance(CpuModel::Platinum8175M, 17).unwrap();
        assert_eq!(a.ppin(), b.ppin());
        assert_eq!(a.floorplan(), b.floorplan());
        assert_eq!(a.pattern(), b.pattern());
    }

    #[test]
    fn instance_counts_match_model_specs() {
        let fleet = CloudFleet::with_seed(4);
        for model in CpuModel::ALL {
            let inst = fleet.instance(model, 0).unwrap();
            assert_eq!(inst.floorplan().core_count(), model.core_count(), "{model}");
            assert_eq!(inst.floorplan().cha_count(), model.cha_count(), "{model}");
        }
    }

    #[test]
    fn llc_only_cha_ids_match_table1_case() {
        let fleet = CloudFleet::with_seed(12);
        for inst in fleet.instances(CpuModel::Platinum8259CL).take(20) {
            let (a, b) = sampler::llc_case_8259cl(inst.pattern());
            let mut expected = vec![
                coremap_mesh::ChaId::new(a.min(b)),
                coremap_mesh::ChaId::new(a.max(b)),
            ];
            expected.sort();
            assert_eq!(inst.floorplan().llc_only_chas(), expected);
        }
    }

    #[test]
    fn ppins_are_unique_across_a_model() {
        let fleet = CloudFleet::with_seed(2);
        let mut seen = std::collections::HashSet::new();
        for inst in fleet.instances(CpuModel::Platinum8124M) {
            assert!(seen.insert(inst.ppin()));
        }
    }

    #[test]
    fn booted_machine_reflects_instance() {
        let fleet = CloudFleet::with_seed(3);
        let inst = fleet.instance(CpuModel::Platinum8124M, 5).unwrap();
        let m = inst.boot();
        assert_eq!(m.core_count(), 18);
        assert_eq!(
            m.read_msr(coremap_uncore::msr::MSR_PPIN).unwrap(),
            inst.ppin().value()
        );
    }
}
