//! Pattern allocation: which floorplan each fleet instance receives.
//!
//! The paper's central fleet finding (Table II) is that instances of one SKU
//! do *not* share a single layout: defective/fused-off tiles differ between
//! chips, with a strongly skewed distribution (a dominant bin pattern plus a
//! long tail). The sampler reproduces the reported distributions exactly:
//! each model has a fixed list of `(pattern, instance-count)` allocations
//! summing to the paper's population, and each pattern index expands
//! deterministically into a concrete disabled-tile set (and, where the SKU
//! has them, LLC-only tile placements reproducing the Table I ID-mapping
//! cases).

use coremap_mesh::TileCoord;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::CpuModel;

/// Paper Table II: instance counts of the distinct location patterns, most
/// frequent first. Sums to the model's paper population.
pub fn pattern_counts(model: CpuModel) -> Vec<usize> {
    match model {
        // 14 unique patterns, top-4 = 53/18/5/5.
        CpuModel::Platinum8124M => vec![53, 18, 5, 5, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1],
        // 26 unique patterns, top-4 = 52/7/7/6.
        CpuModel::Platinum8175M => {
            let mut v = vec![52, 7, 7, 6, 2, 2, 2, 2, 2, 2];
            v.extend(std::iter::repeat_n(1, 16));
            v
        }
        // 53 unique patterns, top-4 = 19/5/4/4.
        CpuModel::Platinum8259CL => {
            let mut v = vec![19, 5, 4, 4];
            v.extend(std::iter::repeat_n(2, 19));
            v.extend(std::iter::repeat_n(1, 30));
            v
        }
        // 6 unique patterns over 10 instances (Sec. III-B).
        CpuModel::Gold6354 => vec![3, 2, 2, 1, 1, 1],
    }
}

/// Paper Table I: the seven OS-core↔CHA mapping cases of the 8259CL,
/// identified by the two CHA IDs whose tiles are LLC-only, with their
/// instance counts.
pub const TABLE1_8259CL_CASES: [((u16, u16), usize); 7] = [
    ((3, 25), 62),
    ((2, 25), 33),
    ((5, 25), 1),
    ((3, 23), 1),
    ((16, 2), 1),
    ((24, 3), 1),
    ((16, 3), 1),
];

/// The Table I LLC-only CHA pair assigned to an 8259CL pattern index.
///
/// Pattern counts are `[19,5,4,4] + 19 x 2 + 30 x 1`; the case populations
/// (62/33/1/1/1/1/1) are covered by assigning:
///
/// * case (3,25): patterns 0–3 and the first 15 two-count patterns
///   (19+5+4+4 + 15*2 = 62),
/// * case (2,25): the remaining 4 two-count patterns and the first 25
///   one-count patterns (8 + 25 = 33),
/// * the five rare cases: the last 5 one-count patterns.
pub fn llc_case_8259cl(pattern: usize) -> (u16, u16) {
    match pattern {
        0..=18 => (3, 25),
        19..=47 => (2, 25),
        48 => (5, 25),
        49 => (3, 23),
        50 => (16, 2),
        51 => (24, 3),
        52 => (16, 3),
        // audit: allow(panic-safety): documented contract — Table I covers exactly 53 patterns; an out-of-range index is a caller bug, not a runtime condition
        _ => panic!("8259CL has 53 patterns, got index {pattern}"),
    }
}

/// The LLC-only CHA IDs of a Gold 6354 pattern. Pattern 0 reproduces the
/// paper's Fig. 5 example (CHAs 0, 2, 4, 12, 15, 18, 21, 24 are LLC-only);
/// other patterns draw deterministic variations.
pub fn llc_chas_6354(pattern: usize, fleet_seed: u64) -> Vec<u16> {
    if pattern == 0 {
        return vec![0, 2, 4, 12, 15, 18, 21, 24];
    }
    let mut rng = seeded_rng(fleet_seed, CpuModel::Gold6354, pattern as u64, 0xA5);
    let cha_count = CpuModel::Gold6354.cha_count() as u16;
    let mut ids: Vec<u16> = (0..cha_count).collect();
    ids.shuffle(&mut rng);
    let mut chosen: Vec<u16> = ids
        .into_iter()
        .take(CpuModel::Gold6354.llc_only_count())
        .collect();
    chosen.sort_unstable();
    chosen
}

fn seeded_rng(fleet_seed: u64, model: CpuModel, pattern: u64, salt: u64) -> ChaCha8Rng {
    let model_tag = match model {
        CpuModel::Platinum8124M => 1u64,
        CpuModel::Platinum8175M => 2,
        CpuModel::Platinum8259CL => 3,
        CpuModel::Gold6354 => 4,
    };
    ChaCha8Rng::seed_from_u64(
        fleet_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(model_tag << 32)
            .wrapping_add(pattern << 8)
            .wrapping_add(salt),
    )
}

/// The disabled-tile set of `(model, pattern)`: deterministic in the fleet
/// seed, distinct across pattern indices of one model.
///
/// Pattern 0 of each model disables a canonical contiguous run (binning
/// prefers a standard fuse map); higher patterns draw random sets, which
/// yields the long tail of rare layouts the paper observed.
#[allow(clippy::expect_used)]
pub fn disabled_set(model: CpuModel, pattern: usize, fleet_seed: u64) -> Vec<TileCoord> {
    all_disabled_sets(model, pattern + 1, fleet_seed)
        .pop()
        // audit: allow(panic-safety): infallible — all_disabled_sets(model, n, seed) always returns exactly n sets, so pop() on n = pattern + 1 cannot be empty
        .expect("requested pattern generated")
}

/// The first `n` distinct disabled-tile sets of a model, in pattern order.
/// Generated from one deterministic stream with rejection of duplicates, so
/// every pattern index names a unique layout.
pub fn all_disabled_sets(model: CpuModel, n: usize, fleet_seed: u64) -> Vec<Vec<TileCoord>> {
    let capable = model.template().core_capable_positions();
    let k = model.disabled_count();
    if k == 0 {
        return vec![Vec::new(); n];
    }
    let mut sets: Vec<Vec<TileCoord>> = Vec::with_capacity(n);
    let mut canonical = capable[capable.len() - k..].to_vec();
    canonical.sort();
    sets.push(canonical);
    let mut rng = seeded_rng(fleet_seed, model, 0, 0xD1);
    while sets.len() < n {
        let mut positions = capable.to_vec();
        positions.shuffle(&mut rng);
        let mut set: Vec<TileCoord> = positions.into_iter().take(k).collect();
        set.sort();
        if !sets.contains(&set) {
            sets.push(set);
        }
    }
    sets.truncate(n);
    sets
}

/// Expands the per-pattern counts into a per-instance pattern assignment of
/// length `population`, shuffled deterministically (cloud allocation order
/// does not sort chips by fuse map).
pub fn instance_patterns(model: CpuModel, fleet_seed: u64) -> Vec<usize> {
    let counts = pattern_counts(model);
    let mut assignment = Vec::with_capacity(model.paper_population());
    for (pattern, &count) in counts.iter().enumerate() {
        assignment.extend(std::iter::repeat_n(pattern, count));
    }
    debug_assert_eq!(assignment.len(), model.paper_population());
    let mut rng = seeded_rng(fleet_seed, model, 0, 0x51);
    assignment.shuffle(&mut rng);
    assignment
}

/// Per-instance secrets: `(ppin, slice_hash_secret, noise_seed)`.
pub fn instance_secrets(model: CpuModel, index: usize, fleet_seed: u64) -> (u64, u64, u64) {
    let mut rng = seeded_rng(fleet_seed, model, index as u64, 0x77);
    (rng.gen(), rng.gen(), rng.gen())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_counts_match_paper_table2() {
        for m in CpuModel::ALL {
            let counts = pattern_counts(m);
            assert_eq!(
                counts.iter().sum::<usize>(),
                m.paper_population(),
                "{m} population"
            );
            // Sorted descending.
            assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{m} sorted");
        }
        assert_eq!(pattern_counts(CpuModel::Platinum8124M).len(), 14);
        assert_eq!(pattern_counts(CpuModel::Platinum8175M).len(), 26);
        assert_eq!(pattern_counts(CpuModel::Platinum8259CL).len(), 53);
        assert_eq!(pattern_counts(CpuModel::Gold6354).len(), 6);
        assert_eq!(
            &pattern_counts(CpuModel::Platinum8259CL)[..4],
            &[19, 5, 4, 4]
        );
    }

    #[test]
    fn llc_case_population_matches_table1() {
        let counts = pattern_counts(CpuModel::Platinum8259CL);
        let mut by_case: std::collections::BTreeMap<(u16, u16), usize> = Default::default();
        for (pattern, &count) in counts.iter().enumerate() {
            *by_case.entry(llc_case_8259cl(pattern)).or_default() += count;
        }
        for (case, expected) in TABLE1_8259CL_CASES {
            assert_eq!(by_case.get(&case), Some(&expected), "case {case:?}");
        }
    }

    #[test]
    fn disabled_sets_are_distinct_and_right_sized() {
        for m in [
            CpuModel::Platinum8124M,
            CpuModel::Platinum8175M,
            CpuModel::Platinum8259CL,
            CpuModel::Gold6354,
        ] {
            let n = pattern_counts(m).len();
            let mut seen = std::collections::BTreeSet::new();
            for p in 0..n {
                let set = disabled_set(m, p, 42);
                assert_eq!(set.len(), m.disabled_count(), "{m} pattern {p}");
                let mut key = set.clone();
                key.sort();
                assert!(seen.insert(key), "{m} pattern {p} duplicates another");
            }
        }
    }

    #[test]
    fn disabled_sets_are_deterministic() {
        let a = disabled_set(CpuModel::Platinum8175M, 5, 7);
        let b = disabled_set(CpuModel::Platinum8175M, 5, 7);
        assert_eq!(a, b);
        let c = disabled_set(CpuModel::Platinum8175M, 5, 8);
        // Different fleet seed gives (almost surely) different sets.
        assert_ne!(a, c);
    }

    #[test]
    fn instance_assignment_is_a_permutation_of_counts() {
        let assignment = instance_patterns(CpuModel::Platinum8259CL, 3);
        assert_eq!(assignment.len(), 100);
        let mut histogram = vec![0usize; 53];
        for &p in &assignment {
            histogram[p] += 1;
        }
        assert_eq!(histogram, pattern_counts(CpuModel::Platinum8259CL));
        // Not sorted (shuffled).
        assert!(assignment.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn fig5_llc_chas_for_pattern0() {
        assert_eq!(llc_chas_6354(0, 0), vec![0, 2, 4, 12, 15, 18, 21, 24]);
        let other = llc_chas_6354(3, 0);
        assert_eq!(other.len(), 8);
        assert!(other.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn secrets_differ_per_instance() {
        let a = instance_secrets(CpuModel::Platinum8124M, 0, 1);
        let b = instance_secrets(CpuModel::Platinum8124M, 1, 1);
        assert_ne!(a.0, b.0);
        assert_ne!(a.1, b.1);
    }
}
