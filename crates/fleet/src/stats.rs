//! Fleet statistics: the computations behind paper Tables I and II.

use std::collections::BTreeMap;

use coremap_core::CoreMap;

/// Frequency table over canonical location patterns (Table II).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternStats {
    counts: BTreeMap<String, usize>,
}

impl PatternStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measured map.
    pub fn record(&mut self, map: &CoreMap) {
        *self.counts.entry(map.canonical_pattern()).or_default() += 1;
    }

    /// Records a pre-computed canonical pattern key.
    pub fn record_key(&mut self, key: String) {
        *self.counts.entry(key).or_default() += 1;
    }

    /// Total number of recorded instances.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Number of distinct patterns (Table II bottom row).
    pub fn unique_patterns(&self) -> usize {
        self.counts.len()
    }

    /// Instance counts of the `k` most frequent patterns, descending
    /// (Table II top rows).
    pub fn top_counts(&self, k: usize) -> Vec<usize> {
        let mut counts: Vec<usize> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.truncate(k);
        counts
    }

    /// The `k` most frequent `(pattern key, count)` entries, descending by
    /// count (ties broken by key for determinism).
    pub fn top_patterns(&self, k: usize) -> Vec<(&str, usize)> {
        let mut entries: Vec<(&str, usize)> =
            self.counts.iter().map(|(s, &c)| (s.as_str(), c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        entries.truncate(k);
        entries
    }
}

impl<'a> FromIterator<&'a CoreMap> for PatternStats {
    fn from_iter<T: IntoIterator<Item = &'a CoreMap>>(iter: T) -> Self {
        let mut stats = Self::new();
        for m in iter {
            stats.record(m);
        }
        stats
    }
}

/// Frequency table over OS-core↔CHA ID mappings (Table I): groups
/// instances by their measured `core -> cha` vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdMappingStats {
    counts: BTreeMap<Vec<u16>, usize>,
}

impl IdMappingStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measured map.
    pub fn record(&mut self, map: &CoreMap) {
        let key: Vec<u16> = map.core_to_cha().iter().map(|c| c.index() as u16).collect();
        *self.counts.entry(key).or_default() += 1;
    }

    /// Total instances recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Distinct ID mappings observed.
    pub fn unique_mappings(&self) -> usize {
        self.counts.len()
    }

    /// `(mapping, count)` rows, descending by count — the layout of paper
    /// Table I.
    pub fn rows(&self) -> Vec<(Vec<u16>, usize)> {
        let mut rows: Vec<(Vec<u16>, usize)> =
            self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

impl<'a> FromIterator<&'a CoreMap> for IdMappingStats {
    fn from_iter<T: IntoIterator<Item = &'a CoreMap>>(iter: T) -> Self {
        let mut stats = Self::new();
        for m in iter {
            stats.record(m);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremap_mesh::{ChaId, GridDim, TileCoord};

    fn tiny_map(swap: bool) -> CoreMap {
        let (a, b) = if swap {
            (TileCoord::new(0, 1), TileCoord::new(0, 0))
        } else {
            (TileCoord::new(0, 0), TileCoord::new(0, 1))
        };
        CoreMap::new(
            GridDim::new(1, 2),
            vec![a, b],
            vec![ChaId::new(0), ChaId::new(1)],
            vec![],
        )
    }

    #[test]
    fn pattern_stats_count_and_rank() {
        let maps = [tiny_map(false), tiny_map(false), tiny_map(true)];
        let stats: PatternStats = maps.iter().collect();
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.unique_patterns(), 2);
        assert_eq!(stats.top_counts(4), vec![2, 1]);
    }

    #[test]
    fn id_mapping_stats_group_by_vector() {
        let maps = [tiny_map(false), tiny_map(true)];
        let stats: IdMappingStats = maps.iter().collect();
        // Same core->cha vector in both (positions differ, IDs don't).
        assert_eq!(stats.unique_mappings(), 1);
        assert_eq!(stats.total(), 2);
        assert_eq!(stats.rows()[0].1, 2);
    }

    #[test]
    fn top_patterns_deterministic_ordering() {
        let mut stats = PatternStats::new();
        stats.record_key("b".into());
        stats.record_key("a".into());
        let top = stats.top_patterns(2);
        assert_eq!(top, vec![("a", 1), ("b", 1)]);
    }
}
