//! Fleet errors.

use std::fmt;

use crate::CpuModel;

/// Error generating fleet instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Requested instance index exceeds the model's population.
    InstanceOutOfRange {
        /// The model.
        model: CpuModel,
        /// The requested index.
        index: usize,
        /// The population size.
        population: usize,
    },
    /// Internal floorplan construction failed (indicates a sampler bug).
    Floorplan(coremap_mesh::FloorplanError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InstanceOutOfRange {
                model,
                index,
                population,
            } => write!(
                f,
                "instance {index} out of range for {model} (population {population})"
            ),
            FleetError::Floorplan(e) => write!(f, "floorplan construction failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<coremap_mesh::FloorplanError> for FleetError {
    fn from(e: coremap_mesh::FloorplanError) -> Self {
        FleetError::Floorplan(e)
    }
}
