//! Diagnostic: times the class-merged ILP reconstruction on the full
//! 28-tile die with ideal observations.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::ilp_model::reconstruct;
use coremap_core::traffic::ObservationSet;
use coremap_core::verify;
use coremap_mesh::{DieTemplate, FloorplanBuilder};
use std::time::Instant;

fn main() {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .unwrap();
    let obs = ObservationSet::synthetic(&plan);
    println!("paths: {}", obs.paths.len());
    let t = Instant::now();
    let rec = reconstruct(&obs, plan.dim()).unwrap();
    println!(
        "took {:?}, nodes {}, lp iters {}",
        t.elapsed(),
        rec.stats.nodes,
        rec.stats.lp_iterations
    );
    println!("match: {}", verify::positions_match(&rec.positions, &plan));
}
