//! Diagnostic: compares merged vs paper-literal ILP formulations on
//! progressively larger sparse tile sets.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::ilp_model::{reconstruct, reconstruct_full};
use coremap_core::traffic::ObservationSet;
use coremap_core::verify;
use coremap_mesh::{DieTemplate, FloorplanBuilder, TileCoord as TC};
use std::time::Instant;

fn run(keep: &[TC]) {
    let t = DieTemplate::SkylakeXcc;
    let disable: Vec<TC> = t
        .core_capable_positions()
        .iter()
        .copied()
        .filter(|p| !keep.contains(p))
        .collect();
    let plan = FloorplanBuilder::new(t)
        .disable_all(disable)
        .build()
        .unwrap();
    let obs = ObservationSet::synthetic(&plan);
    let t0 = Instant::now();
    let merged = reconstruct(&obs, plan.dim()).unwrap();
    println!(
        "merged {} tiles: {:?} nodes={}",
        keep.len(),
        t0.elapsed(),
        merged.stats.nodes
    );
    let t0 = Instant::now();
    let full = reconstruct_full(&obs, plan.dim()).unwrap();
    println!(
        "full   {} tiles: {:?} nodes={} ok={}",
        keep.len(),
        t0.elapsed(),
        full.stats.nodes,
        verify::positions_match_relative(&full.positions, &plan)
    );
}

fn main() {
    run(&[TC::new(0, 0), TC::new(2, 0), TC::new(0, 1), TC::new(3, 1)]);
    run(&[
        TC::new(0, 0),
        TC::new(2, 0),
        TC::new(0, 1),
        TC::new(3, 1),
        TC::new(1, 2),
        TC::new(4, 3),
    ]);
    run(&[
        TC::new(0, 0),
        TC::new(2, 0),
        TC::new(0, 1),
        TC::new(3, 1),
        TC::new(1, 2),
        TC::new(4, 3),
        TC::new(0, 4),
        TC::new(2, 5),
    ]);
}
