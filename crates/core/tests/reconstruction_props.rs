//! Property tests of the ILP reconstruction over randomized floorplans.
//!
//! Dense rectangular blocks are fully observable, so reconstruction must
//! recover the exact relative layout; arbitrary sparse layouts may be
//! genuinely ambiguous, so they are checked for observation consistency
//! (every measured ingress event reproduced by the recovered placement).

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::ilp_model::reconstruct;
use coremap_core::traffic::ObservationSet;
use coremap_core::verify;
use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder, TileCoord};
use proptest::prelude::*;

/// A dense block of active tiles with optional LLC-only tiles inside.
fn dense_block(
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    llc_mask: u8,
) -> Option<Floorplan> {
    let t = DieTemplate::SkylakeXcc;
    let capable = t.core_capable_positions();
    let keep: Vec<TileCoord> = (row0..row0 + rows)
        .flat_map(|r| (col0..col0 + cols).map(move |c| TileCoord::new(r, c)))
        .filter(|p| capable.contains(p))
        .collect();
    // Dense blocks must not be broken by the IMC row.
    if keep.len() != rows * cols {
        return None;
    }
    let disable: Vec<TileCoord> = capable
        .iter()
        .copied()
        .filter(|p| !keep.contains(p))
        .collect();
    let mut builder = FloorplanBuilder::new(t).disable_all(disable);
    let mut core_left = keep.len();
    for (i, &p) in keep.iter().enumerate() {
        if i < 8 && (llc_mask >> i) & 1 == 1 && core_left > 2 {
            builder = builder.llc_only(p);
            core_left -= 1;
        }
    }
    builder.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_blocks_reconstruct_their_relative_truth(
        row0 in 2usize..4,
        col0 in 0usize..3,
        rows in 2usize..4,
        cols in 2usize..3,
        llc_mask in 0u8..16,
    ) {
        prop_assume!(row0 + rows <= 5 && col0 + cols <= 6);
        let Some(plan) = dense_block(row0, col0, rows, cols, llc_mask) else {
            return Ok(()); // block collided with the IMC row
        };
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).expect("solvable");
        prop_assert!(
            verify::observations_consistent(&rec.positions, &obs, plan.dim()),
            "reconstruction must explain all observations"
        );
        // Dense blocks without LLC-only tiles are fully observable.
        if llc_mask == 0 {
            prop_assert!(
                verify::positions_match_relative(&rec.positions, &plan),
                "dense block must match relative truth"
            );
        }
    }

    #[test]
    fn random_sparse_layouts_yield_consistent_maps(seed in 0u64..64) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = DieTemplate::SkylakeXcc;
        let mut capable = t.core_capable_positions().to_vec();
        capable.shuffle(&mut rng);
        // Keep 10-14 active tiles: sparse enough to be ambiguous, small
        // enough for fast solves.
        let keep_n = 10 + (seed as usize % 5);
        let disable: Vec<TileCoord> = capable[keep_n..].to_vec();
        let plan = FloorplanBuilder::new(t)
            .disable_all(disable)
            .build()
            .expect("plan");
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).expect("solvable");
        prop_assert!(verify::observations_consistent(&rec.positions, &obs, plan.dim()));
        // Positions must be pairwise distinct even when ambiguous.
        let mut seen = std::collections::HashSet::new();
        for &p in &rec.positions {
            prop_assert!(seen.insert(p), "duplicate position {p}");
        }
    }
}
