//! The recording backend: transparent operation capture.

use std::cell::RefCell;

use coremap_mesh::{ChaId, GridDim, OsCoreId};
use coremap_uncore::{MsrError, PhysAddr};

use super::{MachineBackend, MachineGeometry, MeasurementTrace, TraceOp};

/// Wraps any backend and logs every operation crossing the
/// [`MachineBackend`] trait into a [`MeasurementTrace`].
///
/// The wrapper is behaviourally transparent: each call is forwarded to the
/// inner backend and its *actual* response (including errors) is recorded,
/// so a pipeline run over `RecordingBackend<B>` produces the same result
/// as one over `B` — plus a replayable trace.
///
/// ```
/// use coremap_core::backend::{MachineBackend, RecordingBackend};
/// use coremap_mesh::{DieTemplate, FloorplanBuilder};
/// use coremap_uncore::{MachineConfig, XeonMachine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
/// let machine = XeonMachine::new(plan, MachineConfig::default());
/// let mut recorder = RecordingBackend::new(machine);
/// recorder.read_msr(coremap_uncore::msr::MSR_PPIN)?;
/// let (_machine, trace) = recorder.into_parts();
/// assert_eq!(trace.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RecordingBackend<B> {
    inner: B,
    // `read_msr` and `home_of` take `&self`, so the log needs interior
    // mutability; the wrapper is single-threaded like any backend.
    ops: RefCell<Vec<TraceOp>>,
}

impl<B: MachineBackend> RecordingBackend<B> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: B) -> Self {
        Self {
            inner,
            ops: RefCell::new(Vec::new()),
        }
    }

    /// Number of operations recorded so far.
    pub fn recorded_ops(&self) -> usize {
        self.ops.borrow().len()
    }

    /// Snapshots the trace recorded so far (geometry + operation log).
    pub fn trace(&self) -> MeasurementTrace {
        let dim = self.inner.grid_dim();
        let (l2_sets, l2_ways) = self.inner.l2_geometry();
        MeasurementTrace {
            geometry: MachineGeometry {
                cha_count: self.inner.cha_count(),
                core_count: self.inner.core_count(),
                os_cores: self
                    .inner
                    .os_cores()
                    .iter()
                    .map(|c| c.index() as u16)
                    .collect(),
                grid_rows: dim.rows,
                grid_cols: dim.cols,
                l2_sets,
                l2_ways,
                address_space: self.inner.address_space(),
            },
            ops: self.ops.borrow().clone(),
        }
    }

    /// Consumes the wrapper, returning the inner backend and the trace.
    pub fn into_parts(self) -> (B, MeasurementTrace) {
        let trace = self.trace();
        (self.inner, trace)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn log(&self, op: TraceOp) {
        self.ops.borrow_mut().push(op);
    }
}

impl<B: MachineBackend> MachineBackend for RecordingBackend<B> {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        let result = self.inner.read_msr(addr);
        self.log(TraceOp::ReadMsr { addr, result });
        result
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        let result = self.inner.write_msr(addr, value);
        self.log(TraceOp::WriteMsr {
            addr,
            value,
            result,
        });
        result
    }

    fn cha_count(&self) -> usize {
        self.inner.cha_count()
    }

    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.inner.os_cores()
    }

    fn grid_dim(&self) -> GridDim {
        self.inner.grid_dim()
    }

    fn l2_geometry(&self) -> (usize, usize) {
        self.inner.l2_geometry()
    }

    fn address_space(&self) -> u64 {
        self.inner.address_space()
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        let cha = self.inner.home_of(pa);
        self.log(TraceOp::HomeOf {
            pa: pa.value(),
            cha: cha.index() as u16,
        });
        cha
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.log(TraceOp::WriteLine {
            core: core.index() as u16,
            pa: pa.value(),
        });
        self.inner.write_line(core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.log(TraceOp::ReadLine {
            core: core.index() as u16,
            pa: pa.value(),
        });
        self.inner.read_line(core, pa);
    }

    fn flush_caches(&mut self) {
        self.log(TraceOp::FlushCaches);
        self.inner.flush_caches();
    }

    fn op_count(&self) -> u64 {
        self.inner.op_count()
    }
}
