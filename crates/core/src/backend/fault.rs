//! The fault-injection backend: deterministic measurement perturbation.

use std::cell::{Cell, RefCell};

use coremap_mesh::{ChaId, GridDim, OsCoreId};
use coremap_uncore::msr::{decode_cha_msr, ChaRegister};
use coremap_uncore::{MsrError, PhysAddr};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::MachineBackend;

/// What to break, how often, and from which seed.
///
/// Probabilities are per affected operation; all injection draws come from
/// one seeded stream, so a plan reproduces the same fault pattern on every
/// run — a failing robustness experiment can be replayed exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that an MSR access (read or write) fails with
    /// [`MsrError::PermissionDenied`], modelling a racing `msr` module
    /// unload or a revoked capability.
    pub msr_fail_prob: f64,
    /// Probability that a PMON *counter* read is dropped and observed as 0,
    /// modelling a counter overflowing or being cleared mid-experiment.
    pub counter_drop_prob: f64,
    /// Maximum additive jitter on PMON counter readouts, modelling
    /// background mesh traffic the experiment window did not exclude.
    pub counter_jitter: u64,
    /// Exact MSR-access indices (reads and writes share one counter,
    /// starting at 0) that fail with [`MsrError::PermissionDenied`]
    /// regardless of probability — for regression tests that must fault one
    /// specific operation, e.g. the very first access (the PPIN read).
    pub fail_msr_ops: Vec<u64>,
    /// Seed of the injection stream.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none(0)
    }
}

impl FaultPlan {
    /// A plan that injects nothing — `FaultyBackend` degenerates to a
    /// transparent wrapper.
    pub fn none(seed: u64) -> Self {
        Self {
            msr_fail_prob: 0.0,
            counter_drop_prob: 0.0,
            counter_jitter: 0,
            fail_msr_ops: Vec::new(),
            seed,
        }
    }

    /// Sets the MSR failure probability.
    pub fn with_msr_fail_prob(mut self, p: f64) -> Self {
        self.msr_fail_prob = p;
        self
    }

    /// Sets the counter-drop probability.
    pub fn with_counter_drop_prob(mut self, p: f64) -> Self {
        self.counter_drop_prob = p;
        self
    }

    /// Sets the maximum counter jitter.
    pub fn with_counter_jitter(mut self, jitter: u64) -> Self {
        self.counter_jitter = jitter;
        self
    }

    /// Faults exactly the given MSR-access indices (deterministic, on top
    /// of any probabilistic plan).
    pub fn with_msr_op_faults(mut self, ops: Vec<u64>) -> Self {
        self.fail_msr_ops = ops;
        self
    }
}

/// Wraps any backend and injects seeded, deterministic faults into the
/// operations crossing the trait: failing MSR accesses, dropped PMON
/// counter reads, jittered counter readouts.
///
/// Structural queries (geometry, core enumeration) and cache-line
/// operations pass through untouched — the paper's noise sources live in
/// the *measurement* path, not in the machine's shape.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    // `read_msr` takes `&self`; the injection stream must still advance.
    rng: RefCell<ChaCha8Rng>,
    injected: Cell<u64>,
    msr_ops: Cell<u64>,
}

impl<B: MachineBackend> FaultyBackend<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        Self {
            inner,
            plan,
            rng: RefCell::new(rng),
            injected: Cell::new(0),
            msr_ops: Cell::new(0),
        }
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.get()
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes the wrapper, returning the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn inject(&self) {
        self.injected.set(self.injected.get() + 1);
    }

    fn roll(&self, prob: f64) -> bool {
        prob > 0.0 && self.rng.borrow_mut().gen_bool(prob)
    }

    /// Advances the MSR-access index and reports whether this access is on
    /// the plan's deterministic fault list. Checked *before* any
    /// probability roll so targeted faults fire independently of the
    /// random stream.
    fn targeted_fault(&self) -> bool {
        let op = self.msr_ops.get();
        self.msr_ops.set(op + 1);
        self.plan.fail_msr_ops.contains(&op)
    }
}

impl<B: MachineBackend> MachineBackend for FaultyBackend<B> {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        if self.targeted_fault() {
            self.inject();
            return Err(MsrError::PermissionDenied);
        }
        if self.roll(self.plan.msr_fail_prob) {
            self.inject();
            return Err(MsrError::PermissionDenied);
        }
        let value = self.inner.read_msr(addr)?;
        // Only PMON counter registers carry measurement data worth
        // perturbing; control registers and the PPIN stay exact.
        if let Some((_, ChaRegister::Counter(_))) = decode_cha_msr(addr) {
            if self.roll(self.plan.counter_drop_prob) {
                self.inject();
                return Ok(0);
            }
            if self.plan.counter_jitter > 0 {
                let jitter = self
                    .rng
                    .borrow_mut()
                    .gen_range(0..=self.plan.counter_jitter);
                if jitter > 0 {
                    self.inject();
                }
                return Ok(value.saturating_add(jitter));
            }
        }
        Ok(value)
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        if self.targeted_fault() {
            self.inject();
            return Err(MsrError::PermissionDenied);
        }
        if self.roll(self.plan.msr_fail_prob) {
            self.inject();
            return Err(MsrError::PermissionDenied);
        }
        self.inner.write_msr(addr, value)
    }

    fn cha_count(&self) -> usize {
        self.inner.cha_count()
    }

    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.inner.os_cores()
    }

    fn grid_dim(&self) -> GridDim {
        self.inner.grid_dim()
    }

    fn l2_geometry(&self) -> (usize, usize) {
        self.inner.l2_geometry()
    }

    fn address_space(&self) -> u64 {
        self.inner.address_space()
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        self.inner.home_of(pa)
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.inner.write_line(core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.inner.read_line(core, pa);
    }

    fn flush_caches(&mut self) {
        self.inner.flush_caches();
    }

    fn op_count(&self) -> u64 {
        self.inner.op_count()
    }
}
