//! The replay backend: re-running the pipeline from a recorded trace.

use std::cell::Cell;
use std::fmt;

use coremap_mesh::{ChaId, GridDim, OsCoreId};
use coremap_obs as obs;
use coremap_uncore::{MsrError, PhysAddr};

use super::{MachineBackend, MeasurementTrace, TraceOp};

/// Operations of leading context included in a [`DivergenceReport`].
const CONTEXT_OPS: usize = 5;

/// Structured description of a replay divergence: where the replay was,
/// what the pipeline asked for, what the trace held, and the operations
/// replayed just before — enough to localise which pipeline change broke
/// trace compatibility without rerunning under a debugger.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Index of the diverging operation in the trace.
    pub position: usize,
    /// Total number of operations the trace holds.
    pub trace_len: usize,
    /// The operation the pipeline issued, rendered as a call.
    pub requested: String,
    /// The operation recorded at `position`; `None` when the trace is
    /// exhausted (the pipeline issued more operations than were recorded).
    pub recorded: Option<TraceOp>,
    /// Up to [`CONTEXT_OPS`] operations successfully replayed immediately
    /// before the divergence, oldest first.
    pub context: Vec<TraceOp>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replay divergence at op {} of {}:",
            self.position, self.trace_len
        )?;
        writeln!(f, "  pipeline issued: {}", self.requested)?;
        match &self.recorded {
            Some(op) => writeln!(f, "  trace recorded:  {op:?}")?,
            None => writeln!(f, "  trace recorded:  <exhausted>")?,
        }
        if self.context.is_empty() {
            write!(f, "  no preceding operations (divergence at trace start)")?;
        } else {
            write!(f, "  preceding operations:")?;
            let first = self.position - self.context.len();
            for (i, op) in self.context.iter().enumerate() {
                write!(f, "\n    {:>6}: {op:?}", first + i)?;
            }
        }
        Ok(())
    }
}

/// Re-executes a recorded [`MeasurementTrace`] with *zero* simulation
/// behind it: every query answers from the recorded geometry, every
/// stateful operation is matched against the next logged [`TraceOp`] and
/// answered with the recorded response.
///
/// Because the pipeline is deterministic given the machine's responses, a
/// pipeline run over a replayed trace reproduces the original run
/// bit-for-bit — the record → replay workflow for debugging a mapping
/// campaign offline.
///
/// # Panics
///
/// Any divergence between what the pipeline asks and what the trace holds
/// (different operation, different operands, or trace exhaustion) panics
/// with a rendered [`DivergenceReport`]: the trace position, both sides of
/// the mismatch, and the operations replayed just before. A divergence
/// means the pipeline logic changed since the trace was captured — exactly
/// the loud failure wanted from a regression harness.
/// [`divergence_report`](Self::divergence_report) builds the same report
/// without panicking for tooling that wants to inspect it.
#[derive(Debug, Clone)]
pub struct ReplayBackend {
    trace: MeasurementTrace,
    // `read_msr` / `home_of` take `&self` but must advance the log.
    cursor: Cell<usize>,
}

impl ReplayBackend {
    /// Prepares a replay of `trace`, positioned before its first operation.
    pub fn new(trace: MeasurementTrace) -> Self {
        Self {
            trace,
            cursor: Cell::new(0),
        }
    }

    /// Builds the [`DivergenceReport`] for a mismatch at trace index `at`
    /// where the pipeline issued `requested`.
    pub fn divergence_report(&self, at: usize, requested: String) -> DivergenceReport {
        DivergenceReport {
            position: at,
            trace_len: self.trace.ops.len(),
            requested,
            recorded: self.trace.ops.get(at).cloned(),
            context: self.trace.ops[at.saturating_sub(CONTEXT_OPS)..at].to_vec(),
        }
    }

    #[cold]
    fn diverge(&self, at: usize, requested: String) -> ! {
        obs::inc("core.replay.divergences");
        // audit: allow(panic-safety): documented API — replay "panics loudly on divergence" by design; the FleetRunner catches it and reports JobFailure::Panic per instance
        panic!("{}", self.divergence_report(at, requested))
    }

    /// Index of the next operation to be replayed.
    pub fn position(&self) -> usize {
        self.cursor.get()
    }

    /// Whether every recorded operation has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.get() >= self.trace.ops.len()
    }

    /// Advances the cursor, returning `(index, recorded op)`; `None` once
    /// the trace is exhausted.
    fn next_op(&self) -> (usize, Option<&TraceOp>) {
        let at = self.cursor.get();
        let op = self.trace.ops.get(at);
        if op.is_some() {
            self.cursor.set(at + 1);
        }
        (at, op)
    }
}

impl MachineBackend for ReplayBackend {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        match self.next_op() {
            (_, Some(TraceOp::ReadMsr { addr: a, result })) if *a == addr => *result,
            (at, _) => self.diverge(at, format!("read_msr({addr:#x})")),
        }
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        match self.next_op() {
            (
                _,
                Some(TraceOp::WriteMsr {
                    addr: a,
                    value: v,
                    result,
                }),
            ) if *a == addr && *v == value => *result,
            (at, _) => self.diverge(at, format!("write_msr({addr:#x}, {value:#x})")),
        }
    }

    fn cha_count(&self) -> usize {
        self.trace.geometry.cha_count
    }

    fn core_count(&self) -> usize {
        self.trace.geometry.core_count
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.trace
            .geometry
            .os_cores
            .iter()
            .map(|&c| OsCoreId::new(c))
            .collect()
    }

    fn grid_dim(&self) -> GridDim {
        GridDim::new(self.trace.geometry.grid_rows, self.trace.geometry.grid_cols)
    }

    fn l2_geometry(&self) -> (usize, usize) {
        (self.trace.geometry.l2_sets, self.trace.geometry.l2_ways)
    }

    fn address_space(&self) -> u64 {
        self.trace.geometry.address_space
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        match self.next_op() {
            (_, Some(TraceOp::HomeOf { pa: p, cha })) if *p == pa.value() => ChaId::new(*cha),
            (at, _) => self.diverge(at, format!("home_of({pa})")),
        }
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        match self.next_op() {
            (_, Some(TraceOp::WriteLine { core: c, pa: p }))
                if *c as usize == core.index() && *p == pa.value() => {}
            (at, _) => self.diverge(at, format!("write_line({core}, {pa})")),
        }
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        match self.next_op() {
            (_, Some(TraceOp::ReadLine { core: c, pa: p }))
                if *c as usize == core.index() && *p == pa.value() => {}
            (at, _) => self.diverge(at, format!("read_line({core}, {pa})")),
        }
    }

    fn flush_caches(&mut self) {
        match self.next_op() {
            (_, Some(TraceOp::FlushCaches)) => {}
            (at, _) => self.diverge(at, "flush_caches()".to_owned()),
        }
    }

    fn op_count(&self) -> u64 {
        self.cursor.get() as u64
    }
}
