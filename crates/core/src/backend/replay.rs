//! The replay backend: re-running the pipeline from a recorded trace.

use std::cell::Cell;

use coremap_mesh::{ChaId, GridDim, OsCoreId};
use coremap_uncore::{MsrError, PhysAddr};

use super::{MachineBackend, MeasurementTrace, TraceOp};

/// Re-executes a recorded [`MeasurementTrace`] with *zero* simulation
/// behind it: every query answers from the recorded geometry, every
/// stateful operation is matched against the next logged [`TraceOp`] and
/// answered with the recorded response.
///
/// Because the pipeline is deterministic given the machine's responses, a
/// pipeline run over a replayed trace reproduces the original run
/// bit-for-bit — the record → replay workflow for debugging a mapping
/// campaign offline.
///
/// # Panics
///
/// Any divergence between what the pipeline asks and what the trace holds
/// (different operation, different operands, or trace exhaustion) panics
/// with the operation index and both sides of the mismatch. A divergence
/// means the pipeline logic changed since the trace was captured — exactly
/// the loud failure wanted from a regression harness.
#[derive(Debug, Clone)]
pub struct ReplayBackend {
    trace: MeasurementTrace,
    // `read_msr` / `home_of` take `&self` but must advance the log.
    cursor: Cell<usize>,
}

#[cold]
fn divergence(at: usize, request: String, recorded: Option<&TraceOp>, total: usize) -> ! {
    match recorded {
        Some(op) => panic!(
            "replay divergence at op {at}: pipeline issued {request} but the trace recorded {op:?}"
        ),
        None => panic!(
            "replay divergence at op {at}: pipeline issued {request} but the trace is exhausted ({total} ops)"
        ),
    }
}

impl ReplayBackend {
    /// Prepares a replay of `trace`, positioned before its first operation.
    pub fn new(trace: MeasurementTrace) -> Self {
        Self {
            trace,
            cursor: Cell::new(0),
        }
    }

    /// Index of the next operation to be replayed.
    pub fn position(&self) -> usize {
        self.cursor.get()
    }

    /// Whether every recorded operation has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.get() >= self.trace.ops.len()
    }

    /// Advances the cursor, returning `(index, recorded op)`; `None` once
    /// the trace is exhausted.
    fn next_op(&self) -> (usize, Option<&TraceOp>) {
        let at = self.cursor.get();
        let op = self.trace.ops.get(at);
        if op.is_some() {
            self.cursor.set(at + 1);
        }
        (at, op)
    }
}

impl MachineBackend for ReplayBackend {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        match self.next_op() {
            (_, Some(TraceOp::ReadMsr { addr: a, result })) if *a == addr => *result,
            (at, other) => divergence(
                at,
                format!("read_msr({addr:#x})"),
                other,
                self.trace.ops.len(),
            ),
        }
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        match self.next_op() {
            (
                _,
                Some(TraceOp::WriteMsr {
                    addr: a,
                    value: v,
                    result,
                }),
            ) if *a == addr && *v == value => *result,
            (at, other) => divergence(
                at,
                format!("write_msr({addr:#x}, {value:#x})"),
                other,
                self.trace.ops.len(),
            ),
        }
    }

    fn cha_count(&self) -> usize {
        self.trace.geometry.cha_count
    }

    fn core_count(&self) -> usize {
        self.trace.geometry.core_count
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        self.trace
            .geometry
            .os_cores
            .iter()
            .map(|&c| OsCoreId::new(c))
            .collect()
    }

    fn grid_dim(&self) -> GridDim {
        GridDim::new(self.trace.geometry.grid_rows, self.trace.geometry.grid_cols)
    }

    fn l2_geometry(&self) -> (usize, usize) {
        (self.trace.geometry.l2_sets, self.trace.geometry.l2_ways)
    }

    fn address_space(&self) -> u64 {
        self.trace.geometry.address_space
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        match self.next_op() {
            (_, Some(TraceOp::HomeOf { pa: p, cha })) if *p == pa.value() => ChaId::new(*cha),
            (at, other) => divergence(at, format!("home_of({pa})"), other, self.trace.ops.len()),
        }
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        match self.next_op() {
            (_, Some(TraceOp::WriteLine { core: c, pa: p }))
                if *c as usize == core.index() && *p == pa.value() => {}
            (at, other) => divergence(
                at,
                format!("write_line({core}, {pa})"),
                other,
                self.trace.ops.len(),
            ),
        }
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        match self.next_op() {
            (_, Some(TraceOp::ReadLine { core: c, pa: p }))
                if *c as usize == core.index() && *p == pa.value() => {}
            (at, other) => divergence(
                at,
                format!("read_line({core}, {pa})"),
                other,
                self.trace.ops.len(),
            ),
        }
    }

    fn flush_caches(&mut self) {
        match self.next_op() {
            (_, Some(TraceOp::FlushCaches)) => {}
            (at, other) => divergence(at, "flush_caches()".to_owned(), other, self.trace.ops.len()),
        }
    }

    fn op_count(&self) -> u64 {
        self.cursor.get() as u64
    }
}
