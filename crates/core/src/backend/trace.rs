//! Serializable measurement traces.

use coremap_uncore::MsrError;
use serde::{Deserialize, Serialize};

/// The static machine surface a backend reports: everything the pipeline
/// can query without touching state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineGeometry {
    /// Number of active CHAs.
    pub cha_count: usize,
    /// Number of OS-visible cores.
    pub core_count: usize,
    /// OS core IDs, ascending.
    pub os_cores: Vec<u16>,
    /// Tile-grid rows.
    pub grid_rows: usize,
    /// Tile-grid columns.
    pub grid_cols: usize,
    /// L2 sets.
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
    /// Usable physical address space in bytes.
    pub address_space: u64,
}

/// One operation crossing the [`MachineBackend`](super::MachineBackend)
/// trait, with enough detail to be replayed: the request *and* the
/// machine's response.
///
/// Fields are raw primitives (`u32` addresses, `u64` physical addresses,
/// `u16` core/CHA indices) so traces stay stable against newtype changes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// `read_msr(addr)` returned `result`.
    ReadMsr {
        /// MSR address.
        addr: u32,
        /// Recorded outcome.
        result: Result<u64, MsrError>,
    },
    /// `write_msr(addr, value)` returned `result`.
    WriteMsr {
        /// MSR address.
        addr: u32,
        /// Value written.
        value: u64,
        /// Recorded outcome.
        result: Result<(), MsrError>,
    },
    /// `write_line(core, pa)`.
    WriteLine {
        /// OS core index.
        core: u16,
        /// Physical address.
        pa: u64,
    },
    /// `read_line(core, pa)`.
    ReadLine {
        /// OS core index.
        core: u16,
        /// Physical address.
        pa: u64,
    },
    /// `flush_caches()`.
    FlushCaches,
    /// `home_of(pa)` returned `cha`.
    HomeOf {
        /// Physical address.
        pa: u64,
        /// Recorded home slice.
        cha: u16,
    },
}

/// A full recorded measurement campaign: the machine's static geometry
/// plus every stateful operation the pipeline issued, in order.
///
/// Produced by [`RecordingBackend`](super::RecordingBackend), consumed by
/// [`ReplayBackend`](super::ReplayBackend); serializes to JSON via
/// `serde_json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementTrace {
    /// Static machine surface.
    pub geometry: MachineGeometry,
    /// Ordered operation log.
    pub ops: Vec<TraceOp>,
}

impl MeasurementTrace {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_trace() -> MeasurementTrace {
        MeasurementTrace {
            geometry: MachineGeometry {
                cha_count: 4,
                core_count: 3,
                os_cores: vec![0, 1, 2],
                grid_rows: 2,
                grid_cols: 2,
                l2_sets: 64,
                l2_ways: 8,
                address_space: 1 << 30,
            },
            ops: vec![
                TraceOp::ReadMsr {
                    addr: 0x4F,
                    result: Ok(0xC0DE),
                },
                TraceOp::ReadMsr {
                    addr: 0xDEAD,
                    result: Err(MsrError::UnknownMsr { addr: 0xDEAD }),
                },
                TraceOp::WriteMsr {
                    addr: 0xE01,
                    value: 0x42,
                    result: Ok(()),
                },
                TraceOp::WriteMsr {
                    addr: 0x4F,
                    value: 1,
                    result: Err(MsrError::ReadOnly { addr: 0x4F }),
                },
                TraceOp::WriteLine {
                    core: 1,
                    pa: 0x1000,
                },
                TraceOp::ReadLine {
                    core: 2,
                    pa: 0x1000,
                },
                TraceOp::FlushCaches,
                TraceOp::HomeOf { pa: 0x1000, cha: 3 },
            ],
        }
    }

    #[test]
    fn trace_round_trips_through_json() {
        let trace = sample_trace();
        let json = serde_json::to_string(&trace).unwrap();
        let back: MeasurementTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn every_op_variant_survives_pretty_json() {
        let trace = sample_trace();
        let json = serde_json::to_string_pretty(&trace).unwrap();
        let back: MeasurementTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 8);
        assert_eq!(back, trace);
    }
}
