//! Machine backends: the seam under the measurement pipeline.
//!
//! Every step of the methodology (`eviction`, `cha_map`, `traffic`,
//! `calibrate`, [`CoreMapper`](crate::CoreMapper)) is generic over
//! [`MachineBackend`], the trait naming the primitives a machine under
//! measurement must provide. The reference implementation is the simulated
//! [`XeonMachine`](coremap_uncore::XeonMachine); this module ships three
//! more that *wrap or reproduce* any backend:
//!
//! * [`RecordingBackend`] — logs every operation crossing the trait into a
//!   serializable [`MeasurementTrace`];
//! * [`ReplayBackend`] — re-runs the pipeline from a recorded trace with
//!   zero simulation behind it (and panics loudly on divergence);
//! * [`FaultyBackend`] — deterministic, seeded fault injection (jittered
//!   counter readouts, dropped PMON reads, failing MSR accesses) for
//!   robustness studies.
//!
//! Record → replay is the regression-debugging workflow: capture one
//! mapping campaign on the machine (or simulator), persist the trace as
//! JSON, and re-execute the *pipeline logic* against it offline —
//! bit-identical [`CoreMap`](crate::CoreMap)s out, no machine required.

mod fault;
mod record;
mod replay;
mod trace;

pub use coremap_uncore::backend::MachineBackend;
pub use fault::{FaultPlan, FaultyBackend};
pub use record::RecordingBackend;
pub use replay::{DivergenceReport, ReplayBackend};
pub use trace::{MachineGeometry, MeasurementTrace, TraceOp};
