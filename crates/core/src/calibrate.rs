//! Measurement calibration and cheap re-validation of stored maps.
//!
//! Two quality-of-life capabilities a production mapping tool needs around
//! the paper's core pipeline:
//!
//! * [`measure_noise_floor`] + [`CoreMapper::calibrated`] — size the
//!   measurement windows to the host's actual background traffic instead
//!   of hard-coding iteration counts (cloud neighbours vary).
//! * [`spot_check`] — an attacker landing on a chip whose PPIN is already
//!   in the registry should not pay for a full remap: a handful of traffic
//!   observations replayed against the stored map either confirms it or
//!   flags the registry entry as stale.

use coremap_mesh::TileCoord;
use coremap_uncore::PhysAddr;
use rand::Rng;

use crate::mapper::{CoreMapper, MapperConfig};
use crate::traffic::{ObservationSet, PathObservation};
use crate::{eviction, monitor, verify, CoreMap, MachineBackend, MapError};

/// Measures the background ring traffic per machine operation: counters are
/// armed, a window of cache *hits* (which generate no mesh traffic of their
/// own) is executed, and the total observed ring events are attributed to
/// noise. Returns average noise events per operation.
///
/// # Errors
///
/// Propagates MSR failures.
pub fn measure_noise_floor<T: MachineBackend>(
    machine: &mut T,
    window_ops: usize,
) -> Result<f64, MapError> {
    let core = machine.os_cores()[0];
    let pa = PhysAddr::new(0x100);
    machine.read_line(core, pa); // warm the line: subsequent reads hit
    monitor::arm_ring(machine)?;
    monitor::reset_all(machine)?;
    for _ in 0..window_ops {
        machine.read_line(core, pa);
    }
    monitor::freeze_all(machine)?;
    let mut total = 0u64;
    for cha in 0..machine.cha_count() {
        total += monitor::read_ring(machine, cha)?.ring_total();
    }
    Ok(total as f64 / window_ops as f64)
}

impl CoreMapper {
    /// Builds a mapper whose measurement windows are scaled to the
    /// machine's measured noise floor: quiet hosts keep the fast defaults,
    /// busy hosts get proportionally longer windows so the thresholding
    /// margins of steps 1 and 2 hold.
    ///
    /// # Errors
    ///
    /// Propagates MSR failures from the calibration measurement.
    pub fn calibrated<T: MachineBackend>(machine: &mut T) -> Result<Self, MapError> {
        let noise_per_op = measure_noise_floor(machine, 256)?;
        let base = MapperConfig::default();
        // Each observed path tile needs its signal (>= iters events) to
        // dominate the noise accumulated over the window (~2 ops per
        // iteration spread over all tiles). Scale linearly with measured
        // noise, capped to keep runtime sane.
        let scale = (1.0 + 4.0 * noise_per_op).min(16.0);
        let cfg = MapperConfig {
            probe_iters: (base.probe_iters as f64 * scale).ceil() as usize,
            thrash_rounds: (base.thrash_rounds as f64 * scale).ceil() as usize,
            ping_iters: (base.ping_iters as f64 * scale).ceil() as usize,
            ..base
        };
        Ok(CoreMapper::with_config(cfg))
    }
}

/// Re-validates a stored map with `samples` random traffic observations:
/// each observation is replayed against the map's placement and must be
/// explained by it (the acceptance criterion of
/// [`verify::observations_consistent`]). Returns `false` as soon as one
/// observation contradicts the map — e.g. the registry entry belongs to a
/// different chip or was corrupted.
///
/// Orders of magnitude cheaper than a remap: `samples` path measurements
/// instead of eviction-set construction plus the all-pairs campaign.
///
/// # Errors
///
/// Propagates MSR failures; [`MapError::EvictionSetBudget`] if no line
/// homed at a sampled sink can be found.
pub fn spot_check<T: MachineBackend, R: Rng>(
    machine: &mut T,
    map: &CoreMap,
    samples: usize,
    rng: &mut R,
) -> Result<bool, MapError> {
    let cores = machine.os_cores();
    let positions: Vec<TileCoord> = (0..map.cha_count())
        .map(|i| map.coord_of_cha(coremap_mesh::ChaId::new(i as u16)))
        .collect();
    let space = machine.address_space();

    for _ in 0..samples {
        let src = cores[rng.gen_range(0..cores.len())];
        let sink = loop {
            let c = cores[rng.gen_range(0..cores.len())];
            if c != src {
                break c;
            }
        };
        let sink_cha = map.cha_of_core(sink);
        // Find a line homed at the sink's slice by probing random lines.
        let mut line = None;
        for _ in 0..64 * map.cha_count() {
            let pa = PhysAddr::new(rng.gen_range(0..space >> 6) << 6);
            if eviction::probe_home(machine, pa, 8)? == sink_cha {
                line = Some(pa);
                break;
            }
        }
        let Some(pa) = line else {
            return Err(MapError::EvictionSetBudget {
                need: 1,
                incomplete: vec![(sink_cha.index(), 0)],
            });
        };
        let obs: PathObservation =
            crate::traffic::observe_core_pair(machine, &probe_mapping(map), src, sink, pa, 16)?;
        let mini = ObservationSet {
            n_cha: map.cha_count(),
            paths: vec![obs],
        };
        if !verify::observations_consistent(&positions, &mini, map.dim()) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Adapts a stored map into the `ChaMapping` shape the traffic driver
/// expects.
fn probe_mapping(map: &CoreMap) -> crate::cha_map::ChaMapping {
    crate::cha_map::ChaMapping {
        core_to_cha: map.core_to_cha(),
        llc_only: map.llc_only(),
    }
}

/// Convenience: spot-check against a registry candidate and report whether
/// the stored map can be reused for this machine.
///
/// # Errors
///
/// As for [`spot_check`].
pub fn validate_stored_map<T: MachineBackend>(
    machine: &mut T,
    map: &CoreMap,
    seed: u64,
) -> Result<bool, MapError> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    // The stored map must at least agree on the machine's shape.
    if map.core_count() != machine.core_count() || map.cha_count() != machine.cha_count() {
        return Ok(false);
    }
    spot_check(machine, map, 6, &mut rng)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};
    use coremap_uncore::{MachineConfig, NoiseModel, XeonMachine};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn machine(noise: NoiseModel) -> XeonMachine {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        XeonMachine::new(
            plan,
            MachineConfig {
                noise,
                ..MachineConfig::default()
            },
        )
    }

    #[test]
    fn quiet_machine_measures_zero_noise() {
        let mut m = machine(NoiseModel::quiet());
        let floor = measure_noise_floor(&mut m, 128).unwrap();
        assert_eq!(floor, 0.0);
        let mapper = CoreMapper::calibrated(&mut m).unwrap();
        assert_eq!(
            mapper.config().ping_iters,
            MapperConfig::default().ping_iters
        );
    }

    #[test]
    fn busy_machine_gets_longer_windows() {
        let mut m = machine(NoiseModel::busy());
        let floor = measure_noise_floor(&mut m, 128).unwrap();
        assert!(floor > 0.1, "busy noise floor {floor}");
        let mapper = CoreMapper::calibrated(&mut m).unwrap();
        assert!(mapper.config().ping_iters > MapperConfig::default().ping_iters);
        // And the calibrated mapper actually succeeds on the busy host.
        let truth = m.floorplan().clone();
        let map = mapper.map(&mut m).unwrap();
        assert!(verify::matches_relative(&map, &truth));
    }

    #[test]
    fn spot_check_confirms_the_right_map() {
        let mut m = machine(NoiseModel::quiet());
        let map = CoreMapper::new().map(&mut m).unwrap();
        assert!(validate_stored_map(&mut m, &map, 1).unwrap());
    }

    #[test]
    fn spot_check_rejects_a_foreign_map() {
        // Map machine A, then try to reuse its map on machine B with a
        // different layout and slice hash.
        let mut a = machine(NoiseModel::quiet());
        let map_a = CoreMapper::new().map(&mut a).unwrap();

        let plan_b = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(coremap_mesh::TileCoord::new(2, 2))
            .disable(coremap_mesh::TileCoord::new(0, 4))
            .build()
            .unwrap();
        let mut b = XeonMachine::new(
            plan_b,
            MachineConfig {
                slice_hash_secret: 0x1234_5678,
                ..MachineConfig::default()
            },
        );
        // Shape differs (26 vs 28 cores), caught immediately.
        assert!(!validate_stored_map(&mut b, &map_a, 2).unwrap());

        // Same shape, different hidden layout: build another full-die
        // machine with a different slice hash; the CHA-ID space matches but
        // homes differ, so observations contradict the stored map.
        let plan_c = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut c = XeonMachine::new(
            plan_c,
            MachineConfig {
                slice_hash_secret: 0xFEED_F00D,
                ..MachineConfig::default()
            },
        );
        let map_c = CoreMapper::new().map(&mut c).unwrap();
        // Sanity: c's own map validates on c...
        assert!(validate_stored_map(&mut c, &map_c, 3).unwrap());
        // ...and a *scrambled* version of it does not.
        let mut positions: Vec<coremap_mesh::TileCoord> = (0..map_c.cha_count())
            .map(|i| map_c.coord_of_cha(coremap_mesh::ChaId::new(i as u16)))
            .collect();
        positions.swap(0, 9);
        positions.swap(3, 17);
        let scrambled = CoreMap::new(
            map_c.dim(),
            positions,
            map_c.core_to_cha(),
            map_c.llc_only(),
        );
        assert!(!validate_stored_map(&mut c, &scrambled, 4).unwrap());
    }

    #[test]
    fn mini_rng_rejection_loop_terminates() {
        use coremap_mesh::OsCoreId;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cores: Vec<OsCoreId> = (0..2u16).map(OsCoreId::new).collect();
        let src = cores[0];
        let sink = loop {
            let c = cores[rng.gen_range(0..cores.len())];
            if c != src {
                break c;
            }
        };
        assert_ne!(src, sink);
    }
}
