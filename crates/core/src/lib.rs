//! # coremap-core
//!
//! The primary contribution of *"Know Your Neighbor: Physically Locating
//! Xeon Processor Cores on the Core Tile Grid"* (DATE 2022): a fully
//! autonomous methodology that recovers the hidden physical positions of
//! processor cores on a Xeon mesh die from uncore-PMON traffic observations
//! alone.
//!
//! The pipeline has the paper's three steps (Sec. II):
//!
//! 1. **OS core ID ↔ CHA ID mapping** ([`cha_map`]): build *slice eviction
//!    sets* ([`eviction`]) by probing the undisclosed LLC slice hash with
//!    paired-writer contention and the `LLC_LOOKUP` counter, then find for
//!    every core the one slice it can thrash without generating any mesh
//!    traffic — its own tile's slice.
//! 2. **Inter-tile traffic generation and monitoring** ([`traffic`]): for
//!    every ordered pair of tiles, drive a directed cache-line transfer
//!    across the mesh and record which *ingress* ring channels light up at
//!    every observable CHA ([`PathObservation`]).
//! 3. **ILP reconstruction** ([`ilp_model`]): recover row/column indices per
//!    tile that satisfy all (partial) observations — alignment equalities,
//!    vertical bounding boxes with truthful direction, horizontal bounding
//!    boxes with direction-nullifier binaries, one-hot indicators and the
//!    "tightest map" objective — solved with
//!    [`coremap-ilp`](coremap_ilp).
//!
//! The end-to-end driver is [`CoreMapper`]; the result is a [`CoreMap`] that
//! can be compared against ground truth ([`verify`]) and consumed by attack
//! planning (the thermal covert channel of `coremap-thermal`).
//!
//! Every step is generic over [`MachineBackend`] — the machine seam defined
//! next to the simulator and re-exported through [`backend`], which also
//! ships record/replay and fault-injection wrappers around any backend.
//!
//! ```
//! use coremap_mesh::{DieTemplate, FloorplanBuilder};
//! use coremap_uncore::{MachineConfig, XeonMachine};
//! use coremap_core::CoreMapper;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
//! let truth = plan.clone();
//! let mut machine = XeonMachine::new(plan, MachineConfig::default());
//! let map = CoreMapper::new().map(&mut machine)?;
//! assert!(coremap_core::verify::matches_exactly(&map, &truth));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibrate;
pub mod cha_map;
mod coremap;
mod error;
pub mod eviction;
pub mod harden;
pub mod ilp_model;
mod mapper;
pub mod monitor;
pub mod target;
pub mod topology_select;
pub mod traffic;
pub mod verify;

pub use backend::MachineBackend;
pub use coremap::CoreMap;
pub use error::MapError;
pub use harden::{Harden, MapFidelity, MapQuality, RobustnessConfig};
pub use ilp_model::SolveOptions;
pub use mapper::{CoreMapper, MapDiagnostics, MapperConfig};
pub use target::MapTarget;
pub use topology_select::{HypothesisScore, Selection};
pub use traffic::{ObservationSet, PathObservation, VerticalDir};
