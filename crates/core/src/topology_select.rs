//! Topology hypothesis selection: which member of the topology zoo did the
//! observations come from?
//!
//! The paper assumes the die under measurement is *known* (a Skylake or Ice
//! Lake XCC mesh routing Y-then-X). This module drops that assumption: the
//! mapper is handed a *set* of [`Topology`] hypotheses, one reconstruction
//! is attempted per hypothesis, and the best fit wins. A hypothesis is
//! scored on three axes:
//!
//! 1. **Feasibility** — does a placement satisfying every ILP constraint
//!    exist on the hypothesis grid under its routing discipline? A
//!    wrong-discipline hypothesis typically collapses into
//!    [`MapError::InconsistentObservations`] (the alignment classes merge a
//!    contradiction), echoing the routing-assumption ablation.
//! 2. **Explanation** — does replaying every observed path over the
//!    recovered placement under the hypothesis's routing reproduce every
//!    observed ingress event? Feasible embeddings of a small die into a
//!    larger hypothetical grid pass this too, so explanation alone cannot
//!    separate geometrically-compatible dies.
//! 3. **Numbering consistency** — do the recovered positions fall on the
//!    hypothesis's CHA-capable tiles *in its CHA numbering order* (up to
//!    the unknowable horizontal mirror)? This is the axis that separates a
//!    column-major Skylake trace from a row-major Ice Lake hypothesis:
//!    both admit feasible placements, but the scan orders disagree.
//!
//! Ring interconnects carry no row/column geometry, so the mesh ILP is
//! replaced by a combinatorial solver: the observer count of each path from
//! a fixed source is its cyclic distance, which pins the CHA order around
//! the ring; the order is then embedded at every rotation/reflection of the
//! hypothesis cycle until one replays all observations.
//!
//! Ties are broken by hypothesis list order (first wins). This is
//! deliberate: geometrically identical dies (Skylake XCC vs Cascade Lake
//! XCC) tie *perfectly* — no observation can separate them — so callers put
//! the prior (e.g. the fleet's declared model) first.

use std::collections::BTreeMap;

use coremap_mesh::route::ring_cycle;
use coremap_mesh::{RoutingDiscipline, TileCoord, Topology};
use serde::{Deserialize, Serialize};

use crate::ilp_model::{reconstruct_disciplined, Reconstruction, SolveOptions};
use crate::traffic::ObservationSet;
use crate::verify::explains_path_with;

/// Fit report of one topology hypothesis against one observation set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypothesisScore {
    /// Name of the hypothesis ([`Topology::name`]).
    pub name: String,
    /// Whether a constraint-satisfying placement exists at all.
    pub feasible: bool,
    /// Fraction of observed paths the recovered placement replays under
    /// the hypothesis's routing discipline (0.0 when infeasible).
    pub explained: f64,
    /// Whether the placement respects the hypothesis's CHA numbering order
    /// over its core-capable tiles (mirror-tolerant; vacuously true for
    /// ring hypotheses, where the order is recovered, not assumed).
    pub numbering_consistent: bool,
    /// Tightest-map objective of the reconstruction (0.0 when infeasible
    /// or for the combinatorial ring solver).
    pub objective: f64,
    /// Why the hypothesis was eliminated, if it was.
    pub eliminated_by: Option<String>,
}

impl HypothesisScore {
    /// Whether the hypothesis survived all elimination axes.
    pub fn survives(&self) -> bool {
        self.eliminated_by.is_none()
    }
}

/// Outcome of scoring a hypothesis set.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Index of the winning hypothesis in the input slice, if any survived.
    pub winner: Option<usize>,
    /// Reconstruction under the winning hypothesis.
    pub reconstruction: Option<Reconstruction>,
    /// Per-hypothesis scores, in input order.
    pub scores: Vec<HypothesisScore>,
}

impl Selection {
    /// Name of the winning topology, if any.
    pub fn winner_name(&self) -> Option<&str> {
        self.winner.map(|i| self.scores[i].name.as_str())
    }
}

/// Scores every hypothesis against the observations and picks the first
/// surviving one (list order breaks ties — see the module docs).
///
/// Infeasibility of individual hypotheses is *data* here, not failure: the
/// function only reports, the caller decides whether an empty winner is an
/// error.
pub fn select(obs: &ObservationSet, hypotheses: &[Topology], opts: SolveOptions) -> Selection {
    let mut scores = Vec::with_capacity(hypotheses.len());
    let mut winner = None;
    let mut reconstruction = None;
    for (i, topo) in hypotheses.iter().enumerate() {
        let (score, rec) = score_one(obs, topo, opts);
        if winner.is_none() && score.survives() {
            winner = Some(i);
            reconstruction = rec;
        }
        scores.push(score);
    }
    Selection {
        winner,
        reconstruction,
        scores,
    }
}

fn eliminated(topo: &Topology, why: String) -> HypothesisScore {
    HypothesisScore {
        name: topo.name().to_owned(),
        feasible: false,
        explained: 0.0,
        numbering_consistent: false,
        objective: 0.0,
        eliminated_by: Some(why),
    }
}

fn score_one(
    obs: &ObservationSet,
    topo: &Topology,
    opts: SolveOptions,
) -> (HypothesisScore, Option<Reconstruction>) {
    if let RoutingDiscipline::Ring { .. } = topo.routing() {
        return score_ring(obs, topo);
    }
    if obs.n_cha > topo.core_capable_count() {
        return (
            eliminated(
                topo,
                format!(
                    "{} CHAs exceed the {} CHA-capable tiles",
                    obs.n_cha,
                    topo.core_capable_count()
                ),
            ),
            None,
        );
    }
    let rec = match reconstruct_disciplined(obs, topo.dim(), topo.routing(), opts) {
        Ok(rec) => rec,
        Err(e) => {
            return (
                eliminated(topo, format!("reconstruction infeasible: {e}")),
                None,
            );
        }
    };
    let unexplained = obs
        .paths
        .iter()
        .filter(|p| !explains_path_with(&rec.positions, p, topo.dim(), topo.routing()))
        .count();
    let explained = if obs.paths.is_empty() {
        1.0
    } else {
        (obs.paths.len() - unexplained) as f64 / obs.paths.len() as f64
    };
    let numbering = numbering_consistent(&rec.positions, topo);
    let eliminated_by = if unexplained > 0 {
        Some(format!(
            "placement fails to replay {unexplained} of {} observations",
            obs.paths.len()
        ))
    } else if !numbering {
        Some("CHA numbering order mismatch on the hypothesis grid".to_owned())
    } else {
        None
    };
    let score = HypothesisScore {
        name: topo.name().to_owned(),
        feasible: true,
        explained,
        numbering_consistent: numbering,
        objective: rec.objective,
        eliminated_by,
    };
    let rec = score.survives().then_some(rec);
    (score, rec)
}

/// Mirror-tolerant CHA-numbering check: every recovered position must be a
/// CHA-capable tile of the hypothesis, and position rank in the
/// hypothesis's numbering scan must increase strictly with CHA ID — for
/// the placement as-is or for its horizontal mirror image.
fn numbering_consistent(positions: &[TileCoord], topo: &Topology) -> bool {
    let rank: BTreeMap<TileCoord, usize> = topo
        .core_capable_positions()
        .iter()
        .copied()
        .enumerate()
        .map(|(i, c)| (c, i))
        .collect();
    let cols = topo.dim().cols;
    let ordered = |mirror: bool| {
        let mut last = None;
        for &p in positions {
            let c = if mirror {
                TileCoord::new(p.row, cols - 1 - p.col)
            } else {
                p
            };
            let Some(&r) = rank.get(&c) else { return false };
            if last.is_some_and(|l| r <= l) {
                return false;
            }
            last = Some(r);
        }
        true
    };
    ordered(false) || ordered(true)
}

/// Combinatorial ring solver. The observer count of a path is its hop
/// count (every ring tile hosts a CHA), i.e. the cyclic distance from
/// source to sink in travel polarity — so the paths out of one fixed
/// source order *all* CHAs around the cycle. The recovered order is then
/// embedded at each rotation and reflection of the hypothesis cycle; a
/// candidate wins by replaying every observation.
fn score_ring(obs: &ObservationSet, topo: &Topology) -> (HypothesisScore, Option<Reconstruction>) {
    let n = obs.n_cha;
    if n != topo.dim().tile_count() || n != topo.core_capable_count() {
        return (
            eliminated(
                topo,
                format!(
                    "ring needs one CHA per tile ({} CHAs on {} tiles)",
                    n,
                    topo.dim().tile_count()
                ),
            ),
            None,
        );
    }
    if n < 3 {
        return (eliminated(topo, "ring too small to order".to_owned()), None);
    }

    // Cyclic CHA order from the fixed source's observer counts.
    let mut order: Vec<Option<usize>> = vec![None; n];
    order[0] = Some(0);
    for p in obs.paths.iter().filter(|p| p.source.index() == 0) {
        let d = p.vertical.len() + p.horizontal.len();
        if d == 0 || d >= n || order[d].is_some() {
            return (
                eliminated(topo, "observer counts do not form a ring order".to_owned()),
                None,
            );
        }
        order[d] = Some(p.sink.index());
    }
    let Some(order): Option<Vec<usize>> = order.into_iter().collect() else {
        return (
            eliminated(topo, "observer counts do not form a ring order".to_owned()),
            None,
        );
    };

    // Embed the order at every rotation (and reflection, covering the
    // opposite travel polarity) of the hypothesis cycle.
    let cycle = ring_cycle(topo.dim());
    for reflected in [false, true] {
        for r in 0..n {
            let mut positions = vec![TileCoord::new(0, 0); n];
            for (d, &cha) in order.iter().enumerate() {
                let idx = if reflected {
                    (r + n - d) % n
                } else {
                    (r + d) % n
                };
                positions[cha] = cycle[idx];
            }
            let ok = obs
                .paths
                .iter()
                .all(|p| explains_path_with(&positions, p, topo.dim(), topo.routing()));
            if ok {
                let score = HypothesisScore {
                    name: topo.name().to_owned(),
                    feasible: true,
                    explained: 1.0,
                    numbering_consistent: true,
                    objective: 0.0,
                    eliminated_by: None,
                };
                let rec = Reconstruction {
                    positions,
                    stats: coremap_ilp::SolveStats::default(),
                    objective: 0.0,
                };
                return (score, Some(rec));
            }
        }
    }
    (
        eliminated(topo, "no ring embedding replays the trace".to_owned()),
        None,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::FloorplanBuilder;

    fn builtin(name: &str) -> Topology {
        Topology::builtin(name).unwrap().clone()
    }

    fn synthetic_for(name: &str) -> (ObservationSet, coremap_mesh::Floorplan) {
        let plan = FloorplanBuilder::from_topology(builtin(name))
            .build()
            .unwrap();
        (ObservationSet::synthetic(&plan), plan)
    }

    fn zoo() -> Vec<Topology> {
        Topology::builtins().iter().map(|&t| t.clone()).collect()
    }

    #[test]
    fn skylake_trace_selects_skylake() {
        let (obs, _) = synthetic_for("skylake-xcc");
        let sel = select(&obs, &zoo(), SolveOptions::default());
        assert_eq!(sel.winner_name(), Some("skylake-xcc"));
        // Cascade Lake is geometrically identical: it must also survive,
        // losing only on list order.
        let clx = &sel.scores[1];
        assert_eq!(clx.name, "cascadelake-xcc");
        assert!(clx.survives());
        // Ice Lake is feasible as an embedding but numbering-inconsistent.
        let icx = &sel.scores[2];
        assert_eq!(icx.name, "icelake-xcc");
        assert!(!icx.survives());
        // The ring cannot explain a mesh trace.
        let ring = &sel.scores[5];
        assert_eq!(ring.name, "ring-28");
        assert!(!ring.survives());
    }

    #[test]
    fn icelake_trace_selects_icelake() {
        let (obs, _) = synthetic_for("icelake-xcc");
        let sel = select(&obs, &zoo(), SolveOptions::default());
        assert_eq!(sel.winner_name(), Some("icelake-xcc"));
        // 40 CHAs cannot fit the 28-capable Skylake grid.
        assert!(!sel.scores[0].survives());
        assert!(sel.scores[0]
            .eliminated_by
            .as_deref()
            .unwrap()
            .contains("exceed"));
    }

    #[test]
    fn ring_trace_selects_ring() {
        let (obs, plan) = synthetic_for("ring-28");
        let sel = select(&obs, &zoo(), SolveOptions::default());
        assert_eq!(sel.winner_name(), Some("ring-28"));
        let rec = sel.reconstruction.unwrap();
        // The recovered embedding replays every observation.
        assert!(obs.paths.iter().all(|p| explains_path_with(
            &rec.positions,
            p,
            plan.dim(),
            RoutingDiscipline::Ring { clockwise: true }
        )));
    }

    #[test]
    fn xfirst_trace_selects_xfirst() {
        let (obs, _) = synthetic_for("skylake-xcc-xfirst");
        let sel = select(&obs, &zoo(), SolveOptions::default());
        assert_eq!(sel.winner_name(), Some("skylake-xcc-xfirst"));
        // The Y-then-X hypotheses must not survive an X-then-Y trace.
        assert!(!sel.scores[0].survives());
    }

    #[test]
    fn empty_hypothesis_set_has_no_winner() {
        let (obs, _) = synthetic_for("skylake-xcc");
        let sel = select(&obs, &[], SolveOptions::default());
        assert!(sel.winner.is_none());
        assert!(sel.scores.is_empty());
    }
}
