//! Step 3: ILP reconstruction of the core tile map (paper Sec. II-C).
//!
//! Two formulations are provided:
//!
//! * [`reconstruct`] — the production path. It first collapses the paper's
//!   alignment equalities (`C_i = C_s` for vertical observers, `R_j = R_e`
//!   for horizontal observers) into row/column *classes* with a union-find,
//!   then instantiates the remaining constraint families once per class:
//!   vertical bounding boxes with truthful direction (Eq. 1), horizontal
//!   bounding boxes guarded by `NE`/`NW` direction-nullifier binaries
//!   (Eqs. 2–3), one-hot indicator variables, row/column occupancy
//!   indicators and the tightest-map objective. This is exactly the model a
//!   MILP presolve would derive from the paper's formulation, built
//!   directly for speed.
//! * [`reconstruct_full`] — the literal per-tile, per-path formulation from
//!   the paper, kept for fidelity testing on small instances; integration
//!   tests assert both produce equivalent maps.
//!
//! Both return one grid position per CHA. Absolute positions are recovered
//! up to the ambiguities the paper documents: a fully vacant row/column
//! cannot be pinned (Sec. II-D), and the true east/west orientation is
//! unknowable because horizontal channel labels are scrambled (Sec.
//! II-C.4), so the map may be horizontally mirrored.

use std::collections::{BTreeMap, BTreeSet};

use coremap_ilp::{BbConfig, Cmp, LinExpr, LpEngine, Model, SolveStats, Var};
use coremap_mesh::{GridDim, TileCoord};

use crate::traffic::{ObservationSet, VerticalDir};
use crate::MapError;

/// A reconstructed placement.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    /// Grid position per CHA (indexed by CHA id).
    pub positions: Vec<TileCoord>,
    /// ILP search statistics.
    pub stats: SolveStats,
    /// Objective value of the tightest map.
    pub objective: f64,
}

/// Solver tuning forwarded from the mapper to the branch-and-bound search.
/// Solutions are byte-identical at any `workers` value and whether or not
/// warm starts are enabled, so these are pure performance knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Branch-and-bound worker threads (`<= 1` means serial).
    pub workers: usize,
    /// Dual-simplex warm starts across nodes (disable for ablations).
    pub warm_start: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            warm_start: true,
        }
    }
}

impl SolveOptions {
    fn bb_config(self) -> BbConfig {
        BbConfig {
            engine: if self.warm_start {
                LpEngine::RevisedWarm
            } else {
                LpEngine::RevisedCold
            },
            workers: self.workers.max(1),
            ..BbConfig::default()
        }
    }
}

pub(crate) struct UnionFind(Vec<usize>);

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        Self((0..n).collect())
    }
    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }
    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[drop] = keep;
        }
    }
}

/// Adds one-hot encodings, occupancy indicators and the objective for one
/// axis; returns nothing (extends `model` in place).
///
/// `vars` are the distinct position variables of the axis, `extent` the
/// number of rows/columns. Implements the paper's Sec. II-C.5/6 machinery:
/// `sum_r OHR_{i,r} = 1`, `R_i = sum_r r * OHR_{i,r}`,
/// `RI_r <= sum_i OHR_{i,r} <= b * RI_r`, objective weight rising with the
/// index (we use `2^index`, which makes "occupy a smaller index" strictly
/// dominant, i.e. the tightest map).
fn add_axis_indicators(model: &mut Model, vars: &[Var], extent: usize, obj: &mut LinExpr) {
    let mut occupancy: Vec<Vec<Var>> = vec![Vec::new(); extent];
    for (vi, &v) in vars.iter().enumerate() {
        let mut one_hot_sum = model.expr();
        let mut value_sum = model.expr();
        let mut ohs = Vec::with_capacity(extent);
        #[allow(clippy::needless_range_loop)] // idx is also the one-hot weight
        for idx in 0..extent {
            let oh = model.bin_var(&format!("oh_{vi}_{idx}"));
            ohs.push(oh);
            one_hot_sum = one_hot_sum.term(1.0, oh);
            if idx > 0 {
                value_sum = value_sum.term(idx as f64, oh);
            }
            occupancy[idx].push(oh);
        }
        model.constraint(one_hot_sum, Cmp::Eq, 1.0);
        // R_v - sum(idx * OH) == 0
        let link = value_sum.term(-1.0, v);
        model.constraint(link, Cmp::Eq, 0.0);
    }
    for (idx, ohs) in occupancy.iter().enumerate() {
        let ind = model.bin_var(&format!("occ_{idx}"));
        // ind <= sum(ohs)
        let mut lhs = model.expr().term(1.0, ind);
        for &oh in ohs {
            lhs = lhs.term(-1.0, oh);
        }
        model.constraint(lhs, Cmp::Le, 0.0);
        // The paper writes the occupied-side link in aggregated big-M form
        // (`sum(ohs) <= b * ind`); the disaggregated, logically equivalent
        // form `oh <= ind` per variable has a far tighter LP relaxation and
        // keeps the branch-and-bound search shallow. Keep the aggregated
        // row as well — it is a single dense cut that speeds up pruning.
        let big = vars.len() as f64 + 1.0;
        let mut agg = model.expr().term(-big, ind);
        for &oh in ohs {
            let lhs = model.expr().term(1.0, oh).term(-1.0, ind);
            model.constraint(lhs, Cmp::Le, 0.0);
            agg = agg.term(1.0, oh);
        }
        model.constraint(agg, Cmp::Le, 0.0);
        obj.add_term((1u64 << idx) as f64, ind);
    }
}

/// Reconstructs tile positions from observations on a `dim` grid using the
/// class-merged formulation.
///
/// # Errors
///
/// [`MapError::Ilp`] if the ILP is infeasible (mutually inconsistent,
/// typically extremely noisy, observations) or hits solver limits.
pub fn reconstruct(obs: &ObservationSet, dim: GridDim) -> Result<Reconstruction, MapError> {
    reconstruct_with(obs, dim, SolveOptions::default())
}

/// [`reconstruct`] with explicit solver tuning ([`SolveOptions`]). The
/// returned placement is identical for every option combination; only the
/// wall-clock cost differs.
///
/// # Errors
///
/// As for [`reconstruct`].
pub fn reconstruct_with(
    obs: &ObservationSet,
    dim: GridDim,
    opts: SolveOptions,
) -> Result<Reconstruction, MapError> {
    reconstruct_with_bb(obs, dim, &opts.bb_config())
}

/// [`reconstruct`] with a raw branch-and-bound configuration — the
/// engine-ablation seam of the solver benchmarks (e.g. pitting the legacy
/// dense tableau against the revised simplex on the same instance).
///
/// # Errors
///
/// As for [`reconstruct`].
pub fn reconstruct_with_bb(
    obs: &ObservationSet,
    dim: GridDim,
    cfg: &BbConfig,
) -> Result<Reconstruction, MapError> {
    reconstruct_mesh_bb(obs, dim, cfg, false)
}

/// Reconstruction under an explicit routing-discipline hypothesis: the seam
/// topology hypothesis selection solves through.
///
/// * [`RoutingDiscipline::VerticalFirst`] is the paper's Y-then-X model.
/// * [`RoutingDiscipline::HorizontalFirst`] swaps the alignment anchors
///   (vertical observers share the *sink*'s column, horizontal observers
///   the *source*'s row) and relaxes the horizontal blocks on the sink
///   side, because the X-then-Y turn tile sits at the sink's column.
/// * [`RoutingDiscipline::QuadrantLocal`] has no dedicated formulation:
///   same-quadrant traffic is Y-then-X, so the vertical-first model is
///   solved and the caller validates the placement against the quadrant
///   routes (`verify::explains_path_with`), which eliminates the
///   hypothesis when cross-quadrant paths contradict it.
/// * [`RoutingDiscipline::Ring`] observations carry no row/column geometry
///   at all; the mesh ILP cannot express the cycle walk, so this returns
///   [`MapError::InconsistentObservations`] and the combinatorial ring
///   solver in `topology_select` owns that hypothesis.
///
/// # Errors
///
/// As for [`reconstruct`], plus the ring case above.
pub fn reconstruct_disciplined(
    obs: &ObservationSet,
    dim: GridDim,
    discipline: coremap_mesh::RoutingDiscipline,
    opts: SolveOptions,
) -> Result<Reconstruction, MapError> {
    use coremap_mesh::RoutingDiscipline as Rd;
    match discipline {
        Rd::VerticalFirst | Rd::QuadrantLocal => {
            reconstruct_mesh_bb(obs, dim, &opts.bb_config(), false)
        }
        Rd::HorizontalFirst => reconstruct_mesh_bb(obs, dim, &opts.bb_config(), true),
        Rd::Ring { .. } => Err(MapError::InconsistentObservations),
    }
}

/// The class-merged mesh formulation, parameterized over the dimension
/// order. `horizontal_first = false` is the paper-literal model and the
/// production path; `true` is the X-then-Y hypothesis.
fn reconstruct_mesh_bb(
    obs: &ObservationSet,
    dim: GridDim,
    cfg: &BbConfig,
    horizontal_first: bool,
) -> Result<Reconstruction, MapError> {
    let n = obs.n_cha;

    // ---- Alignment classes (paper Sec. II-C.2, applied as a merge) -------
    // Under Y-then-X a vertical observer shares the source's column and a
    // horizontal observer the sink's row; under X-then-Y the legs swap, so
    // the anchors swap with them.
    let mut row_uf = UnionFind::new(n);
    let mut col_uf = UnionFind::new(n);
    for p in &obs.paths {
        let col_anchor = if horizontal_first { p.sink } else { p.source };
        let row_anchor = if horizontal_first { p.source } else { p.sink };
        for &(k, _) in &p.vertical {
            col_uf.union(k.index(), col_anchor.index());
        }
        for &k in &p.horizontal {
            row_uf.union(k.index(), row_anchor.index());
        }
    }
    let row_class: Vec<usize> = (0..n).map(|i| row_uf.find(i)).collect();
    let col_class: Vec<usize> = (0..n).map(|i| col_uf.find(i)).collect();

    let mut model = Model::new();
    let mut row_var: BTreeMap<usize, Var> = BTreeMap::new();
    let mut col_var: BTreeMap<usize, Var> = BTreeMap::new();
    for i in 0..n {
        row_var.entry(row_class[i]).or_insert_with(|| {
            let v = model.int_var(&format!("R{}", row_class[i]), 0, dim.rows as i64 - 1);
            model.set_branch_priority(v, 5);
            v
        });
        col_var.entry(col_class[i]).or_insert_with(|| {
            let v = model.int_var(&format!("C{}", col_class[i]), 0, dim.cols as i64 - 1);
            model.set_branch_priority(v, 5);
            v
        });
    }

    // ---- Vertical bounding boxes (Eq. 1), deduplicated per class pair ----
    // (a, b) in `ge1` means R_a >= R_b + 1; in `ge0` means R_a >= R_b.
    // Ordered sets: these are iterated to emit constraints, and constraint
    // order must not vary run-to-run (bound propagation work is order
    // sensitive, and the metrics export pins it).
    let mut ge1: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut ge0: BTreeSet<(usize, usize)> = BTreeSet::new();
    for p in &obs.paths {
        let s = row_class[p.source.index()];
        let e = row_class[p.sink.index()];
        for &(k, dir) in &p.vertical {
            let kc = row_class[k.index()];
            match dir {
                VerticalDir::Up => {
                    // R_s > R_k >= R_e
                    ge1.insert((s, kc));
                    ge0.insert((kc, e));
                }
                VerticalDir::Down => {
                    ge1.insert((kc, s));
                    ge0.insert((e, kc));
                }
            }
        }
    }
    for &(a, b) in &ge1 {
        if a == b {
            return Err(MapError::InconsistentObservations);
        }
        let e = model.expr().term(1.0, row_var[&a]).term(-1.0, row_var[&b]);
        model.constraint(e, Cmp::Ge, 1.0);
    }
    for &(a, b) in &ge0 {
        if a == b {
            continue;
        }
        let e = model.expr().term(1.0, row_var[&a]).term(-1.0, row_var[&b]);
        model.constraint(e, Cmp::Ge, 0.0);
    }

    // ---- Horizontal bounding boxes with NE/NW nullifiers (Eqs. 2-3) ------
    // The paper allocates one NE/NW pair and one constraint block per
    // observed path. All paths between the same pair of column classes
    // share one physical direction, and a tile observed strictly between
    // the two classes on *any* of them lies between them on all of them.
    // One NE/NW pair and one constraint block per *unordered* class pair -
    // with the union of all observed in-between classes - is therefore an
    // equivalent, massively smaller and tighter model.
    //
    // The nullifier constant must dominate `span + (cols - 1)` so a voided
    // block is satisfied by every in-grid assignment.
    let big = 2.0 * dim.cols as f64;
    if horizontal_first {
        // X-then-Y: the horizontal leg runs at the source's row and ends at
        // the *turn tile* — a tile whose column equals the sink's but whose
        // CHA identity is unrecoverable from the measured event vectors
        // (they are in CHA scan order, not travel order). Blocks are
        // emitted per *ordered* column-class pair (source role vs sink
        // role, so the strict/inclusive asymmetry is well defined): strict
        // between source and observer on the source side, inclusive on the
        // sink side so the turn-tile observer may sit exactly at the sink's
        // column class.
        let mut hf_mids: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
        for p in &obs.paths {
            if p.horizontal.is_empty() {
                continue;
            }
            let s = col_class[p.source.index()];
            let e = col_class[p.sink.index()];
            if s == e {
                return Err(MapError::InconsistentObservations);
            }
            let entry = hf_mids.entry((s, e)).or_default();
            entry.extend(
                p.horizontal
                    .iter()
                    .filter(|&&k| k != p.sink)
                    .map(|&k| col_class[k.index()]),
            );
        }
        let mut anchored = false;
        for (&(s, e), mids) in &hf_mids {
            let ne = model.bin_var("NE");
            let nw = model.bin_var("NW");
            model.set_branch_priority(ne, 10);
            model.set_branch_priority(nw, 10);
            let sum = model.expr().term(1.0, ne).term(1.0, nw);
            model.constraint(sum, Cmp::Eq, 1.0);
            // Orientation is unknowable here too; pin the mirror on the
            // first horizontal block.
            if !anchored {
                model.constraint(LinExpr::from(ne), Cmp::Eq, 0.0);
                anchored = true;
            }
            let (cs, ce) = (col_var[&s], col_var[&e]);
            // Observers strictly between the endpoints number at least
            // |mids| - 1 (one observer may be the turn tile), and the
            // endpoints differ, so the span clears max(|mids|, 1).
            let span = (mids.len() as f64).max(1.0);
            let east = model.expr().term(1.0, cs).term(-1.0, ce).term(-big, ne);
            model.constraint(east, Cmp::Le, -span);
            let west = model.expr().term(-1.0, cs).term(1.0, ce).term(-big, nw);
            model.constraint(west, Cmp::Le, -span);
            for &m in mids {
                if m == s {
                    return Err(MapError::InconsistentObservations);
                }
                if m == e {
                    // The turn-tile observer: pinned to the sink's column
                    // class by the span constraints alone.
                    continue;
                }
                let cm = col_var[&m];
                let e1 = model.expr().term(1.0, cs).term(-1.0, cm).term(-big, ne);
                model.constraint(e1, Cmp::Le, -1.0);
                let e2 = model.expr().term(1.0, cm).term(-1.0, ce).term(-big, ne);
                model.constraint(e2, Cmp::Le, 0.0);
                let w1 = model.expr().term(-1.0, cs).term(1.0, cm).term(-big, nw);
                model.constraint(w1, Cmp::Le, -1.0);
                let w2 = model.expr().term(-1.0, cm).term(1.0, ce).term(-big, nw);
                model.constraint(w2, Cmp::Le, 0.0);
            }
        }
    }
    let mut pair_mids: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    if !horizontal_first {
        for p in &obs.paths {
            if p.horizontal.is_empty() {
                continue;
            }
            let s = col_class[p.source.index()];
            let e = col_class[p.sink.index()];
            if s == e {
                return Err(MapError::InconsistentObservations);
            }
            let key = (s.min(e), s.max(e));
            let entry = pair_mids.entry(key).or_default();
            entry.extend(
                p.horizontal
                    .iter()
                    .filter(|&&k| k != p.sink)
                    .map(|&k| col_class[k.index()]),
            );
        }
    }
    // BTreeMap iteration is already in sorted class-pair order, so the
    // constraint blocks are emitted deterministically.
    let mut anchored = false;
    for ((a, b), mids) in pair_mids {
        // NE = 1 voids the "a west of b" block, NW = 1 voids the mirrored
        // one; exactly one direction is enforced (paper Sec. II-C.4).
        let ne = model.bin_var("NE");
        let nw = model.bin_var("NW");
        // Direction decisions shape the whole column order: branch on them
        // before any encoding variable.
        model.set_branch_priority(ne, 10);
        model.set_branch_priority(nw, 10);
        let sum = model.expr().term(1.0, ne).term(1.0, nw);
        model.constraint(sum, Cmp::Eq, 1.0);
        // The true east/west orientation is unknowable (odd-column label
        // flip), so the first horizontal relation may be fixed without
        // loss of generality; this pins the mirror orientation.
        if !anchored {
            model.constraint(LinExpr::from(ne), Cmp::Eq, 0.0);
            anchored = true;
        }
        let (ca, cb) = (col_var[&a], col_var[&b]);
        // The span must clear all in-between classes: |C_a - C_b| > |mids|.
        let span = mids.len() as f64 + 1.0;
        let east = model.expr().term(1.0, ca).term(-1.0, cb).term(-big, ne);
        model.constraint(east, Cmp::Le, -span);
        let west = model.expr().term(-1.0, ca).term(1.0, cb).term(-big, nw);
        model.constraint(west, Cmp::Le, -span);
        for &m in &mids {
            if m == a || m == b {
                return Err(MapError::InconsistentObservations);
            }
            let cm = col_var[&m];
            let e1 = model.expr().term(1.0, ca).term(-1.0, cm).term(-big, ne);
            model.constraint(e1, Cmp::Le, -1.0);
            let e2 = model.expr().term(1.0, cm).term(-1.0, cb).term(-big, ne);
            model.constraint(e2, Cmp::Le, -1.0);
            let w1 = model.expr().term(-1.0, ca).term(1.0, cm).term(-big, nw);
            model.constraint(w1, Cmp::Le, -1.0);
            let w2 = model.expr().term(-1.0, cm).term(1.0, cb).term(-big, nw);
            model.constraint(w2, Cmp::Le, -1.0);
        }
    }

    // ---- Known distinctness of co-classed tiles without direct paths -----
    // Any two distinct CHAs occupy distinct tiles. Pairs that share both a
    // row and a column class would collapse; pairs sharing a column class
    // but having no ordering constraint (two LLC-only tiles, which cannot
    // sink traffic) get an explicit disequality on rows.
    let mut ordered: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(a, b) in ge1.iter() {
        ordered.insert((a, b));
        ordered.insert((b, a));
    }
    let big_r = dim.rows as f64 + 1.0;
    for i in 0..n {
        for j in (i + 1)..n {
            if col_class[i] == col_class[j] {
                let (ri, rj) = (row_class[i], row_class[j]);
                if ri == rj {
                    return Err(MapError::InconsistentObservations);
                }
                if !ordered.contains(&(ri, rj)) {
                    let d = model.bin_var("neq");
                    model.set_branch_priority(d, 8);
                    let a = model
                        .expr()
                        .term(1.0, row_var[&rj])
                        .term(-1.0, row_var[&ri])
                        .term(-big_r, d);
                    model.constraint(a, Cmp::Le, -1.0);
                    let b = model
                        .expr()
                        .term(1.0, row_var[&ri])
                        .term(-1.0, row_var[&rj])
                        .term(big_r, d);
                    model.constraint(b, Cmp::Le, big_r - 1.0);
                    ordered.insert((ri, rj));
                    ordered.insert((rj, ri));
                }
            }
        }
    }

    // ---- Indicators and objective (Sec. II-C.5/6) -------------------------
    let mut obj = LinExpr::new();
    let mut row_vars: Vec<(usize, Var)> = row_var.iter().map(|(&k, &v)| (k, v)).collect();
    row_vars.sort_by_key(|&(k, _)| k);
    let rv: Vec<Var> = row_vars.iter().map(|&(_, v)| v).collect();
    add_axis_indicators(&mut model, &rv, dim.rows, &mut obj);
    let mut col_vars: Vec<(usize, Var)> = col_var.iter().map(|(&k, &v)| (k, v)).collect();
    col_vars.sort_by_key(|&(k, _)| k);
    let cv: Vec<Var> = col_vars.iter().map(|&(_, v)| v).collect();
    add_axis_indicators(&mut model, &cv, dim.cols, &mut obj);
    model.minimize(obj);

    let sol = model.solve_with_config(cfg)?;

    let positions = (0..n)
        .map(|i| {
            TileCoord::new(
                sol.int_value(row_var[&row_class[i]]) as usize,
                sol.int_value(col_var[&col_class[i]]) as usize,
            )
        })
        .collect();
    Ok(Reconstruction {
        positions,
        stats: sol.stats(),
        objective: sol.objective(),
    })
}

/// The literal per-tile, per-path formulation of paper Sec. II-C, solved
/// through the generic MILP presolve. Exponential in practice on full dies;
/// used by fidelity tests on small instances.
///
/// # Errors
///
/// As for [`reconstruct`].
pub fn reconstruct_full(obs: &ObservationSet, dim: GridDim) -> Result<Reconstruction, MapError> {
    reconstruct_full_with(obs, dim, SolveOptions::default())
}

/// [`reconstruct_full`] with explicit solver tuning ([`SolveOptions`]).
///
/// # Errors
///
/// As for [`reconstruct`].
pub fn reconstruct_full_with(
    obs: &ObservationSet,
    dim: GridDim,
    opts: SolveOptions,
) -> Result<Reconstruction, MapError> {
    reconstruct_full_with_bb(obs, dim, &opts.bb_config())
}

/// [`reconstruct_full`] with a raw branch-and-bound configuration — the
/// engine-ablation seam of the solver benchmarks.
///
/// # Errors
///
/// As for [`reconstruct`].
pub fn reconstruct_full_with_bb(
    obs: &ObservationSet,
    dim: GridDim,
    cfg: &BbConfig,
) -> Result<Reconstruction, MapError> {
    let n = obs.n_cha;
    let mut model = Model::new();
    let r: Vec<Var> = (0..n)
        .map(|i| model.int_var(&format!("R{i}"), 0, dim.rows as i64 - 1))
        .collect();
    let c: Vec<Var> = (0..n)
        .map(|i| model.int_var(&format!("C{i}"), 0, dim.cols as i64 - 1))
        .collect();

    let big = dim.cols as f64 + 1.0;
    let mut anchored = false;
    for p in &obs.paths {
        let (s, e) = (p.source.index(), p.sink.index());
        for &(k, dir) in &p.vertical {
            let k = k.index();
            // Alignment: C_k = C_s.
            let align = model.expr().term(1.0, c[k]).term(-1.0, c[s]);
            model.constraint(align, Cmp::Eq, 0.0);
            match dir {
                VerticalDir::Up => {
                    let a = model.expr().term(1.0, r[s]).term(-1.0, r[k]);
                    model.constraint(a, Cmp::Ge, 1.0);
                    let b = model.expr().term(1.0, r[k]).term(-1.0, r[e]);
                    model.constraint(b, Cmp::Ge, 0.0);
                }
                VerticalDir::Down => {
                    let a = model.expr().term(1.0, r[k]).term(-1.0, r[s]);
                    model.constraint(a, Cmp::Ge, 1.0);
                    let b = model.expr().term(1.0, r[e]).term(-1.0, r[k]);
                    model.constraint(b, Cmp::Ge, 0.0);
                }
            }
        }
        if !p.horizontal.is_empty() {
            let ne = model.bin_var("NE");
            let nw = model.bin_var("NW");
            model.set_branch_priority(ne, 10);
            model.set_branch_priority(nw, 10);
            let sum = model.expr().term(1.0, ne).term(1.0, nw);
            model.constraint(sum, Cmp::Eq, 1.0);
            if !anchored {
                model.constraint(LinExpr::from(ne), Cmp::Eq, 0.0);
                anchored = true;
            }
            let east = model.expr().term(1.0, c[s]).term(-1.0, c[e]).term(-big, ne);
            model.constraint(east, Cmp::Le, -1.0);
            let west = model.expr().term(-1.0, c[s]).term(1.0, c[e]).term(-big, nw);
            model.constraint(west, Cmp::Le, -1.0);
            for &k in &p.horizontal {
                let k = k.index();
                // Alignment: R_k = R_e.
                let align = model.expr().term(1.0, r[k]).term(-1.0, r[e]);
                model.constraint(align, Cmp::Eq, 0.0);
                if k == e {
                    continue;
                }
                let e1 = model.expr().term(1.0, c[s]).term(-1.0, c[k]).term(-big, ne);
                model.constraint(e1, Cmp::Le, -1.0);
                let e2 = model.expr().term(1.0, c[k]).term(-1.0, c[e]).term(-big, ne);
                model.constraint(e2, Cmp::Le, -1.0);
                let w1 = model.expr().term(-1.0, c[s]).term(1.0, c[k]).term(-big, nw);
                model.constraint(w1, Cmp::Le, -1.0);
                let w2 = model.expr().term(-1.0, c[k]).term(1.0, c[e]).term(-big, nw);
                model.constraint(w2, Cmp::Le, -1.0);
            }
        }
    }

    // Presolve collapses the alignment equalities, then the indicator
    // machinery is added over the surviving class variables.
    let mut pre = coremap_ilp::presolve::merge_equalities(&model).map_err(MapError::Ilp)?;
    let mut obj = LinExpr::new();
    let mut rset: Vec<Var> = Vec::new();
    for &v in &r {
        let m = pre.mapped(v);
        if !rset.contains(&m) {
            rset.push(m);
        }
    }
    let mut cset: Vec<Var> = Vec::new();
    for &v in &c {
        let m = pre.mapped(v);
        if !cset.contains(&m) {
            cset.push(m);
        }
    }
    add_axis_indicators(&mut pre.model, &rset, dim.rows, &mut obj);
    add_axis_indicators(&mut pre.model, &cset, dim.cols, &mut obj);
    pre.model.minimize(obj);
    let sol = pre.model.solve_with_config(cfg)?;

    let positions = (0..n)
        .map(|i| {
            TileCoord::new(
                sol.value(pre.mapped(r[i])).round() as usize,
                sol.value(pre.mapped(c[i])).round() as usize,
            )
        })
        .collect();
    Ok(Reconstruction {
        positions,
        stats: sol.stats(),
        objective: sol.objective(),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::verify;
    use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder, TileCoord as TC};

    /// A dense 3x3 block of active tiles (rows 2-4, cols 0-2): small enough
    /// for the literal per-path formulation, dense enough that every row
    /// and column relation is observable, i.e. reconstruction is
    /// well-posed (up to the documented mirror/compaction ambiguities).
    fn dense_block_plan() -> Floorplan {
        let t = DieTemplate::SkylakeXcc;
        let keep: Vec<TC> = (2..5)
            .flat_map(|r| (0..2).map(move |c| TC::new(r, c)))
            .collect();
        let disable = t
            .core_capable_positions()
            .iter()
            .copied()
            .filter(|p| !keep.contains(p));
        FloorplanBuilder::new(t)
            .disable_all(disable)
            .build()
            .unwrap()
    }

    /// A sparse, partially-observable die: reconstruction is *not* unique,
    /// so it is checked for observation consistency rather than truth
    /// match.
    fn sparse_plan() -> Floorplan {
        let t = DieTemplate::SkylakeXcc;
        let keep = [
            TC::new(0, 0),
            TC::new(2, 0),
            TC::new(0, 1),
            TC::new(3, 1),
            TC::new(1, 2),
            TC::new(4, 3),
            TC::new(0, 4),
            TC::new(2, 5),
        ];
        let disable = t
            .core_capable_positions()
            .iter()
            .copied()
            .filter(|p| !keep.contains(p));
        FloorplanBuilder::new(t)
            .disable_all(disable)
            .build()
            .unwrap()
    }

    #[test]
    fn merged_reconstruction_recovers_full_die() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        assert!(verify::positions_match(&rec.positions, &plan));
    }

    #[test]
    fn merged_reconstruction_explains_sparse_die_observations() {
        // With only 8 of 28 tiles active, several placements are
        // legitimately consistent with the partial observations (paper
        // Sec. II-D); the solver must return one of them.
        let plan = sparse_plan();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        assert!(verify::observations_consistent(
            &rec.positions,
            &obs,
            plan.dim()
        ));
    }

    #[test]
    fn dense_block_reconstructs_relative_truth() {
        let plan = dense_block_plan();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        assert!(verify::positions_match_relative(&rec.positions, &plan));
        assert!(verify::observations_consistent(
            &rec.positions,
            &obs,
            plan.dim()
        ));
    }

    #[test]
    fn full_formulation_matches_merged_on_dense_block() {
        let plan = dense_block_plan();
        let obs = ObservationSet::synthetic(&plan);
        let merged = reconstruct(&obs, plan.dim()).unwrap();
        let full = reconstruct_full(&obs, plan.dim()).unwrap();
        // Both must be valid relative reconstructions of the same truth.
        assert!(verify::positions_match_relative(&merged.positions, &plan));
        assert!(verify::positions_match_relative(&full.positions, &plan));
        assert!(verify::observations_consistent(
            &full.positions,
            &obs,
            plan.dim()
        ));
    }

    #[test]
    fn reconstruction_handles_llc_only_tiles() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TC::new(0, 2))
            .llc_only(TC::new(4, 4))
            .disable(TC::new(2, 3))
            .disable(TC::new(3, 0))
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        assert!(verify::positions_match_relative(&rec.positions, &plan));
    }

    #[test]
    fn reconstruction_recovers_icelake_die() {
        let plan = FloorplanBuilder::new(DieTemplate::IceLakeXcc)
            .disable_all([TC::new(0, 2), TC::new(1, 5), TC::new(3, 3), TC::new(5, 6)])
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        assert!(verify::positions_match_relative(&rec.positions, &plan));
    }

    #[test]
    fn hfirst_reconstruction_recovers_xfirst_die() {
        use coremap_mesh::{RoutingDiscipline, Topology};
        let topo = Topology::builtin("skylake-xcc-xfirst").unwrap().clone();
        let plan = coremap_mesh::FloorplanBuilder::from_topology(topo)
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct_disciplined(
            &obs,
            plan.dim(),
            RoutingDiscipline::HorizontalFirst,
            SolveOptions::default(),
        )
        .unwrap();
        assert!(verify::positions_match(&rec.positions, &plan));
        assert!(obs.paths.iter().all(|p| verify::explains_path_with(
            &rec.positions,
            p,
            plan.dim(),
            RoutingDiscipline::HorizontalFirst
        )));
    }

    #[test]
    fn wrong_discipline_hypothesis_fails_loudly_or_inconsistently() {
        use coremap_mesh::{RoutingDiscipline, Topology};
        // X-then-Y trace fed to the paper's Y-then-X model: either the
        // alignment classes collapse into a contradiction, or the placement
        // cannot replay the observations — both eliminate the hypothesis.
        let topo = Topology::builtin("skylake-xcc-xfirst").unwrap().clone();
        let plan = coremap_mesh::FloorplanBuilder::from_topology(topo)
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        match reconstruct(&obs, plan.dim()) {
            Err(_) => {}
            Ok(rec) => {
                assert!(!obs.paths.iter().all(|p| verify::explains_path_with(
                    &rec.positions,
                    p,
                    plan.dim(),
                    RoutingDiscipline::VerticalFirst
                )));
            }
        }
    }

    #[test]
    fn positions_are_pairwise_distinct() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TC::new(2, 2))
            .build()
            .unwrap();
        let obs = ObservationSet::synthetic(&plan);
        let rec = reconstruct(&obs, plan.dim()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &p in &rec.positions {
            assert!(seen.insert(p), "duplicate position {p}");
        }
    }
}
