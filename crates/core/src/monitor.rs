//! PMON programming helpers: the monitoring side of the measurement tool.
//!
//! Every interaction with the uncore goes through MSRs, mirroring the
//! paper's root-privileged monitor. A CHA bank has four counters, so ring
//! monitoring (4 directions) and LLC-lookup monitoring are armed as separate
//! configurations, as on real hardware.

use coremap_mesh::Direction;
use coremap_uncore::msr::{counter, counter_ctl, unit_ctl, UNIT_CTL_FREEZE, UNIT_CTL_RESET};
use coremap_uncore::{ChannelCounts, MsrError, RingClass, UncoreEvent};

use crate::harden::Harden;
use crate::MachineBackend;

/// Programs all CHA banks to count the four BL-ring ingress directions:
/// counter 0/1 = vertical up/down, counter 2/3 = horizontal left/right
/// (the paper's configuration, Sec. II-B).
///
/// # Errors
///
/// Propagates MSR access failures (e.g. missing root privileges).
pub fn arm_ring<T: MachineBackend>(machine: &mut T) -> Result<(), MsrError> {
    arm_ring_on(machine, RingClass::Bl)
}

/// Programs all CHA banks to count the four ingress directions of the given
/// ring class (the ring-choice ablation monitors AD instead of BL).
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn arm_ring_on<T: MachineBackend>(machine: &mut T, ring: RingClass) -> Result<(), MsrError> {
    for cha in 0..machine.cha_count() {
        machine.write_msr(
            counter_ctl(cha, 0),
            UncoreEvent::from_ingress_label_on(ring, Direction::Up).encode(),
        )?;
        machine.write_msr(
            counter_ctl(cha, 1),
            UncoreEvent::from_ingress_label_on(ring, Direction::Down).encode(),
        )?;
        machine.write_msr(
            counter_ctl(cha, 2),
            UncoreEvent::from_ingress_label_on(ring, Direction::Left).encode(),
        )?;
        machine.write_msr(
            counter_ctl(cha, 3),
            UncoreEvent::from_ingress_label_on(ring, Direction::Right).encode(),
        )?;
    }
    Ok(())
}

/// Programs counter 0 of all CHA banks to count LLC lookups.
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn arm_llc_lookup<T: MachineBackend>(machine: &mut T) -> Result<(), MsrError> {
    for cha in 0..machine.cha_count() {
        machine.write_msr(counter_ctl(cha, 0), UncoreEvent::LlcLookup.encode())?;
    }
    Ok(())
}

/// Resets all counters of all CHA banks (and unfreezes them).
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn reset_all<T: MachineBackend>(machine: &mut T) -> Result<(), MsrError> {
    for cha in 0..machine.cha_count() {
        machine.write_msr(unit_ctl(cha), UNIT_CTL_RESET)?;
    }
    Ok(())
}

/// Freezes all CHA banks.
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn freeze_all<T: MachineBackend>(machine: &mut T) -> Result<(), MsrError> {
    for cha in 0..machine.cha_count() {
        machine.write_msr(unit_ctl(cha), UNIT_CTL_FREEZE)?;
    }
    Ok(())
}

/// Reads the four ring counters of `cha` as armed by [`arm_ring`].
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn read_ring<T: MachineBackend>(machine: &T, cha: usize) -> Result<ChannelCounts, MsrError> {
    Ok(ChannelCounts {
        llc_lookup: 0,
        up: machine.read_msr(counter(cha, 0))?,
        down: machine.read_msr(counter(cha, 1))?,
        left: machine.read_msr(counter(cha, 2))?,
        right: machine.read_msr(counter(cha, 3))?,
    })
}

/// Reads the LLC-lookup counter of `cha` as armed by [`arm_llc_lookup`].
///
/// # Errors
///
/// Propagates MSR access failures.
pub fn read_llc_lookup<T: MachineBackend>(machine: &T, cha: usize) -> Result<u64, MsrError> {
    machine.read_msr(counter(cha, 0))
}

/// [`read_ring`] under a hardening policy: each of the four counters is
/// read median-of-k with MSR retry, so a dropped or jittered readout is
/// absorbed instead of silently corrupting the channel counts.
///
/// # Errors
///
/// Propagates MSR access failures once retries are exhausted.
pub fn read_ring_with<T: MachineBackend>(
    machine: &T,
    cha: usize,
    harden: &mut Harden,
) -> Result<ChannelCounts, MsrError> {
    Ok(ChannelCounts {
        llc_lookup: 0,
        up: harden.counter(|| machine.read_msr(counter(cha, 0)))?,
        down: harden.counter(|| machine.read_msr(counter(cha, 1)))?,
        left: harden.counter(|| machine.read_msr(counter(cha, 2)))?,
        right: harden.counter(|| machine.read_msr(counter(cha, 3)))?,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
    use coremap_uncore::{MachineConfig, PhysAddr, XeonMachine};

    fn machine() -> XeonMachine {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        XeonMachine::new(plan, MachineConfig::default())
    }

    #[test]
    fn arm_reset_read_cycle() {
        let mut m = machine();
        arm_ring(&mut m).unwrap();
        reset_all(&mut m).unwrap();
        m.write_line(OsCoreId::new(0), PhysAddr::new(0x11140));
        m.read_line(OsCoreId::new(13), PhysAddr::new(0x11140));
        let any: u64 = (0..m.cha_count())
            .map(|c| read_ring(&m, c).unwrap().ring_total())
            .sum();
        assert!(any > 0);
        reset_all(&mut m).unwrap();
        let any: u64 = (0..m.cha_count())
            .map(|c| read_ring(&m, c).unwrap().ring_total())
            .sum();
        assert_eq!(any, 0);
    }

    #[test]
    fn llc_lookup_counting() {
        let mut m = machine();
        arm_llc_lookup(&mut m).unwrap();
        reset_all(&mut m).unwrap();
        let pa = PhysAddr::new(0x2_2240);
        let home = m.home_of(pa);
        m.write_line(OsCoreId::new(1), pa);
        assert_eq!(read_llc_lookup(&m, home.index()).unwrap(), 1);
    }

    #[test]
    fn unprivileged_monitor_fails() {
        let mut m = machine();
        m.set_privileged(false);
        assert_eq!(arm_ring(&mut m), Err(MsrError::PermissionDenied));
    }

    #[test]
    fn freeze_blocks_counting_until_reset() {
        let mut m = machine();
        arm_ring(&mut m).unwrap();
        reset_all(&mut m).unwrap();
        freeze_all(&mut m).unwrap();
        m.write_line(OsCoreId::new(0), PhysAddr::new(0x3_0000));
        m.read_line(OsCoreId::new(9), PhysAddr::new(0x3_0000));
        let any: u64 = (0..m.cha_count())
            .map(|c| read_ring(&m, c).unwrap().ring_total())
            .sum();
        assert_eq!(any, 0);
    }
}
