//! Step 2: inter-tile traffic generation and monitoring (paper Sec. II-B).
//!
//! For every ordered pair of usable tiles, a directed cache-line transfer
//! stream is driven across the mesh and the ingress ring counters of every
//! observable CHA are recorded:
//!
//! * **core → core**: the source thread repeatedly writes a line homed at
//!   the sink's slice; the sink thread repeatedly reads it. After a warm-up
//!   transfer the steady state is one dirty-forward per iteration, source
//!   tile → sink tile.
//! * **LLC-only tile → core**: the core streams read misses out of the
//!   LLC-only slice's eviction set, producing directed slice → core
//!   transfers (LLC-only tiles cannot host threads, so they can only ever
//!   be sources; Sec. II-B case 4).
//!
//! Observations are *partial*: only tiles with active CHAs report, only
//! ingress is visible, vertical labels are truthful, horizontal labels are
//! scrambled by the odd-column flip and carry direction ambiguity.

use coremap_mesh::{ChaId, OsCoreId};
use coremap_obs as obs;
use coremap_uncore::ChannelCounts;
use serde::{Deserialize, Serialize};

use crate::cha_map::ChaMapping;
use crate::eviction::{self, SliceEvictionSet};
use crate::harden::Harden;
use crate::monitor;
use crate::{MachineBackend, MapError};

/// Truthful vertical travel direction derived from the `up`/`down` ingress
/// labels (paper Sec. II-C.3: vertical constraints use the real direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VerticalDir {
    /// Traffic travelled toward row 0.
    Up,
    /// Traffic travelled toward the last row.
    Down,
}

/// One path observation: which CHAs saw which kind of ingress while a
/// directed `source → sink` stream ran.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathObservation {
    /// Source tile (CHA ID space).
    pub source: ChaId,
    /// Sink tile (CHA ID space).
    pub sink: ChaId,
    /// CHAs that received vertical ingress, with the (truthful) direction.
    pub vertical: Vec<(ChaId, VerticalDir)>,
    /// CHAs that received horizontal ingress. The left/right labels are
    /// direction-ambiguous and therefore not recorded.
    pub horizontal: Vec<ChaId>,
}

impl PathObservation {
    /// Whether any channel activity was observed at all.
    pub fn is_empty(&self) -> bool {
        self.vertical.is_empty() && self.horizontal.is_empty()
    }
}

/// The complete observation set feeding the ILP reconstruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationSet {
    /// Number of active CHAs (tile nodes to place).
    pub n_cha: usize,
    /// All recorded path observations.
    pub paths: Vec<PathObservation>,
}

impl ObservationSet {
    /// Generates the *ideal* observation set for a floorplan directly from
    /// the routing rules — the noise-free limit of the measurement campaign
    /// (used by tests and the ILP benchmarks; the real pipeline measures
    /// through [`observe_all`]).
    ///
    /// For every ordered pair of active CHAs whose sink tile has an enabled
    /// core (LLC-only tiles can only be sources), the route under the
    /// floorplan topology's routing discipline is traced and every hop
    /// landing on an observable tile becomes a vertical (with truthful
    /// direction) or horizontal (direction dropped) observation.
    pub fn synthetic(plan: &coremap_mesh::Floorplan) -> ObservationSet {
        use coremap_mesh::route::route_with;
        use coremap_mesh::Direction;

        let discipline = plan.topology().routing();

        let chas: Vec<ChaId> = plan.chas().collect();
        let mut paths = Vec::new();
        for &src in &chas {
            for &sink in &chas {
                if src == sink {
                    continue;
                }
                // Sinks must host a worker thread.
                if !plan.tile(plan.coord_of_cha(sink)).kind().has_core() {
                    continue;
                }
                let r = route_with(
                    plan.coord_of_cha(src),
                    plan.coord_of_cha(sink),
                    plan.dim(),
                    discipline,
                );
                let mut vertical = Vec::new();
                let mut horizontal = Vec::new();
                for ev in r.events() {
                    let Some(cha) = plan.tile(ev.tile).kind().cha() else {
                        continue; // disabled / IMC / system tile: invisible
                    };
                    match ev.true_direction {
                        Direction::Up => vertical.push((cha, VerticalDir::Up)),
                        Direction::Down => vertical.push((cha, VerticalDir::Down)),
                        _ => horizontal.push(cha),
                    }
                }
                paths.push(PathObservation {
                    source: src,
                    sink,
                    vertical,
                    horizontal,
                });
            }
        }
        ObservationSet {
            n_cha: chas.len(),
            paths,
        }
    }
}

/// Collects counters from all CHAs and thresholds them into a
/// [`PathObservation`].
fn collect_observation<T: MachineBackend>(
    machine: &T,
    source: ChaId,
    sink: ChaId,
    threshold: u64,
    harden: &mut Harden,
) -> Result<PathObservation, MapError> {
    let mut vertical = Vec::new();
    let mut horizontal = Vec::new();
    for cha in 0..machine.cha_count() {
        let c: ChannelCounts = monitor::read_ring_with(machine, cha, harden)?;
        if c.vertical() >= threshold {
            let dir = if c.up >= c.down {
                VerticalDir::Up
            } else {
                VerticalDir::Down
            };
            vertical.push((ChaId::new(cha as u16), dir));
        }
        if c.horizontal() >= threshold {
            horizontal.push(ChaId::new(cha as u16));
        }
    }
    Ok(PathObservation {
        source,
        sink,
        vertical,
        horizontal,
    })
}

/// Drives a core→core ping-pong stream and observes the path.
///
/// # Errors
///
/// Propagates MSR errors.
pub fn observe_core_pair<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    src: OsCoreId,
    sink: OsCoreId,
    line_homed_at_sink: coremap_uncore::PhysAddr,
    iters: usize,
) -> Result<PathObservation, MapError> {
    observe_core_pair_with(
        machine,
        mapping,
        src,
        sink,
        line_homed_at_sink,
        iters,
        &mut Harden::default(),
    )
}

/// [`observe_core_pair`] under an explicit hardening policy.
///
/// # Errors
///
/// Propagates MSR errors once the policy's retries are exhausted.
pub fn observe_core_pair_with<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    src: OsCoreId,
    sink: OsCoreId,
    line_homed_at_sink: coremap_uncore::PhysAddr,
    iters: usize,
    harden: &mut Harden,
) -> Result<PathObservation, MapError> {
    obs::inc("core.traffic.core_pair_obs");
    machine.flush_caches();
    // Warm up: first write pulls the line from the sink-side home into the
    // source's L2 — opposite-direction traffic we must keep out of the
    // observation window.
    machine.write_line(src, line_homed_at_sink);
    harden.msr(|| monitor::arm_ring(machine))?;
    harden.msr(|| monitor::reset_all(machine))?;
    for _ in 0..iters {
        machine.read_line(sink, line_homed_at_sink);
        machine.write_line(src, line_homed_at_sink);
    }
    harden.msr(|| monitor::freeze_all(machine))?;
    collect_observation(
        machine,
        mapping.cha_of(src),
        mapping.cha_of(sink),
        iters as u64 / 2,
        harden,
    )
}

/// Drives an LLC-only-slice→core read-miss stream and observes the path.
///
/// # Errors
///
/// Propagates MSR errors.
pub fn observe_slice_to_core<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    set: &SliceEvictionSet,
    sink: OsCoreId,
    rounds: usize,
) -> Result<PathObservation, MapError> {
    observe_slice_to_core_with(machine, mapping, set, sink, rounds, &mut Harden::default())
}

/// [`observe_slice_to_core`] under an explicit hardening policy.
///
/// # Errors
///
/// Propagates MSR errors once the policy's retries are exhausted.
pub fn observe_slice_to_core_with<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    set: &SliceEvictionSet,
    sink: OsCoreId,
    rounds: usize,
    harden: &mut Harden,
) -> Result<PathObservation, MapError> {
    obs::inc("core.traffic.slice_obs");
    machine.flush_caches();
    harden.msr(|| monitor::arm_ring(machine))?;
    harden.msr(|| monitor::reset_all(machine))?;
    eviction::stream_reads(machine, sink, set, rounds);
    harden.msr(|| monitor::freeze_all(machine))?;
    let transfers = (rounds * set.lines.len()) as u64;
    collect_observation(
        machine,
        set.cha,
        mapping.cha_of(sink),
        transfers / 2,
        harden,
    )
}

/// Runs the full all-pairs observation campaign.
///
/// `pair_stride` subsamples the ordered core pairs (1 = all pairs); the
/// observation-budget ablation benchmark uses larger strides.
///
/// # Errors
///
/// Propagates MSR errors.
pub fn observe_all<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    sets: &[SliceEvictionSet],
    iters: usize,
    pair_stride: usize,
) -> Result<ObservationSet, MapError> {
    observe_all_with(
        machine,
        mapping,
        sets,
        iters,
        pair_stride,
        &mut Harden::default(),
    )
}

/// [`observe_all`] under an explicit hardening policy: every path
/// observation runs as its own stage, so a faulted `(src, sink)` pair is
/// re-observed in isolation instead of aborting (or restarting) the whole
/// campaign.
///
/// # Errors
///
/// As for [`observe_all`].
pub fn observe_all_with<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    sets: &[SliceEvictionSet],
    iters: usize,
    pair_stride: usize,
    harden: &mut Harden,
) -> Result<ObservationSet, MapError> {
    let cores = machine.os_cores();
    let mut paths = Vec::new();
    let mut pair_idx = 0usize;
    for &src in &cores {
        for &sink in &cores {
            if src == sink {
                continue;
            }
            pair_idx += 1;
            if pair_stride > 1 && !pair_idx.is_multiple_of(pair_stride) {
                continue;
            }
            let sink_cha = mapping.cha_of(sink);
            let set = &sets[sink_cha.index()];
            let line = set.lines[0];
            paths.push(
                harden.stage(|h| {
                    observe_core_pair_with(machine, mapping, src, sink, line, iters, h)
                })?,
            );
        }
    }
    // LLC-only tiles can only act as sources.
    for &llc in &mapping.llc_only {
        for &sink in &cores {
            let set = &sets[llc.index()];
            let rounds = (iters / set.lines.len()).max(2);
            paths.push(
                harden.stage(|h| {
                    observe_slice_to_core_with(machine, mapping, set, sink, rounds, h)
                })?,
            );
        }
    }
    Ok(ObservationSet {
        n_cha: machine.cha_count(),
        paths,
    })
}

/// Runs an observation campaign on the **AD (request) ring** instead of the
/// paper's BL data ring: every core streams read misses out of every other
/// tile's eviction set, producing directed `core -> home` request paths.
///
/// Two structural differences from the BL campaign make this an
/// interesting alternative (measured by the ring-choice ablation):
///
/// * LLC-only tiles can be traffic **sinks** (their slice homes lines) even
///   though they cannot host threads, inverting the BL campaign's
///   source-only restriction;
/// * the core-to-core ping-pong cannot be used — its AD messages flow in
///   both directions within one experiment (request one way, snoop the
///   other), violating the single-directed-path assumption, which is
///   precisely why the paper monitors the BL ring.
///
/// # Errors
///
/// Propagates MSR errors.
pub fn observe_all_ad<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    sets: &[SliceEvictionSet],
    rounds: usize,
) -> Result<ObservationSet, MapError> {
    observe_all_ad_with(machine, mapping, sets, rounds, &mut Harden::default())
}

/// [`observe_all_ad`] under an explicit hardening policy (stage-local
/// re-measurement per `(core, slice)` stream, as in [`observe_all_with`]).
///
/// # Errors
///
/// Propagates MSR errors.
pub fn observe_all_ad_with<T: MachineBackend>(
    machine: &mut T,
    mapping: &ChaMapping,
    sets: &[SliceEvictionSet],
    rounds: usize,
    harden: &mut Harden,
) -> Result<ObservationSet, MapError> {
    let cores = machine.os_cores();
    let mut paths = Vec::new();
    for &src in &cores {
        let src_cha = mapping.cha_of(src);
        for set in sets {
            if set.cha == src_cha {
                continue;
            }
            paths.push(harden.stage(|h| {
                obs::inc("core.traffic.ad_obs");
                machine.flush_caches();
                h.msr(|| monitor::arm_ring_on(machine, coremap_uncore::RingClass::Ad))?;
                h.msr(|| monitor::reset_all(machine))?;
                eviction::stream_reads(machine, src, set, rounds);
                h.msr(|| monitor::freeze_all(machine))?;
                let transfers = (rounds * set.lines.len()) as u64;
                // Requests flow from the reading core toward the home slice.
                collect_observation(machine, src_cha, set.cha, transfers / 2, h)
            })?);
        }
    }
    Ok(ObservationSet {
        n_cha: machine.cha_count(),
        paths,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder, TileCoord};
    use coremap_uncore::{MachineConfig, PhysAddr, XeonMachine};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(plan: Floorplan) -> (XeonMachine, ChaMapping, Vec<SliceEvictionSet>) {
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sets = eviction::build_all_sets(&mut m, &mut rng, 4).unwrap();
        let mapping = crate::cha_map::discover(&mut m, &sets, 3).unwrap();
        (m, mapping, sets)
    }

    /// Picks a line homed at the sink's CHA.
    fn line_for(sets: &[SliceEvictionSet], cha: ChaId) -> PhysAddr {
        sets[cha.index()].lines[0]
    }

    #[test]
    fn same_column_pair_is_pure_vertical() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let truth = plan.clone();
        let (mut m, mapping, sets) = setup(plan);
        // Find two cores in the same column, different rows.
        let cores = m.os_cores();
        let (src, sink) = cores
            .iter()
            .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| {
                a != b && {
                    let ca = truth.coord_of_core(a);
                    let cb = truth.coord_of_core(b);
                    ca.col == cb.col && ca.row > cb.row
                }
            })
            .expect("same-column pair exists");
        let line = line_for(&sets, mapping.cha_of(sink));
        let obs = observe_core_pair(&mut m, &mapping, src, sink, line, 16).unwrap();
        assert!(obs.horizontal.is_empty(), "no horizontal movement expected");
        assert!(!obs.vertical.is_empty());
        // Source is below sink (larger row) so traffic moves up.
        for &(_, dir) in &obs.vertical {
            assert_eq!(dir, VerticalDir::Up);
        }
        // The sink itself must be among the vertical observers.
        assert!(obs.vertical.iter().any(|&(c, _)| c == mapping.cha_of(sink)));
    }

    #[test]
    fn cross_pair_observers_match_routing_rules() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let truth = plan.clone();
        let (mut m, mapping, sets) = setup(plan);
        let cores = m.os_cores();
        // A pair differing in both row and column.
        let (src, sink) = cores
            .iter()
            .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| {
                let ca = truth.coord_of_core(a);
                let cb = truth.coord_of_core(b);
                ca.row != cb.row && ca.col != cb.col
            })
            .unwrap();
        let line = line_for(&sets, mapping.cha_of(sink));
        let obs = observe_core_pair(&mut m, &mapping, src, sink, line, 16).unwrap();
        let sc = truth.coord_of_core(src);
        let kc = truth.coord_of_core(sink);
        // Vertical observers lie in the source column between the rows.
        for &(cha, _) in &obs.vertical {
            let c = truth.coord_of_cha(cha);
            assert_eq!(c.col, sc.col);
            assert!(c.row >= sc.row.min(kc.row) && c.row <= sc.row.max(kc.row));
        }
        // Horizontal observers lie in the sink row.
        for &cha in &obs.horizontal {
            let c = truth.coord_of_cha(cha);
            assert_eq!(c.row, kc.row);
        }
        // The sink sees horizontal ingress (it is in a different column).
        assert!(obs.horizontal.contains(&mapping.cha_of(sink)));
    }

    #[test]
    fn disabled_tiles_do_not_appear_in_observations() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(2, 1))
            .disable(TileCoord::new(3, 2))
            .build()
            .unwrap();
        let (mut m, mapping, sets) = setup(plan);
        let cores = m.os_cores();
        for &src in cores.iter().take(4) {
            for &sink in cores.iter().take(4) {
                if src == sink {
                    continue;
                }
                let line = line_for(&sets, mapping.cha_of(sink));
                let obs = observe_core_pair(&mut m, &mapping, src, sink, line, 12).unwrap();
                // All observers are valid CHA ids (< cha_count) by
                // construction; none may exceed the active count.
                for &(c, _) in &obs.vertical {
                    assert!(c.index() < m.cha_count());
                }
                assert!(!obs.is_empty(), "sink always observes ingress");
            }
        }
    }

    #[test]
    fn llc_only_source_observation_reaches_sink() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TileCoord::new(0, 3))
            .build()
            .unwrap();
        let truth = plan.clone();
        let (mut m, mapping, sets) = setup(plan);
        assert_eq!(mapping.llc_only.len(), 1);
        let llc = mapping.llc_only[0];
        let sink = m.os_cores()[5];
        let obs = observe_slice_to_core(&mut m, &mapping, &sets[llc.index()], sink, 3).unwrap();
        assert_eq!(obs.source, llc);
        let sink_cha = mapping.cha_of(sink);
        assert!(
            obs.vertical.iter().any(|&(c, _)| c == sink_cha) || obs.horizontal.contains(&sink_cha)
        );
        // Sanity: source and sink tiles really differ.
        assert_ne!(truth.coord_of_cha(llc), truth.coord_of_cha(sink_cha));
    }

    #[test]
    fn ad_campaign_paths_are_core_to_home_directed() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TileCoord::new(3, 2))
            .build()
            .unwrap();
        let truth = plan.clone();
        let (mut m, mapping, sets) = setup(plan);
        let obs = observe_all_ad(&mut m, &mapping, &sets, 3).unwrap();
        // One path per (core, other-cha) pair; LLC-only tiles appear as
        // sinks, impossible on the BL campaign.
        let n_core = m.core_count();
        let n_cha = m.cha_count();
        assert_eq!(obs.paths.len(), n_core * (n_cha - 1));
        let llc = mapping.llc_only[0];
        assert!(obs.paths.iter().any(|p| p.sink == llc));
        assert!(obs.paths.iter().all(|p| p.sink != p.source));
        // Observers obey the routing rules relative to ground truth.
        for p in obs.paths.iter().take(60) {
            let sc = truth.coord_of_cha(p.source);
            let kc = truth.coord_of_cha(p.sink);
            for &(cha, _) in &p.vertical {
                assert_eq!(truth.coord_of_cha(cha).col, sc.col);
            }
            for &cha in &p.horizontal {
                assert_eq!(truth.coord_of_cha(cha).row, kc.row);
            }
        }
    }

    #[test]
    fn observe_all_produces_expected_path_count() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TileCoord::new(2, 2))
            .build()
            .unwrap();
        let (mut m, mapping, sets) = setup(plan);
        let n = m.core_count();
        let obs = observe_all(&mut m, &mapping, &sets, 8, 1).unwrap();
        assert_eq!(obs.paths.len(), n * (n - 1) + n);
        assert_eq!(obs.n_cha, 28);
    }
}
