//! The measurement-target abstraction.
//!
//! The mapping methodology only needs a small set of primitives from the
//! machine under measurement; [`MapTarget`] names them. The workspace ships
//! one implementation — the simulated [`XeonMachine`] — but the trait is
//! the seam where a *real-hardware* backend plugs in:
//!
//! | trait method | bare-metal Linux implementation |
//! |---|---|
//! | `read_msr` / `write_msr` | `pread`/`pwrite` on `/dev/cpu/<n>/msr` (root) |
//! | `os_cores` / `core_count` | `/sys/devices/system/cpu` enumeration (SMT folded) |
//! | `cha_count` | uncore discovery MSRs / `CAPID` fuse registers |
//! | `grid_dim` | per-model die constant ([Tam et al., ISSCC'18]) |
//! | `l2_geometry` | `CPUID` leaf 4 |
//! | `address_space` | usable physical memory from `/proc/iomem` |
//! | `write_line` / `read_line` | pinned worker thread issuing volatile accesses to a hugepage-backed buffer with known physical addresses |
//! | `flush_caches` | `wbinvd` (kernel helper) or a `clflush` sweep |
//!
//! All higher layers (`eviction`, `cha_map`, `traffic`, `calibrate`,
//! [`CoreMapper`](crate::CoreMapper)) are generic over this trait.

use coremap_mesh::{GridDim, OsCoreId};
use coremap_uncore::{MsrError, PhysAddr, XeonMachine};

/// A machine the mapping pipeline can measure.
///
/// Semantics the pipeline relies on (all satisfied by real Xeons and by the
/// simulator):
///
/// * MSR access requires privilege and reaches the per-CHA PMON banks laid
///   out as in [`coremap_uncore::msr`];
/// * `write_line`/`read_line` behave like pinned user-level accesses under
///   an invalidation-based coherence protocol over a mesh with
///   dimension-order routing;
/// * `flush_caches` returns every line to its home slice so experiment
///   windows do not leak into each other.
pub trait MapTarget {
    /// Reads a model-specific register.
    ///
    /// # Errors
    ///
    /// [`MsrError`] on missing privilege or unmapped addresses.
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError>;

    /// Writes a model-specific register.
    ///
    /// # Errors
    ///
    /// [`MsrError`] on missing privilege, unmapped or read-only addresses.
    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError>;

    /// Number of active CHAs.
    fn cha_count(&self) -> usize;

    /// Number of OS-visible cores.
    fn core_count(&self) -> usize;

    /// OS core IDs, ascending.
    fn os_cores(&self) -> Vec<OsCoreId>;

    /// The die's tile-grid dimensions (known per CPU model).
    fn grid_dim(&self) -> GridDim;

    /// L2 geometry `(sets, ways)`.
    fn l2_geometry(&self) -> (usize, usize);

    /// Size of the usable physical address space in bytes.
    fn address_space(&self) -> u64;

    /// A worker pinned to `core` stores to `pa`.
    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr);

    /// A worker pinned to `core` loads from `pa`.
    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr);

    /// Writes back and invalidates all caches.
    fn flush_caches(&mut self);

    /// Number of cache operations issued so far — a diagnostic; backends
    /// that do not track it may keep the default.
    fn op_count(&self) -> u64 {
        0
    }
}

impl MapTarget for XeonMachine {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        XeonMachine::read_msr(self, addr)
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        XeonMachine::write_msr(self, addr, value)
    }

    fn cha_count(&self) -> usize {
        XeonMachine::cha_count(self)
    }

    fn core_count(&self) -> usize {
        XeonMachine::core_count(self)
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        XeonMachine::os_cores(self)
    }

    fn grid_dim(&self) -> GridDim {
        XeonMachine::grid_dim(self)
    }

    fn l2_geometry(&self) -> (usize, usize) {
        XeonMachine::l2_geometry(self)
    }

    fn address_space(&self) -> u64 {
        XeonMachine::address_space(self)
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        XeonMachine::write_line(self, core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        XeonMachine::read_line(self, core, pa);
    }

    fn flush_caches(&mut self) {
        XeonMachine::flush_caches(self);
    }

    fn op_count(&self) -> u64 {
        XeonMachine::op_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};
    use coremap_uncore::MachineConfig;

    fn as_target<T: MapTarget>(t: &T) -> (usize, usize) {
        (t.cha_count(), t.core_count())
    }

    #[test]
    fn xeon_machine_implements_the_trait() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let machine = XeonMachine::new(plan, MachineConfig::default());
        assert_eq!(as_target(&machine), (28, 28));
    }

    #[test]
    fn trait_msr_access_matches_inherent() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let machine = XeonMachine::new(plan, MachineConfig::default());
        let via_trait = MapTarget::read_msr(&machine, coremap_uncore::msr::MSR_PPIN).unwrap();
        let direct = machine.read_msr(coremap_uncore::msr::MSR_PPIN).unwrap();
        assert_eq!(via_trait, direct);
    }
}
