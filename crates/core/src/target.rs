//! Legacy name of the machine-backend seam.
//!
//! The measurement-target trait moved to [`crate::backend`] (defined in
//! [`coremap_uncore::backend`] next to its reference implementation) and
//! was renamed to [`MachineBackend`] when the record/replay and
//! fault-injection backends joined it. This module keeps the old path and
//! the old `MapTarget` name alive for downstream code; new code should use
//! [`crate::backend::MachineBackend`].

pub use crate::backend::MachineBackend;

/// Deprecated alias of [`MachineBackend`], kept for source compatibility.
pub use crate::backend::MachineBackend as MapTarget;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::MapTarget;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};
    use coremap_uncore::{MachineConfig, XeonMachine};

    // The alias must keep accepting impls and generic bounds written
    // against the old name.
    fn as_target<T: MapTarget>(t: &T) -> (usize, usize) {
        (t.cha_count(), t.core_count())
    }

    #[test]
    fn alias_still_names_the_backend_trait() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let machine = XeonMachine::new(plan, MachineConfig::default());
        assert_eq!(as_target(&machine), (28, 28));
    }
}
