//! Slice eviction set construction (paper Sec. II-A).
//!
//! A *slice eviction set* is a group of cache lines that (a) map to the same
//! L2 set and (b) are homed by the same LLC slice. Accessing more lines than
//! the L2 associativity forces targeted evictions toward that one slice.
//!
//! The undisclosed slice hash is probed exactly as the paper describes: two
//! worker threads pinned to different cores hammer the same line; the CHA
//! whose `LLC_LOOKUP` count spikes is the line's home. Lines are then
//! bucketed by `(L2 set, home slice)` until every slice owns a full set.

use std::collections::HashMap;

use coremap_mesh::{ChaId, OsCoreId};
use coremap_obs as obs;
use coremap_uncore::PhysAddr;
use rand::Rng;

use crate::harden::Harden;
use crate::monitor;
use crate::{MachineBackend, MapError};

/// A slice eviction set: `ways + 1` lines sharing one L2 set, all homed at
/// [`cha`](Self::cha).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceEvictionSet {
    /// The LLC slice (CHA) this set targets.
    pub cha: ChaId,
    /// The L2 set index the lines share.
    pub l2_set: usize,
    /// The member lines (`ways + 1` of them).
    pub lines: Vec<PhysAddr>,
}

/// Determines the home slice of `pa` by paired-writer contention: the two
/// probe cores alternately write the line while `LLC_LOOKUP` is counted at
/// every CHA; the argmax is the home (paper Sec. II-A).
///
/// # Errors
///
/// Propagates MSR failures.
///
/// # Panics
///
/// Panics if the machine has fewer than two cores.
pub fn probe_home<T: MachineBackend>(
    machine: &mut T,
    pa: PhysAddr,
    iters: usize,
) -> Result<ChaId, MapError> {
    probe_home_with(machine, pa, iters, &mut Harden::default())
}

/// [`probe_home`] under an explicit hardening policy: MSR accesses are
/// retried and the `LLC_LOOKUP` readouts taken median-of-k, so a dropped
/// counter read cannot silently corrupt the argmax.
///
/// # Errors
///
/// Propagates MSR failures once the policy's retries are exhausted.
///
/// # Panics
///
/// Panics if the machine has fewer than two cores.
pub fn probe_home_with<T: MachineBackend>(
    machine: &mut T,
    pa: PhysAddr,
    iters: usize,
    harden: &mut Harden,
) -> Result<ChaId, MapError> {
    let cores = machine.os_cores();
    assert!(cores.len() >= 2, "need two cores for contention probing");
    let (a, b) = (cores[0], cores[1]);
    harden.msr(|| monitor::arm_llc_lookup(machine))?;
    harden.msr(|| monitor::reset_all(machine))?;
    for _ in 0..iters {
        machine.write_line(a, pa);
        machine.write_line(b, pa);
    }
    let mut best = (0u64, 0usize);
    for cha in 0..machine.cha_count() {
        let count = harden.counter(|| monitor::read_llc_lookup(machine, cha))?;
        if count > best.0 {
            best = (count, cha);
        }
    }
    Ok(ChaId::new(best.1 as u16))
}

/// Collects a slice eviction set for every active CHA.
///
/// Random lines are sampled from the machine's physical address space, their
/// homes probed, and buckets `(home, L2 set)` filled until each CHA owns a
/// bucket with `ways + 1` lines.
///
/// # Errors
///
/// [`MapError::EvictionSetBudget`] if the sampling budget is exhausted
/// before every slice has a full set; MSR errors propagate.
pub fn build_all_sets<T: MachineBackend, R: Rng>(
    machine: &mut T,
    rng: &mut R,
    probe_iters: usize,
) -> Result<Vec<SliceEvictionSet>, MapError> {
    build_all_sets_with(machine, rng, probe_iters, &mut Harden::default())
}

/// [`build_all_sets`] under an explicit hardening policy: each home probe
/// runs with stage-local re-measurement, so one faulted probe is re-run in
/// isolation instead of aborting the whole construction.
///
/// # Errors
///
/// As for [`build_all_sets`].
#[allow(clippy::expect_used)]
pub fn build_all_sets_with<T: MachineBackend, R: Rng>(
    machine: &mut T,
    rng: &mut R,
    probe_iters: usize,
    harden: &mut Harden,
) -> Result<Vec<SliceEvictionSet>, MapError> {
    let (sets, ways) = machine.l2_geometry();
    let need = ways + 1;
    let n_cha = machine.cha_count();
    let space = machine.address_space();

    // All candidate lines are drawn from one fixed L2 set: the eviction-set
    // definition requires same-set lines anyway, so pre-filtering by set
    // bits makes every probed line a useful sample.
    let target_set = rng.gen_range(0..sets);
    let set_groups = (space >> 6) / sets as u64;

    // cha -> lines collected so far (all share `target_set`).
    let mut buckets: HashMap<usize, Vec<PhysAddr>> = HashMap::new();
    let mut done: Vec<Option<SliceEvictionSet>> = vec![None; n_cha];
    let mut remaining = n_cha;
    // Coupon-collector expectation is about `need * n_cha` samples; factor
    // 40 leaves a wide margin for hash skew and noise.
    let budget = need * n_cha * 40;

    for _ in 0..budget {
        if remaining == 0 {
            break;
        }
        let group = rng.gen_range(0..set_groups);
        let line_idx = group * sets as u64 + target_set as u64;
        let pa = PhysAddr::new(line_idx << 6);
        obs::inc("core.eviction.samples");
        let home = harden.stage(|h| probe_home_with(machine, pa, probe_iters, h))?;
        if done[home.index()].is_some() {
            obs::inc("core.eviction.redundant");
            continue;
        }
        let bucket = buckets.entry(home.index()).or_default();
        if bucket.contains(&pa) {
            obs::inc("core.eviction.redundant");
            continue;
        }
        bucket.push(pa);
        if bucket.len() == need {
            done[home.index()] = Some(SliceEvictionSet {
                cha: home,
                l2_set: target_set,
                lines: bucket.clone(),
            });
            obs::inc("core.eviction.sets_built");
            remaining -= 1;
        }
    }

    if remaining > 0 {
        // Report *every* incomplete slice with its collected-line count;
        // fault-rate triage needs the full shape of the failure, not just
        // the first victim.
        let incomplete: Vec<(usize, usize)> = done
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(c, _)| (c, buckets.get(&c).map_or(0, Vec::len)))
            .collect();
        return Err(MapError::EvictionSetBudget { need, incomplete });
    }

    // audit: allow(panic-safety): infallible — the `remaining > 0` guard above already returned EvictionSetBudget if any slot stayed None
    Ok(done.into_iter().map(|s| s.expect("all complete")).collect())
}

/// Thrashes an eviction set from `core`: repeatedly dirty-writes all member
/// lines, forcing evictions (and refills) between the core's L2 and the
/// target slice.
pub fn thrash<T: MachineBackend>(
    machine: &mut T,
    core: OsCoreId,
    set: &SliceEvictionSet,
    rounds: usize,
) {
    for _ in 0..rounds {
        for &pa in &set.lines {
            machine.write_line(core, pa);
        }
    }
}

/// Streams clean reads of the set's lines from `core`: every access misses
/// once the set overflows the L2, pulling data from the target slice to the
/// core without generating writeback traffic — a *directed* slice-to-core
/// transfer stream usable with LLC-only tiles as sources.
pub fn stream_reads<T: MachineBackend>(
    machine: &mut T,
    core: OsCoreId,
    set: &SliceEvictionSet,
    rounds: usize,
) {
    for _ in 0..rounds {
        for &pa in &set.lines {
            machine.read_line(core, pa);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};
    use coremap_uncore::{MachineConfig, XeonMachine};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn machine() -> XeonMachine {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        XeonMachine::new(plan, MachineConfig::default())
    }

    #[test]
    fn probe_home_matches_ground_truth() {
        let mut m = machine();
        for i in [0u64, 7, 100, 9999] {
            let pa = PhysAddr::new(i * 64);
            let probed = probe_home(&mut m, pa, 8).unwrap();
            assert_eq!(probed, m.home_of(pa), "line {i}");
        }
    }

    #[test]
    fn eviction_sets_cover_every_slice() {
        let mut m = machine();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sets = build_all_sets(&mut m, &mut rng, 4).unwrap();
        assert_eq!(sets.len(), m.cha_count());
        let (l2_sets, ways) = m.l2_geometry();
        for s in &sets {
            assert_eq!(s.lines.len(), ways + 1);
            for &pa in &s.lines {
                assert_eq!(m.home_of(pa), s.cha, "line homed elsewhere");
                assert_eq!((pa.line().value() as usize) & (l2_sets - 1), s.l2_set);
            }
        }
    }

    #[test]
    fn budget_error_reports_every_incomplete_slice() {
        use crate::backend::{FaultPlan, FaultyBackend};
        // Every counter read dropped to 0: the argmax degenerates to CHA0,
        // so only CHA0's bucket ever fills and the budget exhausts with all
        // other slices empty. The error must list each of them.
        let plan = FaultPlan::none(1).with_counter_drop_prob(1.0);
        let mut m = FaultyBackend::new(machine(), plan);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = build_all_sets(&mut m, &mut rng, 4).unwrap_err();
        match &err {
            MapError::EvictionSetBudget { need, incomplete } => {
                assert_eq!(incomplete.len(), m.cha_count() - 1);
                assert!(incomplete.iter().all(|&(_, have)| have < *need));
                let rendered = format!("{err}");
                assert!(rendered.contains("27 slice(s)"), "{rendered}");
                assert!(rendered.contains("CHA1 0/"), "{rendered}");
                assert!(rendered.contains("CHA27 0/"), "{rendered}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn probe_survives_noise() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut m = XeonMachine::new(
            plan,
            MachineConfig {
                noise: coremap_uncore::NoiseModel::light(),
                ..MachineConfig::default()
            },
        );
        // With 16 contention iterations the home's 32 lookups dominate the
        // ~1.6 stray lookups light noise adds.
        for i in [3u64, 42] {
            let pa = PhysAddr::new(i * 64);
            let probed = probe_home(&mut m, pa, 16).unwrap();
            assert_eq!(probed, m.home_of(pa));
        }
    }
}
