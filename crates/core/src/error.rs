//! Mapping pipeline errors.

use std::fmt;

use coremap_uncore::MsrError;

/// Error from the core-location mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// MSR access failed (typically: no root privileges).
    Msr(MsrError),
    /// Could not collect enough same-set lines for one or more LLC slices
    /// within the sampling budget. Every incomplete slice is listed so
    /// fault-rate triage sees the full shape of the failure, not just the
    /// first victim.
    EvictionSetBudget {
        /// Lines a complete set needs (`ways + 1`).
        need: usize,
        /// `(cha, collected)` for every slice whose set stayed incomplete.
        incomplete: Vec<(usize, usize)>,
    },
    /// A core's minimum-traffic slice did not beat the runner-up by the
    /// required margin; the measurement was too noisy to threshold.
    AmbiguousChaMapping {
        /// OS core index with the ambiguous match.
        core: usize,
        /// Margin the winner achieved over the runner-up.
        margin: u64,
        /// Margin the threshold required.
        required: u64,
    },
    /// Two cores both matched the same slice as their co-located tile — a
    /// distinct failure from a thin margin: the measurement thresholded
    /// cleanly but contradicts the one-core-per-tile invariant, so *both*
    /// involved cores are suspect.
    DuplicateChaClaim {
        /// OS core index whose measurement raised the conflict.
        core: usize,
        /// OS core index that claimed the slice earlier in the scan.
        prior_core: usize,
        /// The doubly-claimed CHA.
        cha: usize,
    },
    /// CHA mapping was handed an empty slice-eviction-set list: there is
    /// no slice to attribute traffic to (a zero-CHA machine model).
    NoSlices,
    /// The ILP reconstruction failed.
    Ilp(coremap_ilp::SolveError),
    /// Observations are mutually inconsistent (should not happen on a
    /// conforming machine; indicates extreme noise).
    InconsistentObservations,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Msr(e) => write!(f, "msr access failed: {e}"),
            MapError::EvictionSetBudget { need, incomplete } => {
                write!(
                    f,
                    "eviction sets incomplete within budget for {} slice(s):",
                    incomplete.len()
                )?;
                for (cha, collected) in incomplete {
                    write!(f, " CHA{cha} {collected}/{need}")?;
                }
                Ok(())
            }
            MapError::AmbiguousChaMapping {
                core,
                margin,
                required,
            } => write!(
                f,
                "cpu{core} has no unambiguous co-located slice \
                 (margin {margin} < required {required})"
            ),
            MapError::DuplicateChaClaim {
                core,
                prior_core,
                cha,
            } => write!(
                f,
                "cpu{core} and cpu{prior_core} both claim CHA{cha} as their \
                 co-located slice"
            ),
            MapError::NoSlices => {
                f.write_str("no slice eviction sets to measure against (zero-CHA machine?)")
            }
            MapError::Ilp(e) => write!(f, "ilp reconstruction failed: {e}"),
            MapError::InconsistentObservations => {
                f.write_str("traffic observations are mutually inconsistent")
            }
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Msr(e) => Some(e),
            MapError::Ilp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MsrError> for MapError {
    fn from(e: MsrError) -> Self {
        MapError::Msr(e)
    }
}

impl From<coremap_ilp::SolveError> for MapError {
    fn from(e: coremap_ilp::SolveError) -> Self {
        MapError::Ilp(e)
    }
}
