//! Mapping pipeline errors.

use std::fmt;

use coremap_uncore::MsrError;

/// Error from the core-location mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// MSR access failed (typically: no root privileges).
    Msr(MsrError),
    /// Could not collect enough same-set lines for some LLC slice within the
    /// sampling budget.
    EvictionSetBudget {
        /// CHA whose eviction set stayed incomplete.
        cha: usize,
        /// Lines still missing.
        missing: usize,
    },
    /// A core matched no slice (or several) as its co-located tile; the
    /// measurement was too noisy to threshold.
    AmbiguousChaMapping {
        /// OS core index with the ambiguous match.
        core: usize,
    },
    /// The ILP reconstruction failed.
    Ilp(coremap_ilp::SolveError),
    /// Observations are mutually inconsistent (should not happen on a
    /// conforming machine; indicates extreme noise).
    InconsistentObservations,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Msr(e) => write!(f, "msr access failed: {e}"),
            MapError::EvictionSetBudget { cha, missing } => write!(
                f,
                "eviction set for CHA{cha} incomplete ({missing} lines missing) within budget"
            ),
            MapError::AmbiguousChaMapping { core } => {
                write!(f, "cpu{core} has no unambiguous co-located slice")
            }
            MapError::Ilp(e) => write!(f, "ilp reconstruction failed: {e}"),
            MapError::InconsistentObservations => {
                f.write_str("traffic observations are mutually inconsistent")
            }
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Msr(e) => Some(e),
            MapError::Ilp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MsrError> for MapError {
    fn from(e: MsrError) -> Self {
        MapError::Msr(e)
    }
}

impl From<coremap_ilp::SolveError> for MapError {
    fn from(e: coremap_ilp::SolveError) -> Self {
        MapError::Ilp(e)
    }
}
