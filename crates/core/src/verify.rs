//! Ground-truth verification of reconstructed maps.
//!
//! Reconstruction is exact up to the ambiguities the paper documents:
//!
//! * the horizontal orientation is unknowable (odd-column label flip), so a
//!   map may be the mirror image of the truth;
//! * fully vacant rows/columns cannot be pinned (Sec. II-D) — and the
//!   tightest-map objective compacts them away — so sparse dies are checked
//!   for *relative* correctness: the recovered row order, column order and
//!   all equalities must be isomorphic to the truth.

use coremap_mesh::{ChaId, Floorplan, TileCoord};

use crate::CoreMap;

fn truth_positions(plan: &Floorplan) -> Vec<TileCoord> {
    plan.chas().map(|cha| plan.coord_of_cha(cha)).collect()
}

/// Exact positional match of per-CHA positions against the floorplan,
/// allowing the horizontal mirror image.
pub fn positions_match(positions: &[TileCoord], plan: &Floorplan) -> bool {
    let truth = truth_positions(plan);
    if positions.len() != truth.len() {
        return false;
    }
    let w = plan.dim().cols;
    let direct = positions == truth.as_slice();
    let mirrored = positions
        .iter()
        .zip(&truth)
        .all(|(p, t)| p.row == t.row && p.col == w - 1 - t.col);
    direct || mirrored
}

/// Relative (order-isomorphic) match: all pairwise row relations equal the
/// truth's, and all pairwise column relations equal the truth's up to one
/// global mirror.
pub fn positions_match_relative(positions: &[TileCoord], plan: &Floorplan) -> bool {
    let truth = truth_positions(plan);
    relative_match(positions, &truth)
}

/// Relative match between two arbitrary placements (used to compare two
/// reconstructions of the same machine as well).
pub fn relative_match(a: &[TileCoord], b: &[TileCoord]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    // Rows: orders must match exactly (vertical orientation is absolute).
    for i in 0..n {
        for j in 0..n {
            let ra = a[i].row.cmp(&a[j].row);
            let rb = b[i].row.cmp(&b[j].row);
            if ra != rb {
                return false;
            }
        }
    }
    // Columns: match directly or with all comparisons flipped.
    let col_ok = |flip: bool| {
        (0..n).all(|i| {
            (0..n).all(|j| {
                let ca = a[i].col.cmp(&a[j].col);
                let cb = b[i].col.cmp(&b[j].col);
                if flip {
                    ca == cb.reverse()
                } else {
                    ca == cb
                }
            })
        })
    };
    col_ok(false) || col_ok(true)
}

/// Exact match of a [`CoreMap`] against ground truth (positions per CHA,
/// the OS-core mapping and LLC-only set), mirror-tolerant.
pub fn matches_exactly(map: &CoreMap, plan: &Floorplan) -> bool {
    let positions: Vec<TileCoord> = plan.chas().map(|cha| map.coord_of_cha(cha)).collect();
    positions_match(&positions, plan)
        && map.core_to_cha() == plan.core_to_cha()
        && map.llc_only() == plan.llc_only_chas()
}

/// Relative match of a [`CoreMap`] against ground truth.
pub fn matches_relative(map: &CoreMap, plan: &Floorplan) -> bool {
    if map.cha_count() != plan.cha_count() {
        return false;
    }
    let positions: Vec<TileCoord> = plan.chas().map(|cha| map.coord_of_cha(cha)).collect();
    positions_match_relative(&positions, plan)
        && map.core_to_cha() == plan.core_to_cha()
        && map.llc_only() == plan.llc_only_chas()
}

/// Fraction of CHA pairs whose relative placement (row relation and column
/// relation up to the better of the two mirror orientations) matches the
/// truth — the accuracy metric used by the observation-budget ablation.
pub fn pairwise_accuracy(positions: &[TileCoord], plan: &Floorplan) -> f64 {
    let truth = truth_positions(plan);
    let n = truth.len().min(positions.len());
    if n < 2 {
        return 1.0;
    }
    let score = |flip: bool| {
        let mut good = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let row_ok =
                    positions[i].row.cmp(&positions[j].row) == truth[i].row.cmp(&truth[j].row);
                let ca = positions[i].col.cmp(&positions[j].col);
                let cb = truth[i].col.cmp(&truth[j].col);
                let col_ok = if flip { ca == cb.reverse() } else { ca == cb };
                if row_ok && col_ok {
                    good += 1;
                }
            }
        }
        good as f64 / total as f64
    };
    score(false).max(score(true))
}

/// Checks that a recovered placement *explains every observation*: replaying
/// each observed path's dimension-order route over the recovered positions
/// must reproduce every observed ingress event at the observing tile
/// (vertical events with truthful direction, horizontal events by
/// presence). Extra predicted events are allowed — the paper's ILP uses
/// only positive observations, so placements that *would* have produced
/// additional events on hidden tiles remain admissible.
///
/// This is the correct acceptance criterion for sparse dies, where disabled
/// tiles hide enough of the mesh that several placements are legitimately
/// consistent with all measurements (the paper's Sec. II-D failure modes).
pub fn observations_consistent(
    positions: &[TileCoord],
    obs: &crate::ObservationSet,
    dim: coremap_mesh::GridDim,
) -> bool {
    obs.paths.iter().all(|p| explains_path(positions, p, dim))
}

/// Per-path variant of [`observations_consistent`]: whether the placement
/// explains one observation. The degradation pass of
/// [`harden`](crate::harden) uses this to isolate the inconsistent
/// minority instead of rejecting the whole set.
pub fn explains_path(
    positions: &[TileCoord],
    p: &crate::PathObservation,
    dim: coremap_mesh::GridDim,
) -> bool {
    explains_path_with(
        positions,
        p,
        dim,
        coremap_mesh::RoutingDiscipline::VerticalFirst,
    )
}

/// [`explains_path`] generalized over the routing discipline: replays the
/// observed path under `discipline` instead of the paper's Y-then-X rule.
/// Topology hypothesis selection uses this to score a candidate placement
/// against a hypothesis whose interconnect routes differently.
pub fn explains_path_with(
    positions: &[TileCoord],
    p: &crate::PathObservation,
    dim: coremap_mesh::GridDim,
    discipline: coremap_mesh::RoutingDiscipline,
) -> bool {
    use crate::traffic::VerticalDir;
    use coremap_mesh::route::route_with;
    use coremap_mesh::Direction;
    use std::collections::BTreeSet;

    let tile_of = |cha: ChaId| positions[cha.index()];
    let cha_at = |coord: TileCoord| -> Option<usize> { positions.iter().position(|&p| p == coord) };

    let r = route_with(tile_of(p.source), tile_of(p.sink), dim, discipline);
    let mut pred_vertical: BTreeSet<(usize, VerticalDir)> = BTreeSet::new();
    let mut pred_horizontal: BTreeSet<usize> = BTreeSet::new();
    for ev in r.events() {
        let Some(cha) = cha_at(ev.tile) else { continue };
        match ev.true_direction {
            Direction::Up => {
                pred_vertical.insert((cha, VerticalDir::Up));
            }
            Direction::Down => {
                pred_vertical.insert((cha, VerticalDir::Down));
            }
            _ => {
                pred_horizontal.insert(cha);
            }
        }
    }
    let vertical_ok = p
        .vertical
        .iter()
        .all(|&(c, d)| pred_vertical.contains(&(c.index(), d)));
    let horizontal_ok = p
        .horizontal
        .iter()
        .all(|&c| pred_horizontal.contains(&c.index()));
    vertical_ok && horizontal_ok
}

/// CHAs that the map places adjacent (1 hop) to the given CHA which are
/// *not* adjacent in the truth, plus vice versa — the neighbour error used
/// by the thermal-verification experiment (paper Sec. V-D).
pub fn neighbor_errors(map: &CoreMap, plan: &Floorplan, cha: ChaId) -> usize {
    let truth_pos = plan.coord_of_cha(cha);
    let map_pos = map.coord_of_cha(cha);
    let mut errors = 0;
    for other in plan.chas() {
        if other == cha {
            continue;
        }
        let t_adj = truth_pos.hop_distance(plan.coord_of_cha(other)) == 1;
        let m_adj = map_pos.hop_distance(map.coord_of_cha(other)) == 1;
        if t_adj != m_adj {
            errors += 1;
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};

    #[test]
    fn truth_matches_itself() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let truth = truth_positions(&plan);
        assert!(positions_match(&truth, &plan));
        assert!(positions_match_relative(&truth, &plan));
        assert_eq!(pairwise_accuracy(&truth, &plan), 1.0);
    }

    #[test]
    fn mirror_matches() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let w = plan.dim().cols;
        let mirrored: Vec<TileCoord> = truth_positions(&plan)
            .into_iter()
            .map(|t| TileCoord::new(t.row, w - 1 - t.col))
            .collect();
        assert!(positions_match(&mirrored, &plan));
        assert!(positions_match_relative(&mirrored, &plan));
    }

    #[test]
    fn vertical_flip_does_not_match() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let h = plan.dim().rows;
        let flipped: Vec<TileCoord> = truth_positions(&plan)
            .into_iter()
            .map(|t| TileCoord::new(h - 1 - t.row, t.col))
            .collect();
        assert!(!positions_match(&flipped, &plan));
        assert!(!positions_match_relative(&flipped, &plan));
    }

    #[test]
    fn swapped_tiles_do_not_match() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut perturbed = truth_positions(&plan);
        perturbed.swap(0, 9);
        assert!(!positions_match(&perturbed, &plan));
        assert!(!positions_match_relative(&perturbed, &plan));
        assert!(pairwise_accuracy(&perturbed, &plan) < 1.0);
    }

    #[test]
    fn compacted_sparse_map_matches_relatively_only() {
        // Truth occupies rows {0,2,4} of column 0; a tightest-map output
        // compacts them to {0,1,2}.
        let t = DieTemplate::SkylakeXcc;
        let keep = [
            coremap_mesh::TileCoord::new(0, 0),
            coremap_mesh::TileCoord::new(2, 0),
            coremap_mesh::TileCoord::new(4, 0),
        ];
        let disable = t
            .core_capable_positions()
            .iter()
            .copied()
            .filter(|p| !keep.contains(p));
        let plan = FloorplanBuilder::new(t)
            .disable_all(disable)
            .build()
            .unwrap();
        let compacted = vec![
            TileCoord::new(0, 0),
            TileCoord::new(1, 0),
            TileCoord::new(2, 0),
        ];
        assert!(!positions_match(&compacted, &plan));
        assert!(positions_match_relative(&compacted, &plan));
    }
}
