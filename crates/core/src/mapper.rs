//! End-to-end mapping pipeline driver.

use coremap_mesh::Ppin;
use coremap_obs as obs;
// audit: allow(backend-discipline): the PPIN identity read is the one raw MSR the pipeline issues itself — it doubles as the privilege probe and keys results to the physical chip
use coremap_uncore::msr::MSR_PPIN;
use coremap_uncore::RingClass;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cha_map;
use crate::eviction;
use crate::harden::{self, Harden, MapQuality, RobustnessConfig};
use crate::traffic;
use crate::{CoreMap, MachineBackend, MapError, ObservationSet};

/// Intermediate results of a mapping run, exposed so callers can study or
/// persist the raw measurements (e.g. re-solve offline with a different
/// formulation) without re-measuring.
#[derive(Debug, Clone)]
pub struct MapDiagnostics {
    /// Every path observation fed to the ILP.
    pub observations: ObservationSet,
    /// Branch-and-bound statistics of the reconstruction solve.
    pub ilp_stats: coremap_ilp::SolveStats,
    /// Objective value of the tightest map.
    pub ilp_objective: f64,
    /// Total machine operations the measurement campaign issued.
    pub machine_ops: u64,
    /// Quality grade of the returned map (degradation ladder: exact →
    /// relative → partial) and the bookkeeping behind it.
    pub quality: MapQuality,
}

/// Tunables of the mapping pipeline.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Contention iterations per slice-hash probe (Sec. II-A).
    pub probe_iters: usize,
    /// Eviction-set thrash rounds per `(core, slice)` test (Sec. II-A).
    pub thrash_rounds: usize,
    /// Ping-pong iterations per path observation (Sec. II-B).
    pub ping_iters: usize,
    /// Subsampling stride over ordered core pairs (1 = observe all pairs;
    /// larger strides feed the observation-budget ablation).
    pub pair_stride: usize,
    /// Seed for the random line sampling.
    pub seed: u64,
    /// Use the literal per-tile/per-path ILP formulation instead of the
    /// class-merged one (slow; for fidelity experiments).
    pub full_formulation: bool,
    /// Which mesh ring class to observe. The paper monitors BL (data);
    /// [`RingClass::Ad`] switches step 2 to the request-ring campaign of
    /// [`traffic::observe_all_ad`]. [`RingClass::Iv`] carries no directed
    /// pattern usable for mapping and is rejected.
    pub ring: RingClass,
    /// Fault-tolerance policy: MSR retry, redundant counter sampling,
    /// stage-local re-measurement and graceful ILP degradation
    /// ([`harden`](crate::harden)).
    pub robustness: RobustnessConfig,
    /// Branch-and-bound worker threads for the reconstruction ILP
    /// (`<= 1` means serial). Solutions are byte-identical at any count.
    pub ilp_workers: usize,
    /// Dual-simplex warm starts across branch-and-bound nodes. On by
    /// default; disabling selects the cold revised engine (for ablations).
    pub ilp_warm_start: bool,
    /// Topology hypotheses to test in step 3. Empty (the default) keeps the
    /// paper-literal reconstruction against the machine's own grid; when
    /// non-empty, step 3 instead runs
    /// [`topology_select::select`](crate::topology_select::select) over the
    /// set and keeps the first surviving hypothesis, recording every
    /// verdict in [`MapQuality`].
    pub topology_hypotheses: Vec<coremap_mesh::Topology>,
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self {
            probe_iters: 8,
            thrash_rounds: 3,
            ping_iters: 16,
            pair_stride: 1,
            seed: 0x6d61_7070,
            full_formulation: false,
            ring: RingClass::Bl,
            robustness: RobustnessConfig::default(),
            ilp_workers: 1,
            ilp_warm_start: true,
            topology_hypotheses: Vec::new(),
        }
    }
}

/// The complete three-step mapping methodology (paper Sec. II).
///
/// ```
/// use coremap_mesh::{DieTemplate, FloorplanBuilder};
/// use coremap_uncore::{MachineConfig, XeonMachine};
/// use coremap_core::CoreMapper;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
/// let mut machine = XeonMachine::new(plan, MachineConfig::default());
/// let map = CoreMapper::new().map(&mut machine)?;
/// println!("{}", map.render());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreMapper {
    config: MapperConfig,
}

impl CoreMapper {
    /// A mapper with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mapper with explicit configuration.
    pub fn with_config(config: MapperConfig) -> Self {
        Self { config }
    }

    /// A mapper with the aggressive fault-tolerance profile
    /// ([`RobustnessConfig::hardened`]) and otherwise default tunables —
    /// the configuration for flaky production machines.
    pub fn hardened() -> Self {
        Self {
            config: MapperConfig {
                robustness: RobustnessConfig::hardened(),
                ..MapperConfig::default()
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Runs the full pipeline against a machine and returns the recovered
    /// [`CoreMap`] (keyed by PPIN).
    ///
    /// # Errors
    ///
    /// Any [`MapError`]: missing privileges, probing budget exhaustion,
    /// ambiguous measurements under extreme noise, or ILP infeasibility.
    pub fn map<T: MachineBackend>(&self, machine: &mut T) -> Result<CoreMap, MapError> {
        self.map_with_diagnostics(machine).map(|(map, _)| map)
    }

    /// Runs the pipeline and additionally returns the intermediate
    /// measurement and solver data ([`MapDiagnostics`]).
    ///
    /// # Errors
    ///
    /// As for [`map`](Self::map).
    pub fn map_with_diagnostics<T: MachineBackend>(
        &self,
        machine: &mut T,
    ) -> Result<(CoreMap, MapDiagnostics), MapError> {
        let mut hard = Harden::new(self.config.robustness.clone());

        // Root check up front: the PPIN read doubles as the privilege test
        // and keys the result to the physical chip. A transient fault here
        // must not kill the whole run, so it retries like any other MSR
        // access; a *persistent* denial still surfaces as the same error.
        // audit: allow(backend-discipline): deliberate raw read — see the import note; all PMON traffic goes through `monitor`
        let ppin = Ppin::new(hard.msr(|| machine.read_msr(MSR_PPIN))?);

        // Step 1a: slice eviction sets via LLC-lookup probing.
        let sets = {
            let _span = obs::time("core.map.stage.eviction");
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
            eviction::build_all_sets_with(machine, &mut rng, self.config.probe_iters, &mut hard)?
        };

        // Step 1b: OS core ID <-> CHA ID mapping.
        let mapping = {
            let _span = obs::time("core.map.stage.cha_map");
            cha_map::discover_with(machine, &sets, self.config.thrash_rounds, &mut hard)?
        };

        // Step 2: all-pairs traffic observation on the configured ring.
        let observations = {
            let _span = obs::time("core.map.stage.traffic");
            match self.config.ring {
                RingClass::Bl => traffic::observe_all_with(
                    machine,
                    &mapping,
                    &sets,
                    self.config.ping_iters,
                    self.config.pair_stride,
                    &mut hard,
                )?,
                RingClass::Ad => traffic::observe_all_ad_with(
                    machine,
                    &mapping,
                    &sets,
                    (self.config.ping_iters / 8).max(2),
                    &mut hard,
                )?,
                RingClass::Iv => return Err(MapError::InconsistentObservations),
            }
        };

        let solve_opts = crate::ilp_model::SolveOptions {
            workers: self.config.ilp_workers,
            warm_start: self.config.ilp_warm_start,
        };

        // Step 3: ILP reconstruction. With a hypothesis set configured the
        // reconstruction runs once per candidate topology and the first
        // surviving hypothesis wins; otherwise the paper-literal path
        // reconstructs against the machine's own grid with graceful
        // degradation — an inconsistent minority of observations is
        // discarded and the solve repeated rather than aborting the
        // campaign.
        let (rec, quality, winning_dim, winning_topology) =
            if self.config.topology_hypotheses.is_empty() {
                let _span = obs::time("core.map.stage.ilp");
                let (rec, quality) = harden::reconstruct_degrading(
                    &observations,
                    machine.grid_dim(),
                    self.config.full_formulation,
                    &self.config.robustness,
                    solve_opts,
                )?;
                (rec, quality, machine.grid_dim(), None)
            } else {
                let _span = obs::time("core.map.stage.topo_select");
                let selection = crate::topology_select::select(
                    &observations,
                    &self.config.topology_hypotheses,
                    solve_opts,
                );
                obs::add(
                    "topo.hypotheses.tested",
                    self.config.topology_hypotheses.len() as u64,
                );
                obs::add(
                    "topo.hypotheses.eliminated",
                    selection.scores.iter().filter(|s| !s.survives()).count() as u64,
                );
                let winner_name = selection.winner_name().map(str::to_owned);
                let (Some(idx), Some(rec)) = (selection.winner, selection.reconstruction) else {
                    return Err(MapError::InconsistentObservations);
                };
                let dim = self.config.topology_hypotheses[idx].dim();
                let mut quality = harden::grade(&observations, 0, 0, 0);
                quality.winning_topology = winner_name.clone();
                quality.hypothesis_scores = selection.scores;
                (rec, quality, dim, winner_name)
            };

        let mut map = CoreMap::new(
            winning_dim,
            rec.positions,
            mapping.core_to_cha,
            mapping.llc_only,
        )
        .with_ppin(ppin);
        if let Some(name) = winning_topology {
            map = map.with_topology_name(name);
        }
        let diagnostics = MapDiagnostics {
            observations,
            ilp_stats: rec.stats,
            ilp_objective: rec.objective,
            machine_ops: machine.op_count(),
            quality,
        };
        obs::add("core.machine.ops", diagnostics.machine_ops);
        Ok((map, diagnostics))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::verify;
    use coremap_mesh::{DieTemplate, FloorplanBuilder, TileCoord};
    use coremap_uncore::{MachineConfig, MsrError, NoiseModel, XeonMachine};

    #[test]
    fn maps_full_skx_die_exactly() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let truth = plan.clone();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let map = CoreMapper::new().map(&mut m).unwrap();
        assert!(verify::matches_exactly(&map, &truth));
        assert_eq!(map.ppin(), Some(MachineConfig::default().ppin));
    }

    #[test]
    fn maps_sparse_die_with_llc_only_tiles() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(0, 3))
            .disable(TileCoord::new(3, 2))
            .llc_only(TileCoord::new(2, 1))
            .llc_only(TileCoord::new(4, 5))
            .build()
            .unwrap();
        let truth = plan.clone();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let map = CoreMapper::new().map(&mut m).unwrap();
        assert!(verify::matches_relative(&map, &truth));
    }

    #[test]
    fn diagnostics_expose_measurement_campaign() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let (map, diag) = CoreMapper::new().map_with_diagnostics(&mut m).unwrap();
        // All-pairs campaign over 28 cores: n(n-1) paths.
        assert_eq!(diag.observations.paths.len(), 28 * 27);
        assert!(diag.ilp_stats.nodes >= 1);
        assert!(diag.machine_ops > 1000);
        // The observations must themselves validate the returned map.
        let positions: Vec<_> = (0..map.cha_count())
            .map(|i| map.coord_of_cha(coremap_mesh::ChaId::new(i as u16)))
            .collect();
        assert!(crate::verify::observations_consistent(
            &positions,
            &diag.observations,
            map.dim()
        ));
    }

    #[test]
    fn ad_ring_campaign_also_recovers_the_map() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .llc_only(TileCoord::new(2, 1))
            .disable(TileCoord::new(0, 3))
            .build()
            .unwrap();
        let truth = plan.clone();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let cfg = MapperConfig {
            ring: RingClass::Ad,
            ..MapperConfig::default()
        };
        let map = CoreMapper::with_config(cfg).map(&mut m).unwrap();
        assert!(verify::matches_relative(&map, &truth));
    }

    #[test]
    fn iv_ring_is_rejected() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let cfg = MapperConfig {
            ring: RingClass::Iv,
            ..MapperConfig::default()
        };
        assert!(CoreMapper::with_config(cfg).map(&mut m).is_err());
    }

    #[test]
    fn hypothesis_selection_identifies_the_true_topology() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let truth = plan.clone();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        let cfg = MapperConfig {
            topology_hypotheses: coremap_mesh::Topology::builtins()
                .iter()
                .map(|t| (*t).clone())
                .collect(),
            ..MapperConfig::default()
        };
        let (map, diag) = CoreMapper::with_config(cfg)
            .map_with_diagnostics(&mut m)
            .unwrap();
        assert_eq!(map.topology_name(), Some("skylake-xcc"));
        assert_eq!(
            diag.quality.winning_topology.as_deref(),
            Some("skylake-xcc")
        );
        assert_eq!(
            diag.quality.hypothesis_scores.len(),
            coremap_mesh::Topology::builtins().len()
        );
        // The wrong-geometry and wrong-discipline hypotheses are eliminated.
        assert!(diag
            .quality
            .hypothesis_scores
            .iter()
            .any(|s| s.name == "icelake-xcc" && !s.survives()));
        assert!(diag
            .quality
            .hypothesis_scores
            .iter()
            .any(|s| s.name == "ring-28" && !s.survives()));
        assert!(verify::matches_exactly(&map, &truth));
    }

    #[test]
    fn unprivileged_mapping_fails_cleanly() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        m.set_privileged(false);
        let err = CoreMapper::new().map(&mut m).unwrap_err();
        assert_eq!(err, MapError::Msr(MsrError::PermissionDenied));
    }

    #[test]
    fn mapping_survives_light_noise() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(2, 2))
            .build()
            .unwrap();
        let truth = plan.clone();
        let mut m = XeonMachine::new(
            plan,
            MachineConfig {
                noise: NoiseModel::light(),
                noise_seed: 5,
                ..MachineConfig::default()
            },
        );
        let cfg = MapperConfig {
            probe_iters: 16,
            thrash_rounds: 6,
            ping_iters: 32,
            ..MapperConfig::default()
        };
        let map = CoreMapper::with_config(cfg).map(&mut m).unwrap();
        assert!(verify::matches_relative(&map, &truth));
    }
}
