//! The reconstructed core map.

use std::fmt;

use coremap_mesh::{ChaId, DieTemplate, GridDim, OsCoreId, Ppin, TileCoord};
use serde::{Deserialize, Serialize};

/// A fully reconstructed core map of one CPU instance: physical grid
/// positions for every active CHA, the OS-core ↔ CHA mapping and the set of
/// LLC-only tiles — everything an attacker needs to plan location-based
/// attacks (paper Sec. IV), keyed by the chip's PPIN so the root-privileged
/// mapping runs once per physical chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMap {
    ppin: Option<Ppin>,
    dim: GridDim,
    template: Option<DieTemplate>,
    topology: Option<String>,
    positions: Vec<TileCoord>,
    core_to_cha: Vec<ChaId>,
    llc_only: Vec<ChaId>,
}

impl CoreMap {
    /// Assembles a core map from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a position lies outside `dim` or an index is inconsistent.
    pub fn new(
        dim: GridDim,
        positions: Vec<TileCoord>,
        core_to_cha: Vec<ChaId>,
        llc_only: Vec<ChaId>,
    ) -> Self {
        for &p in &positions {
            assert!(dim.contains(p), "position {p} outside {dim}");
        }
        for &cha in core_to_cha.iter().chain(llc_only.iter()) {
            assert!(cha.index() < positions.len(), "{cha} has no position");
        }
        Self {
            ppin: None,
            dim,
            template: None,
            topology: None,
            positions,
            core_to_cha,
            llc_only,
        }
    }

    /// Attaches the machine's PPIN.
    pub fn with_ppin(mut self, ppin: Ppin) -> Self {
        self.ppin = Some(ppin);
        self
    }

    /// Attaches the die template (enables IMC tiles in renderings).
    pub fn with_template(mut self, template: DieTemplate) -> Self {
        self.template = Some(template);
        self
    }

    /// Records which topology the map was reconstructed under (the winning
    /// hypothesis when topology selection ran, or the declared die).
    pub fn with_topology_name(mut self, name: impl Into<String>) -> Self {
        self.topology = Some(name.into());
        self
    }

    /// Name of the topology the map was reconstructed under, if recorded.
    pub fn topology_name(&self) -> Option<&str> {
        self.topology.as_deref()
    }

    /// PPIN of the mapped chip, if recorded.
    pub fn ppin(&self) -> Option<Ppin> {
        self.ppin
    }

    /// Grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Number of active CHAs.
    pub fn cha_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of enabled cores.
    pub fn core_count(&self) -> usize {
        self.core_to_cha.len()
    }

    /// Recovered position of a CHA.
    ///
    /// # Panics
    ///
    /// Panics if `cha` is out of range.
    pub fn coord_of_cha(&self, cha: ChaId) -> TileCoord {
        self.positions[cha.index()]
    }

    /// Recovered position of an OS core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn coord_of_core(&self, core: OsCoreId) -> TileCoord {
        self.coord_of_cha(self.cha_of_core(core))
    }

    /// CHA co-located with an OS core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cha_of_core(&self, core: OsCoreId) -> ChaId {
        self.core_to_cha[core.index()]
    }

    /// OS core co-located with a CHA, if the tile has one.
    pub fn core_of_cha(&self, cha: ChaId) -> Option<OsCoreId> {
        self.core_to_cha
            .iter()
            .position(|&c| c == cha)
            .map(|i| OsCoreId::new(i as u16))
    }

    /// The recovered OS-core → CHA mapping, indexed by OS core.
    pub fn core_to_cha(&self) -> Vec<ChaId> {
        self.core_to_cha.clone()
    }

    /// LLC-only CHAs (ascending).
    pub fn llc_only(&self) -> Vec<ChaId> {
        self.llc_only.clone()
    }

    /// The CHA mapped at `coord`, if any.
    pub fn cha_at(&self, coord: TileCoord) -> Option<ChaId> {
        self.positions
            .iter()
            .position(|&p| p == coord)
            .map(|i| ChaId::new(i as u16))
    }

    /// Hop distance between two cores on the recovered map.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of range.
    pub fn hop_distance(&self, a: OsCoreId, b: OsCoreId) -> usize {
        self.coord_of_core(a).hop_distance(self.coord_of_core(b))
    }

    /// Cores on tiles directly adjacent (1 hop) to `core`, with the
    /// direction from `core` toward each neighbour — the placement oracle
    /// of the thermal covert channel (paper Sec. IV).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn neighbor_cores(&self, core: OsCoreId) -> Vec<(OsCoreId, coremap_mesh::Direction)> {
        let pos = self.coord_of_core(core);
        pos.neighbors(self.dim)
            .filter_map(|(dir, coord)| {
                self.cha_at(coord)
                    .and_then(|cha| self.core_of_cha(cha))
                    .map(|c| (c, dir))
            })
            .collect()
    }

    /// Cores vertically adjacent to `core` (the strongest thermal coupling
    /// direction: a Xeon core tile is a horizontally long rectangle, paper
    /// Sec. V-A).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn vertical_neighbor_cores(&self, core: OsCoreId) -> Vec<OsCoreId> {
        self.neighbor_cores(core)
            .into_iter()
            .filter(|&(_, d)| d.is_vertical())
            .map(|(c, _)| c)
            .collect()
    }

    /// A canonical textual pattern key: two instances share a key exactly
    /// when their recovered maps are identical (tile kinds, CHA IDs and OS
    /// core IDs at every grid position) — the notion of "location pattern"
    /// behind paper Table II.
    pub fn canonical_pattern(&self) -> String {
        self.render_internal(false)
    }

    /// Human-readable grid rendering in the style of paper Fig. 4/5: each
    /// tile shows `os_core/cha`, `LLC/cha`, `IMC` or `.` (unmapped).
    pub fn render(&self) -> String {
        self.render_internal(true)
    }

    fn render_internal(&self, pretty: bool) -> String {
        use fmt::Write;
        let imc: &[TileCoord] = self.template.map(|t| t.imc_positions()).unwrap_or_default();
        let sys: &[TileCoord] = self
            .template
            .map(|t| t.system_positions())
            .unwrap_or_default();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.dim.rows);
        for row in 0..self.dim.rows {
            let mut line = Vec::with_capacity(self.dim.cols);
            for col in 0..self.dim.cols {
                let coord = TileCoord::new(row, col);
                let cell = if let Some(cha) = self.cha_at(coord) {
                    match self.core_of_cha(cha) {
                        Some(core) => format!("{}/{}", core.index(), cha.index()),
                        None => format!("LLC/{}", cha.index()),
                    }
                } else if imc.contains(&coord) {
                    "IMC".to_owned()
                } else if sys.contains(&coord) {
                    "SYS".to_owned()
                } else {
                    ".".to_owned()
                };
                line.push(cell);
            }
            cells.push(line);
        }
        let width = if pretty {
            cells
                .iter()
                .flat_map(|l| l.iter().map(|c| c.len()))
                .max()
                .unwrap_or(1)
        } else {
            0
        };
        let mut out = String::new();
        for line in cells {
            for (i, cell) in line.iter().enumerate() {
                if i > 0 {
                    out.push_str(if pretty { "  " } else { "|" });
                }
                if pretty {
                    let _ = write!(out, "{cell:>width$}");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::Direction;

    fn sample_map() -> CoreMap {
        // 2x3 layout:
        //   cpu0/0  cpu1/2  LLC/4
        //   cpu2/1  cpu3/3  .
        CoreMap::new(
            GridDim::new(2, 3),
            vec![
                TileCoord::new(0, 0),
                TileCoord::new(1, 0),
                TileCoord::new(0, 1),
                TileCoord::new(1, 1),
                TileCoord::new(0, 2),
            ],
            vec![ChaId::new(0), ChaId::new(2), ChaId::new(1), ChaId::new(3)],
            vec![ChaId::new(4)],
        )
    }

    #[test]
    fn lookups_are_consistent() {
        let m = sample_map();
        assert_eq!(m.cha_count(), 5);
        assert_eq!(m.core_count(), 4);
        assert_eq!(m.coord_of_core(OsCoreId::new(1)), TileCoord::new(0, 1));
        assert_eq!(m.cha_at(TileCoord::new(1, 1)), Some(ChaId::new(3)));
        assert_eq!(m.cha_at(TileCoord::new(1, 2)), None);
        assert_eq!(m.core_of_cha(ChaId::new(4)), None);
    }

    #[test]
    fn neighbor_queries() {
        let m = sample_map();
        let n = m.neighbor_cores(OsCoreId::new(0));
        // cpu0 at (0,0): neighbours are cpu2 below and cpu1 right.
        assert!(n.contains(&(OsCoreId::new(2), Direction::Down)));
        assert!(n.contains(&(OsCoreId::new(1), Direction::Right)));
        assert_eq!(n.len(), 2);
        assert_eq!(
            m.vertical_neighbor_cores(OsCoreId::new(0)),
            vec![OsCoreId::new(2)]
        );
        assert_eq!(m.hop_distance(OsCoreId::new(0), OsCoreId::new(3)), 2);
    }

    #[test]
    fn canonical_pattern_distinguishes_layouts() {
        let a = sample_map();
        let mut positions = vec![
            TileCoord::new(0, 0),
            TileCoord::new(1, 0),
            TileCoord::new(0, 1),
            TileCoord::new(1, 1),
            TileCoord::new(1, 2), // LLC tile moved
        ];
        let b = CoreMap::new(
            GridDim::new(2, 3),
            std::mem::take(&mut positions),
            vec![ChaId::new(0), ChaId::new(2), ChaId::new(1), ChaId::new(3)],
            vec![ChaId::new(4)],
        );
        assert_ne!(a.canonical_pattern(), b.canonical_pattern());
        assert_eq!(a.canonical_pattern(), a.clone().canonical_pattern());
    }

    #[test]
    fn render_contains_all_tiles() {
        let m = sample_map();
        let r = m.render();
        assert!(r.contains("0/0"));
        assert!(r.contains("LLC/4"));
        assert!(r.contains('.'));
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample_map().with_ppin(Ppin::new(99));
        let json = serde_json::to_string(&m).unwrap();
        let back: CoreMap = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.ppin(), Some(Ppin::new(99)));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_position_rejected() {
        let _ = CoreMap::new(
            GridDim::new(2, 2),
            vec![TileCoord::new(5, 5)],
            vec![],
            vec![],
        );
    }
}
