//! Measurement hardening: the fault-tolerance layer of the pipeline.
//!
//! PR 1 gave the pipeline a fault *injector* (`backend::FaultyBackend`);
//! this module gives it the matching *recovery* discipline, mirroring how
//! interconnect-measurement work survives on real, noisy machines:
//!
//! 1. **Bounded MSR retry** ([`Harden::msr`]): a transient
//!    [`MsrError::PermissionDenied`] (racing `msr` module reload, revoked
//!    capability) is retried up to [`RobustnessConfig::msr_attempts`] times
//!    with deterministic, seeded backoff instead of killing a ~350k-op
//!    campaign through `?`-propagation.
//! 2. **Redundant counter sampling** ([`Harden::counter`]): PMON readouts
//!    are taken median-of-k, absorbing dropped (zeroed) counters and
//!    additive jitter. Counters are frozen/stable during readout, so extra
//!    samples are pure re-reads.
//! 3. **Stage-local re-measurement** ([`Harden::stage`]): a failed
//!    `(core, slice)` test or path observation is re-run in isolation
//!    rather than restarting step 1 from scratch.
//! 4. **Graceful degradation** ([`reconstruct_degrading`]): when the
//!    recovered placement does not explain every observation — or the ILP
//!    is outright infeasible — the minority-inconsistent
//!    [`PathObservation`](crate::PathObservation)s are discarded and the
//!    ILP re-solved, yielding a *relative* or *partial* map with a
//!    [`MapQuality`] report instead of an error.
//!
//! **Determinism contract**: every retry/backoff/resample decision draws
//! from one ChaCha8 stream seeded by
//! [`RobustnessConfig::backoff_seed`], and the simulated backoff is a
//! counted step (exported as `core.retry.backoff_steps`), not a wall-clock
//! sleep. Identical inputs therefore produce byte-identical deterministic
//! metrics (`core.retry.*`, `core.harden.*`), which
//! `tests/metrics_determinism.rs` pins.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use coremap_mesh::{ChaId, GridDim};
use coremap_obs as obs;
use coremap_uncore::MsrError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::ilp_model::{self, Reconstruction, UnionFind};
use crate::traffic::{ObservationSet, VerticalDir};
use crate::verify;
use crate::MapError;

/// Tunables of the fault-tolerance layer, carried by
/// [`MapperConfig`](crate::MapperConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Attempts per MSR operation (1 = no retry). Retries only run after a
    /// failure, so raising this costs nothing on a clean machine.
    pub msr_attempts: usize,
    /// Seed of the backoff/resample decision stream.
    pub backoff_seed: u64,
    /// PMON counter samples per readout; the median is returned (1 = single
    /// read). Odd values make the median unambiguous.
    pub counter_samples: usize,
    /// Extra in-isolation re-runs of a failed measurement unit (a slice
    /// probe, a `(core, slice)` test, a path observation) before its error
    /// propagates.
    pub stage_retries: usize,
    /// Discard-and-re-solve rounds step 3 may spend explaining away
    /// inconsistent observations (0 = solve once, never discard).
    pub degrade_rounds: usize,
    /// Ceiling on the fraction of path observations the degradation may
    /// discard before giving up.
    pub max_discard_fraction: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            msr_attempts: 3,
            backoff_seed: 0x6861_7264,
            counter_samples: 1,
            stage_retries: 2,
            degrade_rounds: 0,
            max_discard_fraction: 0.25,
        }
    }
}

impl RobustnessConfig {
    /// The full-recovery preset used by `--harden` and the robustness
    /// sweep: median-of-3 counter reads, deeper retry budgets and the
    /// degradation ladder enabled.
    pub fn hardened() -> Self {
        Self {
            msr_attempts: 4,
            counter_samples: 3,
            stage_retries: 3,
            degrade_rounds: 3,
            ..Self::default()
        }
    }

    /// Everything disabled: single attempts, single samples, no stage
    /// retries, no degradation — the pre-hardening pipeline, kept as the
    /// baseline of the robustness sweep and the zero-overhead pin.
    pub fn off() -> Self {
        Self {
            msr_attempts: 1,
            counter_samples: 1,
            stage_retries: 0,
            degrade_rounds: 0,
            ..Self::default()
        }
    }
}

/// Execution state of the hardening policy for one campaign: the config
/// plus the seeded decision stream. One instance is threaded through all
/// stages so draws stay reproducible.
#[derive(Debug, Clone)]
pub struct Harden {
    cfg: RobustnessConfig,
    rng: ChaCha8Rng,
}

impl Default for Harden {
    fn default() -> Self {
        Self::new(RobustnessConfig::default())
    }
}

impl Harden {
    /// Builds the policy state for `cfg`.
    pub fn new(cfg: RobustnessConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.backoff_seed);
        Self { cfg, rng }
    }

    /// The active configuration.
    pub fn config(&self) -> &RobustnessConfig {
        &self.cfg
    }

    /// Runs an MSR operation with bounded retry and seeded backoff.
    ///
    /// # Errors
    ///
    /// The last error once all attempts are exhausted.
    pub fn msr<T>(&mut self, mut op: impl FnMut() -> Result<T, MsrError>) -> Result<T, MsrError> {
        let attempts = self.cfg.msr_attempts.max(1);
        let mut last = MsrError::PermissionDenied;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = e;
                    if attempt + 1 < attempts {
                        obs::inc("core.retry.attempts");
                        // Exponential ceiling, seeded jitter; the steps are
                        // counted instead of slept so replays stay exact.
                        let ceiling = 1u64 << (attempt.min(16) + 1);
                        let steps = self.rng.gen_range(1..=ceiling);
                        obs::add("core.retry.backoff_steps", steps);
                    }
                }
            }
        }
        obs::inc("core.retry.exhausted");
        Err(last)
    }

    /// Reads a PMON counter median-of-k (each sample itself under MSR
    /// retry). With `counter_samples == 1` this is a plain retried read.
    ///
    /// # Errors
    ///
    /// Propagates the first sample whose retries are exhausted.
    pub fn counter(
        &mut self,
        mut read: impl FnMut() -> Result<u64, MsrError>,
    ) -> Result<u64, MsrError> {
        let k = self.cfg.counter_samples.max(1);
        if k == 1 {
            return self.msr(read);
        }
        let mut samples = Vec::with_capacity(k);
        for _ in 0..k {
            samples.push(self.msr(&mut read)?);
        }
        obs::add("core.harden.resamples", (k - 1) as u64);
        samples.sort_unstable();
        Ok(samples[samples.len() / 2])
    }

    /// Runs one measurement unit with stage-local re-measurement: on a
    /// transient failure the unit is re-run in isolation up to
    /// [`RobustnessConfig::stage_retries`] extra times instead of failing
    /// the whole campaign (and instead of restarting earlier steps).
    ///
    /// Persistent failures (every re-run fails) and systemic errors
    /// (budget exhaustion, solver failures) propagate unchanged.
    ///
    /// # Errors
    ///
    /// The last error once re-runs are exhausted.
    pub fn stage<T>(
        &mut self,
        mut run: impl FnMut(&mut Harden) -> Result<T, MapError>,
    ) -> Result<T, MapError> {
        let retries = self.cfg.stage_retries;
        let mut attempt = 0usize;
        loop {
            match run(self) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < retries && stage_retryable(&e) => {
                    attempt += 1;
                    obs::inc("core.harden.stage_retries");
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether re-running a measurement unit can plausibly clear the error:
/// transient MSR faults and noise-shaped measurement rejections, but not
/// systemic conditions like budget exhaustion or solver failures.
fn stage_retryable(e: &MapError) -> bool {
    matches!(
        e,
        MapError::Msr(_)
            | MapError::AmbiguousChaMapping { .. }
            | MapError::DuplicateChaClaim { .. }
    )
}

/// How much of the measurement campaign the returned map is backed by —
/// the degradation ladder of step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapFidelity {
    /// Every observation survived and is explained by the placement.
    Exact,
    /// Some observations were discarded as minority-inconsistent, but the
    /// survivors still constrain every CHA: relative placement is trusted.
    Relative,
    /// Some CHA lost all of its observations, or unexplained observations
    /// remain: the map is a best effort and the listed CHAs are
    /// low-confidence.
    Partial,
}

impl fmt::Display for MapFidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MapFidelity::Exact => "exact",
            MapFidelity::Relative => "relative",
            MapFidelity::Partial => "partial",
        })
    }
}

/// Quality report of a (possibly degraded) reconstruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapQuality {
    /// Where on the exact → relative → partial ladder the map landed.
    pub fidelity: MapFidelity,
    /// Path observations fed to step 3 (survivors + discarded).
    pub total_paths: usize,
    /// Observations discarded as minority-inconsistent.
    pub discarded_paths: usize,
    /// Surviving observations the final placement still fails to explain
    /// (non-zero only when the degradation budget ran out).
    pub unexplained_paths: usize,
    /// Discard-and-re-solve rounds spent.
    pub resolve_rounds: usize,
    /// CHAs left without any surviving observation — their placement is
    /// unconstrained guesswork.
    pub unconstrained_chas: Vec<ChaId>,
    /// Name of the topology hypothesis the map was reconstructed under,
    /// when hypothesis selection ran (empty on the paper-literal path).
    pub winning_topology: Option<String>,
    /// Per-hypothesis verdicts from topology selection, in the order the
    /// hypotheses were supplied (empty on the paper-literal path).
    pub hypothesis_scores: Vec<crate::topology_select::HypothesisScore>,
}

impl MapQuality {
    /// Whether any recovery action degraded the map below [`Exact`]
    /// fidelity.
    ///
    /// [`Exact`]: MapFidelity::Exact
    pub fn is_degraded(&self) -> bool {
        self.fidelity != MapFidelity::Exact
    }
}

impl fmt::Display for MapQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/{} paths kept",
            self.fidelity,
            self.total_paths - self.discarded_paths,
            self.total_paths
        )?;
        if self.unexplained_paths > 0 {
            write!(f, ", {} unexplained", self.unexplained_paths)?;
        }
        if !self.unconstrained_chas.is_empty() {
            write!(f, ", {} CHAs unconstrained", self.unconstrained_chas.len())?;
        }
        f.write_str(")")
    }
}

pub(crate) fn grade(
    kept: &ObservationSet,
    discarded: usize,
    unexplained: usize,
    resolve_rounds: usize,
) -> MapQuality {
    let mut covered = vec![false; kept.n_cha];
    for p in &kept.paths {
        covered[p.source.index()] = true;
        covered[p.sink.index()] = true;
        for &(k, _) in &p.vertical {
            covered[k.index()] = true;
        }
        for &k in &p.horizontal {
            covered[k.index()] = true;
        }
    }
    let unconstrained_chas: Vec<ChaId> = covered
        .iter()
        .enumerate()
        .filter(|&(_, &c)| !c)
        .map(|(i, _)| ChaId::new(i as u16))
        .collect();
    let fidelity = if unexplained == 0 && unconstrained_chas.is_empty() {
        if discarded == 0 {
            MapFidelity::Exact
        } else {
            MapFidelity::Relative
        }
    } else {
        MapFidelity::Partial
    };
    MapQuality {
        fidelity,
        total_paths: kept.paths.len() + discarded,
        discarded_paths: discarded,
        unexplained_paths: unexplained,
        resolve_rounds,
        unconstrained_chas,
        winning_topology: None,
        hypothesis_scores: Vec::new(),
    }
}

/// Indices of surviving paths the placement fails to explain.
fn unexplained_paths(
    positions: &[coremap_mesh::TileCoord],
    obs_set: &ObservationSet,
    dim: GridDim,
) -> Vec<usize> {
    obs_set
        .paths
        .iter()
        .enumerate()
        .filter(|(_, p)| !verify::explains_path(positions, p, dim))
        .map(|(i, _)| i)
        .collect()
}

/// Structural conflict scan for the infeasible case: recomputes the
/// row/column alignment classes the class-merged formulation would derive
/// and attributes each direct contradiction (a strict vertical relation
/// asserted in both directions, a self-looping relation, a horizontal path
/// whose endpoints or mids collapse onto one column class) to the minority
/// of the paths supporting it. Heuristic by design: cycles longer than two
/// relations are left to the caller's error path.
fn conflicting_paths(obs_set: &ObservationSet) -> Vec<usize> {
    let n = obs_set.n_cha;
    let mut row_uf = UnionFind::new(n);
    let mut col_uf = UnionFind::new(n);
    for p in &obs_set.paths {
        for &(k, _) in &p.vertical {
            col_uf.union(k.index(), p.source.index());
        }
        for &k in &p.horizontal {
            row_uf.union(k.index(), p.sink.index());
        }
    }
    let row_class: Vec<usize> = (0..n).map(|i| row_uf.find(i)).collect();
    let col_class: Vec<usize> = (0..n).map(|i| col_uf.find(i)).collect();

    let mut bad: BTreeSet<usize> = BTreeSet::new();
    // (a, b) -> paths supporting the strict relation R_a >= R_b + 1.
    let mut strict: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for (pi, p) in obs_set.paths.iter().enumerate() {
        let s = row_class[p.source.index()];
        for &(k, dir) in &p.vertical {
            let kc = row_class[k.index()];
            let rel = match dir {
                VerticalDir::Up => (s, kc),
                VerticalDir::Down => (kc, s),
            };
            strict.entry(rel).or_default().insert(pi);
        }
        if !p.horizontal.is_empty() {
            let cs = col_class[p.source.index()];
            let ce = col_class[p.sink.index()];
            if cs == ce {
                bad.insert(pi);
                continue;
            }
            for &k in &p.horizontal {
                if k == p.sink {
                    continue;
                }
                let kc = col_class[k.index()];
                if kc == cs || kc == ce {
                    bad.insert(pi);
                    break;
                }
            }
        }
    }
    for (&(a, b), supporters) in &strict {
        if a == b {
            bad.extend(supporters.iter().copied());
            continue;
        }
        if a > b {
            continue; // the unordered pair is handled at its (min, max) key
        }
        if let Some(opposing) = strict.get(&(b, a)) {
            let minority = if supporters.len() <= opposing.len() {
                supporters
            } else {
                opposing
            };
            bad.extend(minority.iter().copied());
        }
    }
    bad.into_iter().collect()
}

fn discard(kept: &mut ObservationSet, bad: &[usize]) {
    let bad: BTreeSet<usize> = bad.iter().copied().collect();
    let paths = std::mem::take(&mut kept.paths);
    kept.paths = paths
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !bad.contains(i))
        .map(|(_, p)| p)
        .collect();
}

/// Step 3 with graceful degradation: solves the ILP, checks the placement
/// against the observations, and — within
/// [`RobustnessConfig::degrade_rounds`] and
/// [`RobustnessConfig::max_discard_fraction`] — discards
/// minority-inconsistent observations and re-solves. An infeasible solve
/// triggers the structural conflict scan instead. When the budget runs out
/// on a *solvable* set, the map ships flagged
/// [`MapFidelity::Partial`] rather than erroring; only unsolvable sets
/// still fail.
///
/// # Errors
///
/// [`MapError::Ilp`] / [`MapError::InconsistentObservations`] when the set
/// stays unsolvable within the degradation budget.
pub fn reconstruct_degrading(
    obs_set: &ObservationSet,
    dim: GridDim,
    full_formulation: bool,
    cfg: &RobustnessConfig,
    solve_opts: ilp_model::SolveOptions,
) -> Result<(Reconstruction, MapQuality), MapError> {
    let total = obs_set.paths.len();
    let max_discard = (total as f64 * cfg.max_discard_fraction).floor() as usize;
    let mut kept = obs_set.clone();
    let mut discarded = 0usize;
    let mut rounds = 0usize;
    loop {
        let solved = if full_formulation {
            ilp_model::reconstruct_full_with(&kept, dim, solve_opts)
        } else {
            ilp_model::reconstruct_with(&kept, dim, solve_opts)
        };
        match solved {
            Ok(rec) => {
                let bad = unexplained_paths(&rec.positions, &kept, dim);
                if bad.is_empty() {
                    obs::add("core.harden.discarded_paths", discarded as u64);
                    return Ok((rec, grade(&kept, discarded, 0, rounds)));
                }
                if rounds >= cfg.degrade_rounds || discarded + bad.len() > max_discard {
                    // Budget exhausted but the set solved: ship the map at
                    // the ladder's floor instead of erroring.
                    obs::add("core.harden.discarded_paths", discarded as u64);
                    obs::add("core.harden.unexplained_paths", bad.len() as u64);
                    let quality = grade(&kept, discarded, bad.len(), rounds);
                    return Ok((rec, quality));
                }
                discarded += bad.len();
                discard(&mut kept, &bad);
                rounds += 1;
                obs::inc("core.harden.resolve_rounds");
            }
            Err(e @ (MapError::InconsistentObservations | MapError::Ilp(_))) => {
                if rounds >= cfg.degrade_rounds {
                    return Err(e);
                }
                let bad = conflicting_paths(&kept);
                if bad.is_empty() || discarded + bad.len() > max_discard {
                    return Err(e);
                }
                discarded += bad.len();
                discard(&mut kept, &bad);
                rounds += 1;
                obs::inc("core.harden.resolve_rounds");
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::traffic::PathObservation;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};

    #[test]
    fn retry_recovers_from_transient_failures() {
        let mut h = Harden::new(RobustnessConfig::default());
        let mut failures = 2;
        let out = h.msr(|| {
            if failures > 0 {
                failures -= 1;
                Err(MsrError::PermissionDenied)
            } else {
                Ok(42u64)
            }
        });
        assert_eq!(out, Ok(42));
    }

    #[test]
    fn retry_exhaustion_propagates_the_error() {
        let mut h = Harden::new(RobustnessConfig::default());
        let out: Result<u64, _> = h.msr(|| Err(MsrError::PermissionDenied));
        assert_eq!(out, Err(MsrError::PermissionDenied));
        // And with retry disabled the op runs exactly once.
        let mut h = Harden::new(RobustnessConfig::off());
        let mut calls = 0;
        let _: Result<u64, _> = h.msr(|| {
            calls += 1;
            Err(MsrError::PermissionDenied)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn median_of_three_absorbs_a_dropped_sample() {
        let mut h = Harden::new(RobustnessConfig::hardened());
        let values = [17u64, 0, 17]; // middle read dropped to 0
        let mut i = 0;
        let out = h.counter(|| {
            let v = values[i];
            i += 1;
            Ok(v)
        });
        assert_eq!(out, Ok(17));
    }

    #[test]
    fn stage_retry_reruns_transient_units_but_not_systemic_errors() {
        let mut h = Harden::new(RobustnessConfig::default());
        let mut failures = 1;
        let out = h.stage(|_| {
            if failures > 0 {
                failures -= 1;
                Err(MapError::Msr(MsrError::PermissionDenied))
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(out.unwrap(), 7);

        let mut calls = 0;
        let out: Result<(), _> = h.stage(|_| {
            calls += 1;
            Err(MapError::InconsistentObservations)
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "systemic errors must not be re-run");
    }

    #[test]
    fn degrading_solve_discards_a_minority_corrupt_path() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut obs_set = ObservationSet::synthetic(&plan);
        // Flip every vertical direction of one multi-hop path: its strict
        // row relations now contradict the (majority) truthful ones.
        let victim = obs_set
            .paths
            .iter()
            .position(|p| p.vertical.len() >= 2)
            .unwrap();
        for v in &mut obs_set.paths[victim].vertical {
            v.1 = match v.1 {
                VerticalDir::Up => VerticalDir::Down,
                VerticalDir::Down => VerticalDir::Up,
            };
        }
        let cfg = RobustnessConfig::hardened();
        let (rec, quality) =
            reconstruct_degrading(&obs_set, plan.dim(), false, &cfg, Default::default()).unwrap();
        assert_eq!(quality.fidelity, MapFidelity::Relative);
        assert!(quality.discarded_paths >= 1);
        assert!(verify::positions_match_relative(&rec.positions, &plan));
    }

    #[test]
    fn zero_discard_budget_reproduces_the_strict_pipeline() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut obs_set = ObservationSet::synthetic(&plan);
        let victim = obs_set
            .paths
            .iter()
            .position(|p| p.vertical.len() >= 2)
            .unwrap();
        for v in &mut obs_set.paths[victim].vertical {
            v.1 = match v.1 {
                VerticalDir::Up => VerticalDir::Down,
                VerticalDir::Down => VerticalDir::Up,
            };
        }
        let strict = RobustnessConfig::off();
        assert!(
            reconstruct_degrading(&obs_set, plan.dim(), false, &strict, Default::default())
                .is_err()
        );
    }

    #[test]
    fn clean_observations_grade_exact() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let obs_set = ObservationSet::synthetic(&plan);
        let cfg = RobustnessConfig::default();
        let (rec, quality) =
            reconstruct_degrading(&obs_set, plan.dim(), false, &cfg, Default::default()).unwrap();
        assert_eq!(quality.fidelity, MapFidelity::Exact);
        assert_eq!(quality.discarded_paths, 0);
        assert!(!quality.is_degraded());
        assert!(verify::positions_match(&rec.positions, &plan));
    }

    #[test]
    fn quality_reports_unconstrained_chas_as_partial() {
        // Three CHAs, but only 0 and 1 are observed: CHA 2 is guesswork.
        let obs_set = ObservationSet {
            n_cha: 3,
            paths: vec![PathObservation {
                source: ChaId::new(0),
                sink: ChaId::new(1),
                vertical: vec![(ChaId::new(1), VerticalDir::Up)],
                horizontal: vec![],
            }],
        };
        let dim = GridDim { rows: 3, cols: 3 };
        let cfg = RobustnessConfig::default();
        let (_, quality) =
            reconstruct_degrading(&obs_set, dim, false, &cfg, Default::default()).unwrap();
        assert_eq!(quality.fidelity, MapFidelity::Partial);
        assert_eq!(quality.unconstrained_chas, vec![ChaId::new(2)]);
        assert_eq!(
            format!("{quality}"),
            "partial (1/1 paths kept, 1 CHAs unconstrained)"
        );
    }
}
