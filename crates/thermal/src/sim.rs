//! Machine-level thermal simulation: floorplan-aware activity, noise and
//! sensor sampling.

use coremap_mesh::{Floorplan, OsCoreId, TileCoord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::power::{ActivityLevel, ThermalNoise};
use crate::sensor::TempSensor;
use crate::{RcGrid, ThermalParams};

/// Thermal simulation of one CPU instance.
///
/// The simulation places heat according to the *ground-truth* floorplan —
/// physics does not care about ID obfuscation. The attacker's code, by
/// contrast, chooses sender/receiver cores using only a recovered
/// [`CoreMap`](coremap_core::CoreMap) and reads temperatures through
/// [`sample`](Self::sample), which models the user-level sensor interface.
#[derive(Debug, Clone)]
pub struct ThermalSim {
    plan: Floorplan,
    grid: RcGrid,
    noise: ThermalNoise,
    sensor: TempSensor,
    rng: ChaCha8Rng,
    activities: Vec<ActivityLevel>,
    time: f64,
}

impl ThermalSim {
    /// Creates a simulation at idle equilibrium.
    pub fn new(plan: Floorplan, params: ThermalParams, seed: u64) -> Self {
        let tiles = plan.dim().tile_count();
        Self {
            grid: RcGrid::new(plan.dim(), params),
            noise: ThermalNoise::none(tiles),
            sensor: TempSensor::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            activities: vec![ActivityLevel::Idle; plan.core_count()],
            time: 0.0,
            plan,
        }
    }

    /// Installs a background noise process.
    pub fn with_noise(mut self, noise: ThermalNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Installs a non-default sensor (e.g. a degraded defensive sensor).
    pub fn with_sensor(mut self, sensor: TempSensor) -> Self {
        self.sensor = sensor;
        self
    }

    /// The sensor configuration.
    pub fn sensor(&self) -> TempSensor {
        self.sensor
    }

    /// Simulation time step (s).
    pub fn dt(&self) -> f64 {
        self.grid.params().dt
    }

    /// Elapsed simulated time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The floorplan (ground truth; used by physics and by verification).
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// Sets the workload of a core (what a user-level attacker thread does
    /// by spinning or sleeping).
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core.
    pub fn set_activity(&mut self, core: OsCoreId, level: ActivityLevel) {
        self.activities[core.index()] = level;
    }

    /// Advances the simulation by one time step.
    pub fn step(&mut self) {
        let params = *self.grid.params();
        let dim = self.plan.dim();
        let mut powers = vec![params.idle_power; dim.tile_count()];
        for (idx, &act) in self.activities.iter().enumerate() {
            let coord = self.plan.coord_of_core(OsCoreId::new(idx as u16));
            powers[dim.linear_index(coord)] = act.power(&params);
        }
        for (i, extra) in self
            .noise
            .sample(&mut self.rng, params.dt)
            .into_iter()
            .enumerate()
        {
            powers[i] += extra;
        }
        self.grid.step(&powers);
        self.time += params.dt;
    }

    /// Advances by `seconds` of simulated time.
    pub fn advance(&mut self, seconds: f64) {
        let steps = (seconds / self.dt()).round() as usize;
        for _ in 0..steps {
            self.step();
        }
    }

    /// Reads the temperature sensor of `core` — quantized and noisy, the
    /// only thermal observable a user-level attacker has (paper Sec. IV).
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core.
    pub fn sample(&mut self, core: OsCoreId) -> f64 {
        let coord = self.plan.coord_of_core(core);
        let truth = self.grid.temp(coord);
        let jitter = self.rng.gen_range(-1.0..1.0);
        self.sensor.read(truth, jitter)
    }

    /// Model-truth temperature of a tile (diagnostics/plots only).
    pub fn true_temp(&self, coord: TileCoord) -> f64 {
        self.grid.temp(coord)
    }

    /// Reads an *external* infrared probe aimed at a die position — the
    /// paper's note that "an attacker who has physical access to the
    /// hardware can externally probe the temperature of the desired core
    /// tiles" (Sec. IV, citing small-object IR pyrometry), which bypasses
    /// any software sensor defense. Modelled as a fine-grained (0.1 °C)
    /// reading of any tile, independent of the core sensor configuration.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn external_probe(&mut self, coord: TileCoord) -> f64 {
        let truth = self.grid.temp(coord);
        let jitter: f64 = self.rng.gen_range(-1.0..1.0);
        let noisy = truth + jitter * 0.05;
        (noisy * 10.0).round() / 10.0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};

    fn sim() -> ThermalSim {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        ThermalSim::new(plan, ThermalParams::default(), 42)
    }

    #[test]
    fn stress_raises_own_sensor_reading() {
        let mut s = sim();
        let core = OsCoreId::new(5);
        s.advance(2.0);
        let before = s.sample(core);
        s.set_activity(core, ActivityLevel::Stress);
        s.advance(5.0);
        let after = s.sample(core);
        assert!(after >= before + 5.0, "{before} -> {after}");
    }

    #[test]
    fn heat_propagates_to_vertical_neighbor() {
        let mut s = sim();
        let plan = s.floorplan().clone();
        // Find a vertically adjacent pair of cores.
        let cores: Vec<OsCoreId> = plan.cores().collect();
        let (hot, probe) = cores
            .iter()
            .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| {
                let ca = plan.coord_of_core(a);
                let cb = plan.coord_of_core(b);
                ca.col == cb.col && ca.row.abs_diff(cb.row) == 1
            })
            .unwrap();
        s.advance(2.0);
        let before = s.true_temp(plan.coord_of_core(probe));
        s.set_activity(hot, ActivityLevel::Stress);
        s.advance(8.0);
        let after = s.true_temp(plan.coord_of_core(probe));
        assert!(after > before + 1.0, "{before} -> {after}");
    }

    #[test]
    fn time_advances_by_dt() {
        let mut s = sim();
        let dt = s.dt();
        s.step();
        s.step();
        assert!((s.time() - 2.0 * dt).abs() < 1e-12);
    }

    #[test]
    fn external_probe_beats_a_degraded_sensor() {
        use crate::sensor::TempSensor;
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut s = ThermalSim::new(plan, ThermalParams::default(), 1)
            .with_sensor(TempSensor::degraded(8.0, 50.0));
        let core = OsCoreId::new(3);
        let coord = s.floorplan().coord_of_core(core);
        s.set_activity(core, ActivityLevel::Stress);
        s.advance(4.0);
        // The crippled software sensor rounds to 8 C; the IR probe resolves
        // a tenth of a degree of the same physical temperature.
        let sensor_reading = s.sample(core);
        let probe_reading = s.external_probe(coord);
        let truth = s.true_temp(coord);
        assert_eq!(sensor_reading % 8.0, 0.0);
        assert!(
            (probe_reading - truth).abs() < 0.2,
            "{probe_reading} vs {truth}"
        );
    }

    #[test]
    fn sample_is_quantized() {
        let mut s = sim();
        s.advance(0.5);
        let v = s.sample(OsCoreId::new(0));
        assert_eq!(v, v.floor());
    }
}
