//! # coremap-thermal
//!
//! Die-level thermal simulation and the inter-core **thermal covert
//! channel** of *"Know Your Neighbor"* (DATE 2022, Sec. IV–V).
//!
//! The physical substrate is a lumped-RC grid ([`RcGrid`]): one thermal node
//! per core tile, coupled laterally to its mesh neighbours — more strongly
//! in the vertical direction, because a Xeon core tile is a horizontally
//! long rectangle and vertical neighbours sit closer (Sec. V-A) — and
//! vertically through the package to a shared heatsink node. This is the
//! standard architectural thermal abstraction (HotSpot-style) and stands in
//! for the physical silicon the paper measures.
//!
//! On top of it:
//!
//! * [`power`] — stress/idle activity power, plus a background noise
//!   process modelling co-tenant load on a cloud host;
//! * [`sensor`] — the per-core temperature sensor: 1 °C quantization,
//!   bounded sampling rate, optional resolution-reduction defense;
//! * [`encoding`] / [`decode`] — Manchester bit encoding with a signature
//!   preamble and the offset-searching offline decoder (Sec. IV-A);
//! * [`ChannelConfig`] — the attack: senders modulate load, a receiver
//!   reads *its own core's* sensor, bits cross the die as heat. Supports
//!   multiple synchronized senders (Sec. V-B) and multiple concurrent
//!   channels (Sec. V-C).
//!
//! ```
//! use coremap_mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
//! use coremap_thermal::{ChannelConfig, ThermalParams, ThermalSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
//! // cpu14 sits at (2,0) and cpu7 at (3,0) on the full die: a vertically
//! // adjacent pair (the real attacker reads this off a recovered CoreMap).
//! let (sender, receiver) = (OsCoreId::new(14), OsCoreId::new(7));
//! assert_eq!(plan.coord_of_core(sender).hop_distance(plan.coord_of_core(receiver)), 1);
//! let mut sim = ThermalSim::new(plan, ThermalParams::default(), 1);
//! let cfg = ChannelConfig::new(vec![sender], receiver, 2.0);
//! let report = cfg.transfer(&mut sim, &[true, false, true, true, false, true, false, false]);
//! assert!(report.ber() < 0.25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
pub mod decode;
pub mod encoding;
pub mod fec;
mod model;
mod params;
pub mod power;
pub mod sensor;
mod sim;

pub use channel::{run_multi_channel, ChannelConfig, MultiChannelReport, TransferReport};
pub use model::RcGrid;
pub use params::ThermalParams;
pub use sim::ThermalSim;
