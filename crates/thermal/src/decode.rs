//! Offline decoding of received temperature traces (paper Sec. IV-A).
//!
//! The receiver records its core's quantized temperature at the sensor
//! rate. Decoding happens offline: the decoder scans candidate sampling
//! offsets, picks the one that correctly decodes the known signature
//! preamble, and then decodes the payload at that offset.
//!
//! Per-bit detection compares the mean temperature of the two half-bit
//! windows: Manchester guarantees exactly one stress and one idle half per
//! bit, so `mean(first half) > mean(second half)` decodes a `1`. Slow
//! thermal drift cancels between adjacent halves.

use crate::encoding::PREAMBLE;

/// Result of a synchronized decode.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Sample offset at which the preamble decoded best.
    pub offset: usize,
    /// Number of preamble bits decoded correctly at that offset (out of
    /// [`PREAMBLE`]`.len()`).
    pub preamble_score: usize,
    /// The decoded payload bits.
    pub payload: Vec<bool>,
}

/// Decodes `n_bits` Manchester bits from `samples` starting at `offset`,
/// with `samples_per_bit` samples per bit period.
pub fn decode_at(samples: &[f64], offset: usize, n_bits: usize, samples_per_bit: f64) -> Vec<bool> {
    let mut bits = Vec::with_capacity(n_bits);
    for i in 0..n_bits {
        let start = offset as f64 + i as f64 * samples_per_bit;
        let mid = start + samples_per_bit / 2.0;
        let end = start + samples_per_bit;
        let first = window_mean(samples, start, mid);
        let second = window_mean(samples, mid, end);
        bits.push(first > second);
    }
    bits
}

fn window_mean(samples: &[f64], from: f64, to: f64) -> f64 {
    let a = (from.ceil() as usize).min(samples.len());
    let b = (to.floor() as usize).min(samples.len());
    if a >= b {
        return samples
            .get(a.min(samples.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
    }
    samples[a..b].iter().sum::<f64>() / (b - a) as f64
}

/// Minimum fraction of correctly decoded preamble bits for the
/// synchronizer to accept an offset, as a ratio: at least
/// [`SYNC_THRESHOLD_NUM`]`/`[`SYNC_THRESHOLD_DEN`] of [`PREAMBLE`] bits
/// must match (7 of 8 for the standard preamble). Below that the lock is
/// considered spurious — e.g. the frame starts beyond the offset search
/// window — and decoding fails loudly instead of returning garbage. The
/// bound is deliberately tight: the preamble's alternating prefix
/// self-matches 6 of 8 bits under a whole-bit shift, so anything looser
/// cannot distinguish a mis-locked frame from a true one.
pub const SYNC_THRESHOLD_NUM: usize = 7;
/// Denominator of the sync acceptance ratio; see [`SYNC_THRESHOLD_NUM`].
pub const SYNC_THRESHOLD_DEN: usize = 8;

/// Searches sampling offsets for the one that best decodes the signature
/// preamble, then decodes `n_payload` payload bits at that offset.
///
/// Returns `None` for traces shorter than one frame, and for traces where
/// no candidate offset decodes at least [`SYNC_THRESHOLD_NUM`]`/`
/// [`SYNC_THRESHOLD_DEN`] of the preamble — synchronization failure. The
/// search window spans two bit periods, so a recording whose lead-in
/// exceeds that (the sender started later than expected) reports the
/// failure instead of silently locking onto noise and decoding garbage;
/// callers surface it through `TransferReport::sync_offset = None`.
pub fn synchronize_and_decode(
    samples: &[f64],
    n_payload: usize,
    samples_per_bit: f64,
) -> Option<DecodeResult> {
    let frame_bits = PREAMBLE.len() + n_payload;
    let needed = (frame_bits as f64 * samples_per_bit).ceil() as usize;
    if samples.len() < needed {
        return None;
    }
    let max_offset = (samples.len() - needed).min((2.0 * samples_per_bit) as usize);
    // Alternating Manchester preambles are self-similar under a half-bit
    // shift, so preamble correctness alone can tie between the true offset
    // and a straddled one. The true offset aligns the half-bit windows with
    // the thermal plateaus and therefore maximizes the decision *margin*;
    // use it as the tie-breaker.
    let mut best: Option<(usize, f64, usize)> = None; // (score, margin, offset)
    for offset in 0..=max_offset {
        let got = decode_at(samples, offset, PREAMBLE.len(), samples_per_bit);
        let score = got
            .iter()
            .zip(PREAMBLE.iter())
            .filter(|(a, b)| a == b)
            .count();
        let mut margin = 0.0;
        for i in 0..PREAMBLE.len() {
            let start = offset as f64 + i as f64 * samples_per_bit;
            let mid = start + samples_per_bit / 2.0;
            let end = start + samples_per_bit;
            margin += (window_mean(samples, start, mid) - window_mean(samples, mid, end)).abs();
        }
        let better = match best {
            None => true,
            Some((s, m, _)) => score > s || (score == s && margin > m),
        };
        if better {
            best = Some((score, margin, offset));
        }
    }
    let (preamble_score, _, offset) = best?;
    if preamble_score * SYNC_THRESHOLD_DEN < PREAMBLE.len() * SYNC_THRESHOLD_NUM {
        return None;
    }
    let payload_offset = offset as f64 + PREAMBLE.len() as f64 * samples_per_bit;
    let payload = decode_at(
        samples,
        payload_offset.round() as usize,
        n_payload,
        samples_per_bit,
    );
    Some(DecodeResult {
        offset,
        preamble_score,
        payload,
    })
}

/// Bit error count between two equal-length bit strings.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn bit_errors(sent: &[bool], received: &[bool]) -> usize {
    assert_eq!(sent.len(), received.len(), "bitstring length mismatch");
    sent.iter().zip(received).filter(|(a, b)| a != b).count()
}

/// Bit error rate between two equal-length bit strings.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn ber(sent: &[bool], received: &[bool]) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    bit_errors(sent, received) as f64 / sent.len() as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::encoding::frame;

    /// Builds an ideal sample trace for a framed bit string: `spb` samples
    /// per bit, high/low half-bit plateaus.
    fn ideal_trace(bits: &[bool], spb: usize, lead: usize) -> Vec<f64> {
        let mut out = vec![30.0; lead];
        for &b in bits {
            let (first, second) = if b { (40.0, 30.0) } else { (30.0, 40.0) };
            out.extend(std::iter::repeat_n(first, spb / 2));
            out.extend(std::iter::repeat_n(second, spb - spb / 2));
        }
        out.extend(std::iter::repeat_n(30.0, spb));
        out
    }

    #[test]
    fn decodes_ideal_trace_at_zero_offset() {
        let payload = vec![true, false, false, true, true, false];
        let framed = frame(&payload);
        let trace = ideal_trace(&framed, 20, 0);
        let r = synchronize_and_decode(&trace, payload.len(), 20.0).unwrap();
        assert_eq!(r.preamble_score, PREAMBLE.len());
        assert_eq!(r.payload, payload);
    }

    #[test]
    fn synchronizer_finds_nonzero_offset() {
        let payload = vec![false, true, true, false];
        let framed = frame(&payload);
        for lead in [3usize, 9, 17] {
            let trace = ideal_trace(&framed, 20, lead);
            let r = synchronize_and_decode(&trace, payload.len(), 20.0).unwrap();
            assert_eq!(r.payload, payload, "lead {lead}");
            // Plateau traces decode perfectly at any offset within half a
            // half-bit of the true lead; the chosen one must lie in that
            // basin.
            assert!(
                r.offset.abs_diff(lead) <= 5,
                "offset {} vs lead {lead}",
                r.offset
            );
        }
    }

    #[test]
    fn short_trace_returns_none() {
        let trace = vec![30.0; 10];
        assert!(synchronize_and_decode(&trace, 100, 20.0).is_none());
    }

    #[test]
    fn lead_beyond_search_window_reports_sync_failure() {
        // The offset search spans two bit periods (40 samples at spb 20).
        // A longer lead used to lock onto whatever offset happened to score
        // best inside the window and decode garbage; it must fail instead.
        let payload = vec![true, false, false, true, true, false];
        let framed = frame(&payload);
        for lead in [70usize, 75, 101] {
            let trace = ideal_trace(&framed, 20, lead);
            assert!(
                synchronize_and_decode(&trace, payload.len(), 20.0).is_none(),
                "lead {lead} must not lock"
            );
        }
    }

    #[test]
    fn flat_trace_reports_sync_failure() {
        // A constant trace decodes as all-false everywhere; the preamble is
        // majority-true, so every offset scores below the 7/8 threshold.
        let trace = vec![30.0; 2000];
        assert!(synchronize_and_decode(&trace, 6, 20.0).is_none());
    }

    #[test]
    fn ber_counts_mismatches() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert_eq!(bit_errors(&a, &b), 2);
        assert!((ber(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(ber(&[], &[]), 0.0);
    }

    #[test]
    fn decode_survives_slow_drift() {
        let payload = vec![true, false, true, false, false, true];
        let framed = frame(&payload);
        let mut trace = ideal_trace(&framed, 20, 5);
        // Superimpose a strong linear drift: +5 degrees over the trace.
        let n = trace.len() as f64;
        for (i, v) in trace.iter_mut().enumerate() {
            *v += 5.0 * i as f64 / n;
        }
        let r = synchronize_and_decode(&trace, payload.len(), 20.0).unwrap();
        assert_eq!(r.payload, payload);
    }
}
