//! Thermal model parameters.

use serde::{Deserialize, Serialize};

/// Lumped-RC parameters of the die/package model.
///
/// Defaults are tuned so the simulated behaviour reproduces the *shape* of
/// the paper's measurements (Fig. 6): a stressed core swings ~12–14 °C, a
/// 1-hop vertical neighbour sees ~2–3 °C, a 1-hop horizontal neighbour
/// roughly half of that (tile aspect ratio), and 2-hop neighbours hover
/// near the 1 °C quantization floor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Heat capacity of one tile node (J/K).
    pub tile_capacitance: f64,
    /// Lateral conductance to each *vertical* mesh neighbour (W/K). Larger
    /// than horizontal: vertical neighbours are physically closer.
    pub vertical_coupling: f64,
    /// Lateral conductance to each *horizontal* mesh neighbour (W/K).
    pub horizontal_coupling: f64,
    /// Conductance from a tile through the package to the heatsink (W/K).
    pub sink_conductance: f64,
    /// Heat capacity of the shared heatsink node (J/K) — the source of the
    /// slow thermal drift that Manchester coding rejects.
    pub heatsink_capacitance: f64,
    /// Conductance from the heatsink to ambient (W/K).
    pub heatsink_to_ambient: f64,
    /// Ambient temperature (°C).
    pub ambient: f64,
    /// Per-tile idle power (W).
    pub idle_power: f64,
    /// Per-tile power under the stress workload (W); the paper found
    /// repeated branch misses heat the core the most (Sec. IV-A).
    pub stress_power: f64,
    /// Simulation time step (s). Must keep the explicit integration stable:
    /// `dt < C / G_total`.
    pub dt: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self {
            tile_capacitance: 0.10,
            vertical_coupling: 0.45,
            horizontal_coupling: 0.20,
            sink_conductance: 1.20,
            heatsink_capacitance: 60.0,
            heatsink_to_ambient: 6.0,
            ambient: 25.0,
            idle_power: 2.0,
            stress_power: 28.0,
            dt: 0.005,
        }
    }
}

impl ThermalParams {
    /// The default air-cooled server configuration (tower/1U heatsink with
    /// forced airflow) — the environment the channel numbers are tuned on.
    pub fn air_cooled() -> Self {
        Self::default()
    }

    /// A liquid-cooled package: a much stronger tile-to-coldplate path
    /// steals heat before it spreads laterally, shrinking the neighbour
    /// swing the covert channel rides on.
    pub fn liquid_cooled() -> Self {
        Self {
            sink_conductance: 3.0,
            heatsink_to_ambient: 25.0,
            heatsink_capacitance: 20.0,
            dt: 0.002,
            ..Self::default()
        }
    }

    /// A passively-cooled (fanless edge/embedded) package: weak path to
    /// ambient, hotter baseline, *stronger* lateral coupling signal.
    pub fn passive() -> Self {
        Self {
            sink_conductance: 0.7,
            heatsink_to_ambient: 2.5,
            ..Self::default()
        }
    }

    /// Maximum total conductance seen by an interior tile.
    pub fn max_tile_conductance(&self) -> f64 {
        self.sink_conductance + 2.0 * self.vertical_coupling + 2.0 * self.horizontal_coupling
    }

    /// Whether the explicit-Euler step is stable for these parameters.
    pub fn is_stable(&self) -> bool {
        self.dt < self.tile_capacitance / self.max_tile_conductance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_stable() {
        assert!(ThermalParams::default().is_stable());
    }

    #[test]
    fn vertical_coupling_exceeds_horizontal() {
        let p = ThermalParams::default();
        assert!(p.vertical_coupling > p.horizontal_coupling);
    }

    #[test]
    fn stress_exceeds_idle_power() {
        let p = ThermalParams::default();
        assert!(p.stress_power > p.idle_power);
    }

    #[test]
    fn cooling_presets_are_stable_and_ordered() {
        for p in [
            ThermalParams::air_cooled(),
            ThermalParams::liquid_cooled(),
            ThermalParams::passive(),
        ] {
            assert!(p.is_stable());
        }
        assert!(
            ThermalParams::liquid_cooled().sink_conductance
                > ThermalParams::air_cooled().sink_conductance
        );
        assert!(
            ThermalParams::passive().sink_conductance
                < ThermalParams::air_cooled().sink_conductance
        );
    }
}
