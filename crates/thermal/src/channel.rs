//! The inter-core thermal covert channel (paper Sec. IV–V).

use coremap_mesh::OsCoreId;
use serde::{Deserialize, Serialize};

use crate::decode::{self, synchronize_and_decode};
use crate::encoding::{self, frame};
use crate::power::ActivityLevel;
use crate::ThermalSim;

/// One covert channel: one or more synchronized sender cores and a receiver
/// core, transmitting at a fixed bit rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Sender cores; all modulate the identical waveform (multi-sender
    /// amplification, paper Sec. V-B, up to the 8 tiles surrounding the
    /// receiver).
    pub senders: Vec<OsCoreId>,
    /// Receiver core; reads only its own sensor.
    pub receiver: OsCoreId,
    /// Bit rate (bits per second).
    pub bit_rate: f64,
    /// Use NRZ instead of Manchester (encoding ablation).
    pub nrz: bool,
    /// Stress workload driven during "hot" half-bits. The paper found
    /// branch misses the hottest stressor (Sec. IV-A); weaker workloads
    /// shrink the received swing (the stressor ablation measures this).
    pub stressor: crate::power::StressorKind,
}

impl ChannelConfig {
    /// A Manchester channel.
    pub fn new(senders: Vec<OsCoreId>, receiver: OsCoreId, bit_rate: f64) -> Self {
        Self {
            senders,
            receiver,
            bit_rate,
            nrz: false,
            stressor: crate::power::StressorKind::BranchMiss,
        }
    }

    /// Selects the stress workload used for the hot half-bits.
    pub fn with_stressor(mut self, stressor: crate::power::StressorKind) -> Self {
        self.stressor = stressor;
        self
    }

    /// Seconds per transmitted bit.
    pub fn bit_period(&self) -> f64 {
        1.0 / self.bit_rate
    }

    /// Transmits `payload` over the channel and decodes it offline,
    /// returning the transfer report. The simulation is advanced in place
    /// (a long settling window is inserted first so back-to-back transfers
    /// do not leak heat into each other).
    #[allow(clippy::expect_used)]
    pub fn transfer(&self, sim: &mut ThermalSim, payload: &[bool]) -> TransferReport {
        let reports = run_multi_channel(sim, std::slice::from_ref(self), &[payload.to_vec()]);
        // audit: allow(panic-safety): infallible — run_multi_channel returns one report per input channel and exactly one channel was passed
        reports.channels.into_iter().next().expect("one channel")
    }
}

/// Outcome of one channel's transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Payload bits transmitted.
    pub bits: usize,
    /// Payload bits decoded incorrectly.
    pub errors: usize,
    /// Channel bit rate (bps).
    pub bit_rate: f64,
    /// Wall-clock (simulated) seconds the frame occupied.
    pub seconds: f64,
    /// Sample offset the synchronizer locked to, if it locked.
    pub sync_offset: Option<usize>,
    /// The decoded payload.
    pub decoded: Vec<bool>,
    /// The raw (quantized) receiver temperature trace, one entry per sensor
    /// sample — kept for trace plots (paper Fig. 6).
    pub samples: Vec<f64>,
}

impl TransferReport {
    /// Bit error rate of the payload.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Error-free goodput in bits per second (`rate * (1 - ber)`).
    pub fn goodput_bps(&self) -> f64 {
        self.bit_rate * (1.0 - self.ber())
    }

    /// Shannon capacity of the channel modelled as a binary symmetric
    /// channel with the measured error probability:
    /// `rate * (1 - H2(ber))` bits per second. This is the
    /// information-theoretic ceiling prior work frames its results in
    /// ([Bartolini et al., EuroSys'16]); the paper reports raw rate/BER
    /// pairs instead.
    pub fn bsc_capacity_bps(&self) -> f64 {
        fn h2(p: f64) -> f64 {
            if p <= 0.0 || p >= 1.0 {
                return 0.0;
            }
            -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
        }
        self.bit_rate * (1.0 - h2(self.ber()))
    }
}

/// Aggregate outcome of a concurrent multi-channel transfer (paper Sec.
/// V-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiChannelReport {
    /// Per-channel reports.
    pub channels: Vec<TransferReport>,
}

impl MultiChannelReport {
    /// Sum of the channel bit rates (the paper's "aggregated throughput").
    pub fn aggregate_rate_bps(&self) -> f64 {
        self.channels.iter().map(|c| c.bit_rate).sum()
    }

    /// Error rate across all transmitted payload bits.
    pub fn aggregate_ber(&self) -> f64 {
        let bits: usize = self.channels.iter().map(|c| c.bits).sum();
        let errors: usize = self.channels.iter().map(|c| c.errors).sum();
        if bits == 0 {
            0.0
        } else {
            errors as f64 / bits as f64
        }
    }
}

/// Runs several channels *concurrently* on one machine and decodes each
/// receiver's trace. All channels must share one bit rate (the paper's
/// multi-channel setting transmits synchronized equal-rate streams).
///
/// # Panics
///
/// Panics if `channels` and `payloads` differ in length, if the rates
/// differ, or if a payload is empty.
pub fn run_multi_channel(
    sim: &mut ThermalSim,
    channels: &[ChannelConfig],
    payloads: &[Vec<bool>],
) -> MultiChannelReport {
    assert_eq!(channels.len(), payloads.len(), "one payload per channel");
    assert!(!channels.is_empty(), "at least one channel");
    let rate = channels[0].bit_rate;
    assert!(
        channels.iter().all(|c| (c.bit_rate - rate).abs() < 1e-9),
        "multi-channel transfers share one bit rate"
    );
    assert!(payloads.iter().all(|p| !p.is_empty()), "non-empty payloads");

    // Per-channel framed waveforms, as per-half-bit activity levels.
    let frames: Vec<Vec<bool>> = payloads.iter().map(|p| frame(p)).collect();
    let waveforms: Vec<Vec<ActivityLevel>> = frames
        .iter()
        .zip(channels)
        .map(|(f, c)| {
            if c.nrz {
                // NRZ occupies a full bit period per level; duplicate to
                // keep the half-bit clock uniform across channels.
                encoding::nrz(f).into_iter().flat_map(|l| [l, l]).collect()
            } else {
                encoding::manchester(f)
            }
        })
        .collect();

    // Settle to (near) equilibrium so prior activity cannot leak in.
    for c in channels {
        for &s in &c.senders {
            sim.set_activity(s, ActivityLevel::Idle);
        }
    }
    sim.advance(3.0);

    let dt = sim.dt();
    let half_period = 1.0 / (2.0 * rate);
    let sample_period = sim.sensor().sample_period();
    // Zero channels transmit for zero half-bit slots (settle windows only).
    let n_halfbits = waveforms.iter().map(Vec::len).max().unwrap_or(0);
    let total_time = n_halfbits as f64 * half_period + 2.0 / rate;
    let total_steps = (total_time / dt).ceil() as usize;

    let mut traces: Vec<Vec<f64>> = vec![Vec::new(); channels.len()];
    let mut next_sample = 0.0f64;
    let t0 = sim.time();
    for step in 0..total_steps {
        let t = step as f64 * dt;
        let half_idx = (t / half_period) as usize;
        for (c, wf) in channels.iter().zip(&waveforms) {
            let level = match wf.get(half_idx).copied().unwrap_or(ActivityLevel::Idle) {
                ActivityLevel::Stress => ActivityLevel::Workload(c.stressor),
                other => other,
            };
            for &s in &c.senders {
                sim.set_activity(s, level);
            }
        }
        sim.step();
        if sim.time() - t0 >= next_sample {
            for (ci, c) in channels.iter().enumerate() {
                traces[ci].push(sim.sample(c.receiver));
            }
            next_sample += sample_period;
        }
    }
    // Leave everything idle.
    for c in channels {
        for &s in &c.senders {
            sim.set_activity(s, ActivityLevel::Idle);
        }
    }

    let samples_per_bit = (1.0 / rate) / sample_period;
    let reports = channels
        .iter()
        .zip(payloads)
        .zip(traces)
        .map(|((c, payload), trace)| {
            let result = synchronize_and_decode(&trace, payload.len(), samples_per_bit);
            let (sync_offset, decoded) = match result {
                Some(r) => (Some(r.offset), r.payload),
                None => (None, vec![false; payload.len()]),
            };
            let errors = decode::bit_errors(payload, &decoded);
            TransferReport {
                bits: payload.len(),
                errors,
                bit_rate: c.bit_rate,
                seconds: (frames[0].len() as f64) / c.bit_rate,
                sync_offset,
                decoded,
                samples: trace,
            }
        })
        .collect();
    MultiChannelReport { channels: reports }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::power::ThermalNoise;
    use crate::ThermalParams;
    use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn plan() -> Floorplan {
        FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap()
    }

    /// A vertically adjacent (sender, receiver) pair from ground truth.
    fn vertical_pair(plan: &Floorplan) -> (OsCoreId, OsCoreId) {
        let cores: Vec<OsCoreId> = plan.cores().collect();
        cores
            .iter()
            .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| {
                let ca = plan.coord_of_core(a);
                let cb = plan.coord_of_core(b);
                ca.col == cb.col && ca.row.abs_diff(cb.row) == 1
            })
            .expect("vertical pair")
    }

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn bsc_capacity_brackets_goodput() {
        let mk = |bits: usize, errors: usize| TransferReport {
            bits,
            errors,
            bit_rate: 4.0,
            seconds: 1.0,
            sync_offset: Some(0),
            decoded: vec![false; bits],
            samples: Vec::new(),
        };
        // Error-free channel: capacity equals the raw rate.
        assert!((mk(100, 0).bsc_capacity_bps() - 4.0).abs() < 1e-12);
        // Coin-flip channel: zero capacity.
        assert!(mk(100, 50).bsc_capacity_bps() < 1e-9);
        // Intermediate: strictly between zero and the raw rate.
        let c = mk(100, 10).bsc_capacity_bps();
        assert!(c > 0.0 && c < 4.0, "capacity {c}");
    }

    #[test]
    fn one_hop_vertical_at_1bps_is_nearly_error_free() {
        let p = plan();
        let (tx, rx) = vertical_pair(&p);
        let mut sim = ThermalSim::new(p, ThermalParams::default(), 7);
        let payload = random_bits(40, 1);
        let report = ChannelConfig::new(vec![tx], rx, 1.0).transfer(&mut sim, &payload);
        assert!(
            report.ber() <= 0.05,
            "1-hop vertical 1 bps should be nearly clean, ber={}",
            report.ber()
        );
    }

    #[test]
    fn distant_receiver_fails() {
        let p = plan();
        let cores: Vec<OsCoreId> = p.cores().collect();
        // Find a pair at least 5 hops apart.
        let (tx, rx) = cores
            .iter()
            .flat_map(|&a| cores.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| p.coord_of_core(a).hop_distance(p.coord_of_core(b)) >= 5)
            .unwrap();
        let mut sim = ThermalSim::new(p, ThermalParams::default(), 7);
        let payload = random_bits(40, 2);
        let report = ChannelConfig::new(vec![tx], rx, 2.0).transfer(&mut sim, &payload);
        assert!(
            report.ber() > 0.2,
            "far receiver should be unusable, ber={}",
            report.ber()
        );
    }

    #[test]
    fn multi_sender_beats_single_sender_at_speed() {
        let p = plan();
        let (tx, rx) = vertical_pair(&p);
        // Gather all neighbours of rx as extra senders.
        let rxc = p.coord_of_core(rx);
        let extra: Vec<OsCoreId> = p
            .cores()
            .filter(|&c| c != rx && p.coord_of_core(c).hop_distance(rxc) == 1)
            .collect();
        assert!(extra.len() >= 2);
        let payload = random_bits(60, 3);
        let rate = 5.0;

        let mut sim1 = ThermalSim::new(p.clone(), ThermalParams::default(), 5)
            .with_noise(ThermalNoise::cloud(p.dim().tile_count()));
        let single = ChannelConfig::new(vec![tx], rx, rate).transfer(&mut sim1, &payload);
        let mut sim2 = ThermalSim::new(p.clone(), ThermalParams::default(), 5)
            .with_noise(ThermalNoise::cloud(p.dim().tile_count()));
        let multi = ChannelConfig::new(extra, rx, rate).transfer(&mut sim2, &payload);
        assert!(
            multi.ber() <= single.ber(),
            "multi-sender {} vs single {}",
            multi.ber(),
            single.ber()
        );
    }

    #[test]
    fn concurrent_channels_report_aggregate() {
        let p = plan();
        // Two disjoint vertical pairs, far apart.
        let cores: Vec<OsCoreId> = p.cores().collect();
        let mut pairs = Vec::new();
        let mut used: Vec<OsCoreId> = Vec::new();
        for &a in &cores {
            for &b in &cores {
                if a == b || used.contains(&a) || used.contains(&b) {
                    continue;
                }
                let ca = p.coord_of_core(a);
                let cb = p.coord_of_core(b);
                if ca.col == cb.col && ca.row.abs_diff(cb.row) == 1 {
                    // Keep pairs distant from already-used tiles.
                    let far = used
                        .iter()
                        .all(|&u| p.coord_of_core(u).hop_distance(ca) >= 3);
                    if far {
                        pairs.push((a, b));
                        used.extend([a, b]);
                        break;
                    }
                }
            }
            if pairs.len() == 2 {
                break;
            }
        }
        assert_eq!(pairs.len(), 2);
        let mut sim = ThermalSim::new(p.clone(), ThermalParams::default(), 11);
        let payloads = vec![random_bits(24, 4), random_bits(24, 5)];
        let channels: Vec<ChannelConfig> = pairs
            .iter()
            .map(|&(tx, rx)| ChannelConfig::new(vec![tx], rx, 1.0))
            .collect();
        let report = run_multi_channel(&mut sim, &channels, &payloads);
        assert_eq!(report.channels.len(), 2);
        assert!((report.aggregate_rate_bps() - 2.0).abs() < 1e-9);
        assert!(
            report.aggregate_ber() <= 0.2,
            "ber {}",
            report.aggregate_ber()
        );
    }

    #[test]
    fn higher_rate_increases_error() {
        let p = plan();
        let (tx, rx) = vertical_pair(&p);
        let payload = random_bits(48, 6);
        let mut slow_sim = ThermalSim::new(p.clone(), ThermalParams::default(), 9);
        let slow = ChannelConfig::new(vec![tx], rx, 1.0).transfer(&mut slow_sim, &payload);
        let mut fast_sim = ThermalSim::new(p.clone(), ThermalParams::default(), 9);
        let fast = ChannelConfig::new(vec![tx], rx, 10.0).transfer(&mut fast_sim, &payload);
        assert!(
            fast.ber() >= slow.ber(),
            "fast {} vs slow {}",
            fast.ber(),
            slow.ber()
        );
        assert!(fast.ber() > 0.05, "10 bps on 1 hop should degrade");
    }
}
