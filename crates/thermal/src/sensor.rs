//! Core temperature sensors.
//!
//! Xeon cores expose their temperature at 1 °C granularity; the attacker is
//! conservatively assumed to read only the sensor of the core running its
//! own thread (paper Sec. IV). Reducing resolution or rate is the defense
//! discussed there, so both are parameters.

use serde::{Deserialize, Serialize};

/// A quantizing, noisy temperature sensor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TempSensor {
    /// Quantization step (°C); real Xeon sensors report at 1 °C.
    pub resolution: f64,
    /// Gaussian-ish measurement noise applied before quantization (°C).
    pub noise: f64,
    /// Sampling rate available to user space (Hz).
    pub sample_rate: f64,
}

impl Default for TempSensor {
    fn default() -> Self {
        Self {
            resolution: 1.0,
            noise: 0.25,
            sample_rate: 50.0,
        }
    }
}

impl TempSensor {
    /// A degraded sensor (defense): coarser steps and/or slower sampling.
    pub fn degraded(resolution: f64, sample_rate: f64) -> Self {
        Self {
            resolution,
            sample_rate,
            ..Self::default()
        }
    }

    /// Quantizes a model-truth temperature into a reading. `jitter` is a
    /// uniform sample in `[-1, 1]` supplied by the caller's RNG.
    pub fn read(&self, truth: f64, jitter: f64) -> f64 {
        let noisy = truth + jitter * self.noise;
        if self.resolution <= 0.0 {
            return noisy;
        }
        (noisy / self.resolution).floor() * self.resolution
    }

    /// Seconds between two consecutive samples.
    pub fn sample_period(&self) -> f64 {
        1.0 / self.sample_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_to_resolution() {
        let s = TempSensor {
            resolution: 1.0,
            noise: 0.0,
            sample_rate: 50.0,
        };
        assert_eq!(s.read(36.7, 0.0), 36.0);
        assert_eq!(s.read(36.99, 0.0), 36.0);
        assert_eq!(s.read(37.01, 0.0), 37.0);
    }

    #[test]
    fn coarse_resolution_hides_small_swings() {
        let s = TempSensor::degraded(4.0, 50.0);
        assert_eq!(s.read(36.5, 0.0), s.read(38.5, 0.0));
    }

    #[test]
    fn zero_resolution_passes_through() {
        let s = TempSensor {
            resolution: 0.0,
            noise: 0.0,
            sample_rate: 10.0,
        };
        assert!((s.read(36.54, 0.0) - 36.54).abs() < 1e-12);
    }

    #[test]
    fn sample_period_inverse_of_rate() {
        let s = TempSensor::default();
        assert!((s.sample_period() - 0.02).abs() < 1e-12);
    }
}
