//! Manchester encoding of the covert bitstream (paper Sec. IV-A).
//!
//! Each bit occupies one bit period split into two half-bit slots: a `1` is
//! transmitted as *stress-then-idle*, a `0` as *idle-then-stress*. Every bit
//! therefore carries one thermal edge and the duty cycle is 50% regardless
//! of payload, which suppresses the thermal bias a monotonic pattern would
//! accumulate (the reason [Bartolini et al.] suggested it and this paper
//! adopts it).

use crate::power::ActivityLevel;

/// The signature bit sequence prepended to every transmission; the decoder
/// searches the sampling offset that decodes it correctly (Sec. IV-A).
pub const PREAMBLE: [bool; 8] = [true, false, true, false, true, false, true, true];

/// Expands `bits` into per-half-bit activity levels (2 entries per bit).
pub fn manchester(bits: &[bool]) -> Vec<ActivityLevel> {
    let mut out = Vec::with_capacity(bits.len() * 2);
    for &b in bits {
        if b {
            out.push(ActivityLevel::Stress);
            out.push(ActivityLevel::Idle);
        } else {
            out.push(ActivityLevel::Idle);
            out.push(ActivityLevel::Stress);
        }
    }
    out
}

/// Non-return-to-zero encoding (1 entry per bit, full-period level) — the
/// baseline the encoding ablation compares Manchester against.
pub fn nrz(bits: &[bool]) -> Vec<ActivityLevel> {
    bits.iter()
        .map(|&b| {
            if b {
                ActivityLevel::Stress
            } else {
                ActivityLevel::Idle
            }
        })
        .collect()
}

/// Prepends the preamble to a payload.
pub fn frame(payload: &[bool]) -> Vec<bool> {
    let mut framed = Vec::with_capacity(PREAMBLE.len() + payload.len());
    framed.extend_from_slice(&PREAMBLE);
    framed.extend_from_slice(payload);
    framed
}

/// Packs bytes into a bit vector, MSB first (convenience for sending real
/// payloads over the channel).
pub fn bytes_to_bits(data: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(data.len() * 8);
    for &byte in data {
        for i in (0..8).rev() {
            bits.push((byte >> i) & 1 == 1);
        }
    }
    bits
}

/// Reassembles bits (MSB first) into bytes; trailing bits that do not fill
/// a byte are dropped.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::ActivityLevel::{Idle, Stress};

    #[test]
    fn manchester_shape() {
        assert_eq!(manchester(&[true]), vec![Stress, Idle]);
        assert_eq!(manchester(&[false]), vec![Idle, Stress]);
        assert_eq!(manchester(&[true, false]).len(), 4);
    }

    #[test]
    fn manchester_has_balanced_duty_cycle() {
        let bits = vec![true; 64];
        let levels = manchester(&bits);
        let stress = levels.iter().filter(|&&l| l == Stress).count();
        assert_eq!(stress, 64);
        assert_eq!(levels.len(), 128);
    }

    #[test]
    fn nrz_is_unbalanced_for_monotone_input() {
        let levels = nrz(&[true; 16]);
        assert!(levels.iter().all(|&l| l == Stress));
    }

    #[test]
    fn frame_prepends_preamble() {
        let f = frame(&[true, true]);
        assert_eq!(&f[..8], &PREAMBLE);
        assert_eq!(&f[8..], &[true, true]);
    }

    #[test]
    fn byte_round_trip() {
        let data = [0xA5u8, 0x3C, 0xFF, 0x00];
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), data);
    }
}
