//! The lumped-RC thermal grid.

use coremap_mesh::{Direction, GridDim, TileCoord};

use crate::ThermalParams;

/// One thermal node per grid position plus a shared heatsink node.
///
/// Integration is explicit (forward Euler); [`ThermalParams::is_stable`] is
/// asserted at construction.
#[derive(Debug, Clone)]
pub struct RcGrid {
    dim: GridDim,
    params: ThermalParams,
    temps: Vec<f64>,
    heatsink: f64,
}

impl RcGrid {
    /// Creates a grid at thermal equilibrium with all tiles idle.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate the stability bound.
    pub fn new(dim: GridDim, params: ThermalParams) -> Self {
        assert!(
            params.is_stable(),
            "dt {} too large for stability bound {}",
            params.dt,
            params.tile_capacitance / params.max_tile_conductance()
        );
        // Analytic idle equilibrium: heatsink absorbs all idle power.
        let total_idle = params.idle_power * dim.tile_count() as f64;
        let heatsink = params.ambient + total_idle / params.heatsink_to_ambient;
        let tile = heatsink + params.idle_power / params.sink_conductance;
        Self {
            dim,
            params,
            temps: vec![tile; dim.tile_count()],
            heatsink,
        }
    }

    /// Grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Parameters in use.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Temperature of a tile (°C, unquantized model truth).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn temp(&self, coord: TileCoord) -> f64 {
        self.temps[self.dim.linear_index(coord)]
    }

    /// Heatsink temperature (°C).
    pub fn heatsink_temp(&self) -> f64 {
        self.heatsink
    }

    /// Advances the model by one `dt` with the given per-tile power input
    /// (W, row-major, length = tile count).
    ///
    /// # Panics
    ///
    /// Panics if `powers` has the wrong length.
    pub fn step(&mut self, powers: &[f64]) {
        assert_eq!(powers.len(), self.temps.len(), "power vector length");
        let p = &self.params;
        let mut next = self.temps.clone();
        let mut sink_flux = 0.0;
        for row in 0..self.dim.rows {
            for col in 0..self.dim.cols {
                let coord = TileCoord::new(row, col);
                let i = self.dim.linear_index(coord);
                let t = self.temps[i];
                let mut flux = powers[i] + p.sink_conductance * (self.heatsink - t);
                sink_flux += p.sink_conductance * (t - self.heatsink);
                for (dir, n) in coord.neighbors(self.dim) {
                    let g = if dir.is_vertical() {
                        p.vertical_coupling
                    } else {
                        p.horizontal_coupling
                    };
                    flux += g * (self.temps[self.dim.linear_index(n)] - t);
                }
                next[i] = t + p.dt * flux / p.tile_capacitance;
            }
        }
        self.heatsink += p.dt * (sink_flux + p.heatsink_to_ambient * (p.ambient - self.heatsink))
            / p.heatsink_capacitance;
        self.temps = next;
    }

    /// Runs `n` steps with constant power input.
    pub fn run(&mut self, powers: &[f64], n: usize) {
        for _ in 0..n {
            self.step(powers);
        }
    }

    /// Convenience: coupling conductance along `dir`.
    pub fn coupling(&self, dir: Direction) -> f64 {
        if dir.is_vertical() {
            self.params.vertical_coupling
        } else {
            self.params.horizontal_coupling
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_powers(dim: GridDim, p: &ThermalParams) -> Vec<f64> {
        vec![p.idle_power; dim.tile_count()]
    }

    #[test]
    fn idle_equilibrium_is_stationary() {
        let dim = GridDim::new(5, 6);
        let p = ThermalParams::default();
        let mut g = RcGrid::new(dim, p);
        let before = g.temp(TileCoord::new(2, 2));
        g.run(&idle_powers(dim, &p), 200);
        let after = g.temp(TileCoord::new(2, 2));
        assert!((before - after).abs() < 0.05, "{before} vs {after}");
    }

    /// Peak-to-peak temperature swing at `probe` while `hot` toggles
    /// between stress and idle at `hz` — the quantity the covert channel
    /// actually modulates (the slow heatsink common mode does not follow
    /// the bit pattern and cancels out of this measurement).
    fn ac_swing(hz: f64, hot: TileCoord, probe: TileCoord) -> f64 {
        let dim = GridDim::new(5, 6);
        let p = ThermalParams::default();
        let mut g = RcGrid::new(dim, p);
        let steps_per_half = ((0.5 / hz) / p.dt).round() as usize;
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        let cycles = 24;
        for c in 0..cycles {
            for half in 0..2 {
                let mut powers = idle_powers(dim, &p);
                if half == 0 {
                    powers[dim.linear_index(hot)] = p.stress_power;
                }
                for _ in 0..steps_per_half {
                    g.step(&powers);
                    if c >= cycles - 4 {
                        lo = lo.min(g.temp(probe));
                        hi = hi.max(g.temp(probe));
                    }
                }
            }
        }
        hi - lo
    }

    #[test]
    fn modulated_heat_decays_with_distance_paper_fig6_shape() {
        let hot = TileCoord::new(2, 2);
        let dt_self = ac_swing(1.0, hot, hot);
        let dt_v1 = ac_swing(1.0, hot, TileCoord::new(1, 2));
        let dt_v2 = ac_swing(1.0, hot, TileCoord::new(0, 2));
        let dt_h1 = ac_swing(1.0, hot, TileCoord::new(2, 1));
        // Source swings on the order of the paper's 34->48C trace.
        assert!(dt_self > 8.0 && dt_self < 20.0, "self swing {dt_self}");
        // 1-hop vertical clears the 1C sensor quantization comfortably.
        assert!(dt_v1 > 1.5 && dt_v1 < 5.0, "vertical 1-hop {dt_v1}");
        // Horizontal neighbours couple more weakly (tile aspect ratio,
        // paper Sec. V-A).
        assert!(dt_h1 < dt_v1, "horizontal {dt_h1} vs vertical {dt_v1}");
        // 2-hop drops near/below the quantization floor (unstable decode,
        // paper Fig. 6/7) but is still physically present.
        assert!(dt_v2 < dt_v1 / 2.0, "2-hop {dt_v2} vs 1-hop {dt_v1}");
        assert!(dt_v2 > 0.05, "2-hop nonzero: {dt_v2}");
    }

    #[test]
    fn higher_bit_rates_attenuate_the_received_swing() {
        let hot = TileCoord::new(2, 2);
        let probe = TileCoord::new(1, 2);
        let slow = ac_swing(1.0, hot, probe);
        let fast = ac_swing(4.0, hot, probe);
        assert!(fast < slow, "low-pass behaviour: {fast} vs {slow}");
    }

    #[test]
    fn energy_flows_toward_ambient() {
        let dim = GridDim::new(3, 3);
        let p = ThermalParams::default();
        let mut g = RcGrid::new(dim, p);
        // Crank all tiles, then idle: temperatures must decay toward the
        // idle equilibrium.
        let hot = vec![p.stress_power; dim.tile_count()];
        g.run(&hot, 2000);
        let peak = g.temp(TileCoord::new(1, 1));
        let idle = vec![p.idle_power; dim.tile_count()];
        g.run(&idle, 20_000);
        let settled = g.temp(TileCoord::new(1, 1));
        assert!(settled < peak - 5.0);
        assert!(settled > p.ambient);
    }

    #[test]
    fn tile_time_constant_is_subsecond() {
        // The channel's bandwidth depends on the tile time constant; verify
        // a step input reaches ~63% of its swing within ~C/G seconds.
        let dim = GridDim::new(5, 6);
        let p = ThermalParams::default();
        let mut g = RcGrid::new(dim, p);
        let mut powers = vec![p.idle_power; dim.tile_count()];
        let hot = TileCoord::new(2, 3);
        powers[dim.linear_index(hot)] = p.stress_power;
        let t0 = g.temp(hot);
        // Measure the (near-)asymptotic swing.
        let mut probe = g.clone();
        probe.run(&powers, 6000);
        let swing = probe.temp(hot) - t0;
        let tau = p.tile_capacitance / p.max_tile_conductance();
        let steps = (tau / p.dt).ceil() as usize;
        g.run(&powers, steps);
        let frac = (g.temp(hot) - t0) / swing;
        assert!(frac > 0.35 && frac < 0.95, "rise fraction {frac}");
        assert!(tau < 0.2, "time constant {tau} too slow for multi-bps");
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_dt_rejected() {
        let p = ThermalParams {
            dt: 10.0,
            ..ThermalParams::default()
        };
        let _ = RcGrid::new(GridDim::new(2, 2), p);
    }
}
