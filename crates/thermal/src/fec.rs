//! Forward error correction for the covert channel.
//!
//! The paper reports raw error probabilities without "any additional error
//! correction scheme" (Sec. V). This module is the natural extension: with
//! a modest-rate code, marginal channels (2-hop pairs, high bit rates)
//! become usable at the cost of goodput. The FEC ablation benchmark
//! quantifies the trade.

#![allow(clippy::needless_range_loop)] // burst-injection loops index coded bits

use serde::{Deserialize, Serialize};

/// A block error-correcting code over bits.
pub trait Code {
    /// Expands payload bits into coded bits.
    fn encode(&self, bits: &[bool]) -> Vec<bool>;
    /// Decodes coded bits back into payload bits (best effort).
    fn decode(&self, coded: &[bool]) -> Vec<bool>;
    /// Payload bits per coded bit.
    fn rate(&self) -> f64;
}

/// `n`-fold repetition with majority decode; corrects `(n-1)/2` errors per
/// payload bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repetition {
    n: usize,
}

impl Repetition {
    /// Creates an `n`-fold repetition code.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is odd and at least 3 (majority must be defined).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3 && n % 2 == 1, "repetition factor must be odd >= 3");
        Self { n }
    }
}

impl Code for Repetition {
    fn encode(&self, bits: &[bool]) -> Vec<bool> {
        bits.iter()
            .flat_map(|&b| std::iter::repeat_n(b, self.n))
            .collect()
    }

    fn decode(&self, coded: &[bool]) -> Vec<bool> {
        coded
            .chunks(self.n)
            .map(|c| c.iter().filter(|&&b| b).count() * 2 > c.len())
            .collect()
    }

    fn rate(&self) -> f64 {
        1.0 / self.n as f64
    }
}

/// Hamming(7,4): corrects any single bit error per 7-bit block. Payloads
/// are padded to a multiple of 4 bits; the caller tracks the true length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hamming74;

impl Hamming74 {
    /// Creates the code.
    pub fn new() -> Self {
        Self
    }

    fn encode_block(d: [bool; 4]) -> [bool; 7] {
        let p1 = d[0] ^ d[1] ^ d[3];
        let p2 = d[0] ^ d[2] ^ d[3];
        let p3 = d[1] ^ d[2] ^ d[3];
        // Positions (1-indexed): p1 p2 d1 p3 d2 d3 d4
        [p1, p2, d[0], p3, d[1], d[2], d[3]]
    }

    fn decode_block(mut c: [bool; 7]) -> [bool; 4] {
        let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
        let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
        let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
        let syndrome = (s1 as usize) | ((s2 as usize) << 1) | ((s3 as usize) << 2);
        if syndrome != 0 {
            c[syndrome - 1] ^= true;
        }
        [c[2], c[4], c[5], c[6]]
    }
}

impl Code for Hamming74 {
    fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits.len().div_ceil(4) * 7);
        for chunk in bits.chunks(4) {
            let mut d = [false; 4];
            d[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&Self::encode_block(d));
        }
        out
    }

    fn decode(&self, coded: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(coded.len() / 7 * 4);
        for chunk in coded.chunks(7) {
            if chunk.len() < 7 {
                break; // truncated trailing block
            }
            let mut c = [false; 7];
            c.copy_from_slice(chunk);
            out.extend_from_slice(&Self::decode_block(c));
        }
        out
    }

    fn rate(&self) -> f64 {
        4.0 / 7.0
    }
}

/// Block interleaver around an inner code: coded bits are written into a
/// `depth`-row matrix and transmitted column-wise, so a burst of channel
/// errors (sensor noise bursts, sync wander — the dominant error mode of
/// the thermal channel) lands on *different* codewords and becomes
/// correctable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interleaved<C> {
    inner: C,
    depth: usize,
}

impl<C: Code> Interleaved<C> {
    /// Wraps `inner` with a `depth`-row block interleaver.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(inner: C, depth: usize) -> Self {
        assert!(depth > 0, "interleaver depth must be positive");
        Self { inner, depth }
    }

    fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        let d = self.depth;
        let cols = bits.len().div_ceil(d);
        let mut out = Vec::with_capacity(cols * d);
        for c in 0..cols {
            for r in 0..d {
                out.push(bits.get(r * cols + c).copied().unwrap_or(false));
            }
        }
        out
    }

    fn deinterleave(&self, bits: &[bool], original_len: usize) -> Vec<bool> {
        let d = self.depth;
        let cols = original_len.div_ceil(d);
        let mut out = vec![false; cols * d];
        let mut it = bits.iter();
        for c in 0..cols {
            for r in 0..d {
                if let Some(&b) = it.next() {
                    out[r * cols + c] = b;
                }
            }
        }
        out.truncate(original_len);
        out
    }
}

impl<C: Code> Code for Interleaved<C> {
    fn encode(&self, bits: &[bool]) -> Vec<bool> {
        self.interleave(&self.inner.encode(bits))
    }

    fn decode(&self, coded: &[bool]) -> Vec<bool> {
        // The inner coded length is recoverable from the payload geometry:
        // interleaving pads up to a multiple of depth.
        let inner_len = coded.len();
        let deinterleaved = self.deinterleave(coded, inner_len);
        self.inner.decode(&deinterleaved)
    }

    fn rate(&self) -> f64 {
        self.inner.rate()
    }
}

/// Transfers `payload` through `channel` with the given code applied, and
/// returns `(post-FEC bit error rate, goodput in payload bits/s)`.
pub fn coded_transfer<C: Code>(
    code: &C,
    channel: &crate::ChannelConfig,
    sim: &mut crate::ThermalSim,
    payload: &[bool],
) -> (f64, f64) {
    let coded = code.encode(payload);
    let report = channel.transfer(sim, &coded);
    let decoded = code.decode(&report.decoded);
    let n = payload.len().min(decoded.len());
    let errors = payload[..n]
        .iter()
        .zip(&decoded[..n])
        .filter(|(a, b)| a != b)
        .count()
        + (payload.len() - n);
    let ber = errors as f64 / payload.len() as f64;
    let goodput = channel.bit_rate * code.rate() * (1.0 - ber);
    (ber, goodput)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_round_trip_and_correction() {
        let code = Repetition::new(3);
        let payload = vec![true, false, true, true, false];
        let mut coded = code.encode(&payload);
        assert_eq!(coded.len(), 15);
        // One flipped bit per block must be corrected.
        for block in 0..5 {
            coded[block * 3] ^= true;
        }
        assert_eq!(code.decode(&coded), payload);
    }

    #[test]
    fn hamming_corrects_any_single_error_per_block() {
        let code = Hamming74;
        let payload = vec![true, false, false, true];
        let coded = code.encode(&payload);
        assert_eq!(coded.len(), 7);
        for i in 0..7 {
            let mut corrupted = coded.clone();
            corrupted[i] ^= true;
            assert_eq!(code.decode(&corrupted), payload, "error at {i}");
        }
    }

    #[test]
    fn hamming_pads_partial_blocks() {
        let code = Hamming74;
        let payload = vec![true, true, false];
        let coded = code.encode(&payload);
        assert_eq!(coded.len(), 7);
        let decoded = code.decode(&coded);
        assert_eq!(&decoded[..3], &payload[..]);
        assert!(!decoded[3], "padding decodes as zero");
    }

    #[test]
    fn rates() {
        assert!((Repetition::new(3).rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((Hamming74.rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_repetition_rejected() {
        let _ = Repetition::new(4);
    }

    #[test]
    fn interleaved_round_trip() {
        let code = Interleaved::new(Hamming74, 8);
        let payload = vec![true, false, true, true, false, false, true, false, true];
        let decoded = code.decode(&code.encode(&payload));
        assert_eq!(&decoded[..payload.len()], &payload[..]);
    }

    #[test]
    fn interleaving_spreads_bursts_across_codewords() {
        // A burst of `depth` consecutive channel errors corrupts exactly one
        // bit per deinterleaved column chunk, which Hamming can correct.
        let depth = 8;
        let code = Interleaved::new(Hamming74, depth);
        let payload: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut coded = code.encode(&payload);
        for i in 10..10 + depth {
            coded[i] ^= true; // an 8-bit burst
        }
        let decoded = code.decode(&coded);
        assert_eq!(&decoded[..payload.len()], &payload[..]);
        // The same burst without interleaving wipes out whole blocks.
        let plain = Hamming74;
        let mut coded = plain.encode(&payload);
        for i in 10..10 + depth {
            coded[i] ^= true;
        }
        let decoded = plain.decode(&coded);
        assert_ne!(&decoded[..payload.len()], &payload[..]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn clean_round_trips(payload in prop::collection::vec(any::<bool>(), 0..64)) {
            let rep = Repetition::new(5);
            prop_assert_eq!(rep.decode(&rep.encode(&payload)), payload.clone());
            let ham = Hamming74;
            let decoded = ham.decode(&ham.encode(&payload));
            prop_assert_eq!(&decoded[..payload.len()], &payload[..]);
        }

        #[test]
        fn interleaved_clean_round_trips(
            payload in prop::collection::vec(any::<bool>(), 1..64),
            depth in 1usize..16,
        ) {
            let code = Interleaved::new(Repetition::new(3), depth);
            let decoded = code.decode(&code.encode(&payload));
            prop_assert_eq!(&decoded[..payload.len()], &payload[..]);
        }

        #[test]
        fn hamming_single_error_per_block_always_corrected(
            payload in prop::collection::vec(any::<bool>(), 4..40),
            flip_seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let code = Hamming74;
            let mut coded = code.encode(&payload);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(flip_seed);
            for block in 0..coded.len() / 7 {
                let i = rng.gen_range(0..7);
                coded[block * 7 + i] ^= true;
            }
            let decoded = code.decode(&coded);
            prop_assert_eq!(&decoded[..payload.len()], &payload[..]);
        }
    }
}
