//! Activity-to-power mapping and background thermal noise.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::ThermalParams;

/// Workload level of a core, as controllable from user space (the paper
/// drives `stress-ng` with the branch-miss stressor, Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ActivityLevel {
    /// Core idle / halted.
    #[default]
    Idle,
    /// Branch-miss stress workload (maximum sustained heat; shorthand for
    /// `Workload(StressorKind::BranchMiss)`).
    Stress,
    /// A specific stress workload.
    Workload(StressorKind),
}

impl ActivityLevel {
    /// The tile power this activity draws.
    pub fn power(self, params: &ThermalParams) -> f64 {
        match self {
            ActivityLevel::Idle => params.idle_power,
            ActivityLevel::Stress => params.stress_power,
            ActivityLevel::Workload(kind) => kind.power(params),
        }
    }
}

/// A user-level stress workload, as selectable through `stress-ng`. The
/// paper tried the available stressors and "found the repeated branch
/// misses cause the most heat" (Sec. IV-A); the relative power levels here
/// reflect that finding (pipeline flushes burn peak dynamic power, ALU
/// spins are throttle-friendly, memory streaming stalls the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StressorKind {
    /// `stress-ng --branch`: repeated mispredicted branches.
    BranchMiss,
    /// `stress-ng --cpu` style integer ALU spinning.
    IntAlu,
    /// Floating-point heavy loop.
    FpVector,
    /// Memory streaming (core mostly stalled on DRAM).
    MemoryStream,
}

impl StressorKind {
    /// All stressors, hottest first.
    pub const ALL: [StressorKind; 4] = [
        StressorKind::BranchMiss,
        StressorKind::IntAlu,
        StressorKind::FpVector,
        StressorKind::MemoryStream,
    ];

    /// Fraction of the maximum stress power this workload sustains.
    pub fn power_fraction(self) -> f64 {
        match self {
            StressorKind::BranchMiss => 1.0,
            StressorKind::FpVector => 0.85,
            StressorKind::IntAlu => 0.7,
            StressorKind::MemoryStream => 0.45,
        }
    }

    /// The tile power this stressor draws.
    pub fn power(self, params: &ThermalParams) -> f64 {
        params.idle_power + (params.stress_power - params.idle_power) * self.power_fraction()
    }

    /// Short `stress-ng`-style name.
    pub fn name(self) -> &'static str {
        match self {
            StressorKind::BranchMiss => "branch",
            StressorKind::IntAlu => "cpu",
            StressorKind::FpVector => "matrixprod",
            StressorKind::MemoryStream => "stream",
        }
    }
}

/// Background power noise on a cloud host: small per-tile AR(1) jitter plus
/// occasional multi-second co-tenant bursts on random tiles.
#[derive(Debug, Clone)]
pub struct ThermalNoise {
    /// Standard deviation of the per-step white component (W).
    pub sigma: f64,
    /// AR(1) persistence of the jitter (0 = white, close to 1 = slow).
    pub persistence: f64,
    /// Expected bursts per simulated second per tile.
    pub burst_rate: f64,
    /// Extra power while a burst is active (W).
    pub burst_power: f64,
    /// Mean burst duration (s).
    pub burst_duration: f64,
    state: Vec<f64>,
    burst_left: Vec<f64>,
}

impl ThermalNoise {
    /// No noise (controlled lab environment, as in prior work [Bartolini et
    /// al. EuroSys'16] — the paper stresses its own results come from a
    /// *cloud* environment instead).
    pub fn none(tiles: usize) -> Self {
        Self {
            sigma: 0.0,
            persistence: 0.0,
            burst_rate: 0.0,
            burst_power: 0.0,
            burst_duration: 0.0,
            state: vec![0.0; tiles],
            burst_left: vec![0.0; tiles],
        }
    }

    /// Typical cloud-host background: fraction-of-a-watt jitter and
    /// occasional co-tenant bursts.
    pub fn cloud(tiles: usize) -> Self {
        Self {
            sigma: 0.08,
            persistence: 0.95,
            burst_rate: 0.02,
            burst_power: 3.0,
            burst_duration: 1.5,
            state: vec![0.0; tiles],
            burst_left: vec![0.0; tiles],
        }
    }

    /// Samples the additive power for every tile for one step of `dt`
    /// seconds.
    pub fn sample(&mut self, rng: &mut ChaCha8Rng, dt: f64) -> Vec<f64> {
        let n = self.state.len();
        let mut out = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // indexes state, burst_left and out
        for i in 0..n {
            if self.sigma > 0.0 {
                let white: f64 = rng.gen_range(-1.0..1.0) * self.sigma;
                self.state[i] = self.persistence * self.state[i] + white;
                out[i] += self.state[i].abs();
            }
            if self.burst_rate > 0.0 {
                if self.burst_left[i] > 0.0 {
                    out[i] += self.burst_power;
                    self.burst_left[i] -= dt;
                } else if rng.gen::<f64>() < self.burst_rate * dt {
                    self.burst_left[i] = self.burst_duration * (0.5 + rng.gen::<f64>());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn activity_powers() {
        let p = ThermalParams::default();
        assert_eq!(ActivityLevel::Idle.power(&p), p.idle_power);
        assert_eq!(ActivityLevel::Stress.power(&p), p.stress_power);
    }

    #[test]
    fn branch_misses_are_the_hottest_stressor() {
        let p = ThermalParams::default();
        let branch = StressorKind::BranchMiss.power(&p);
        for s in StressorKind::ALL {
            assert!(s.power(&p) <= branch, "{s:?} hotter than branch misses");
            assert!(s.power(&p) > p.idle_power, "{s:?} must heat the core");
        }
        assert_eq!(branch, p.stress_power);
    }

    #[test]
    fn none_noise_is_zero() {
        let mut n = ThermalNoise::none(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(n.sample(&mut rng, 0.005), vec![0.0; 4]);
    }

    #[test]
    fn cloud_noise_is_bounded_and_nonzero() {
        let mut n = ThermalNoise::cloud(9);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut any = 0.0f64;
        for _ in 0..2000 {
            let s = n.sample(&mut rng, 0.005);
            for v in s {
                assert!((0.0..10.0).contains(&v));
                any += v;
            }
        }
        assert!(any > 0.0);
    }
}
