//! Property tests of the Manchester codec and synchronizing decoder.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_thermal::decode::{ber, synchronize_and_decode};
use coremap_thermal::encoding::{bits_to_bytes, bytes_to_bits, frame, manchester};
use coremap_thermal::power::ActivityLevel;
use proptest::prelude::*;

/// Builds an ideal plateau trace from half-bit activity levels.
fn trace_from_levels(levels: &[ActivityLevel], samples_per_half: usize, lead: usize) -> Vec<f64> {
    let mut out = vec![30.0; lead];
    for &l in levels {
        let v = match l {
            ActivityLevel::Idle => 30.0,
            _ => 40.0, // any stress workload
        };
        out.extend(std::iter::repeat_n(v, samples_per_half));
    }
    out.extend(std::iter::repeat_n(30.0, samples_per_half * 2));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ideal_traces_decode_exactly(
        payload in prop::collection::vec(any::<bool>(), 1..48),
        lead in 0usize..15,
        samples_per_half in 4usize..12,
    ) {
        let framed = frame(&payload);
        let levels = manchester(&framed);
        let trace = trace_from_levels(&levels, samples_per_half, lead);
        let spb = (samples_per_half * 2) as f64;
        let r = synchronize_and_decode(&trace, payload.len(), spb).expect("long enough");
        prop_assert_eq!(&r.payload, &payload);
        prop_assert_eq!(ber(&payload, &r.payload), 0.0);
    }

    #[test]
    fn drift_and_noise_tolerated(
        payload in prop::collection::vec(any::<bool>(), 8..32),
        drift in -4.0f64..4.0,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let framed = frame(&payload);
        let levels = manchester(&framed);
        let mut trace = trace_from_levels(&levels, 10, 5);
        let n = trace.len() as f64;
        for (i, v) in trace.iter_mut().enumerate() {
            *v += drift * i as f64 / n; // slow ramp
            *v += rng.gen_range(-0.8..0.8); // sensor noise below half swing
            *v = v.floor(); // 1-degree quantization
        }
        let r = synchronize_and_decode(&trace, payload.len(), 20.0).expect("long enough");
        // Manchester + offset search must stay essentially error-free at
        // this SNR (10 samples/half, 10-degree swing, <1 degree noise).
        prop_assert!(ber(&payload, &r.payload) <= 0.10, "ber {}", ber(&payload, &r.payload));
    }

    #[test]
    fn byte_bit_round_trip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&data);
        prop_assert_eq!(bits.len(), data.len() * 8);
        prop_assert_eq!(bits_to_bytes(&bits), data);
    }

    #[test]
    fn manchester_is_always_balanced(payload in prop::collection::vec(any::<bool>(), 0..256)) {
        let levels = manchester(&payload);
        let stress = levels.iter().filter(|&&l| l == ActivityLevel::Stress).count();
        prop_assert_eq!(stress * 2, levels.len());
    }
}
