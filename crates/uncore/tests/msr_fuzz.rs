//! Property tests: the MSR fabric never panics and never aliases registers
//! across CHA banks, whatever addresses a (buggy or malicious) tool throws
//! at it.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_mesh::{DieTemplate, FloorplanBuilder};
use coremap_uncore::msr;
use coremap_uncore::{MachineConfig, MsrError, XeonMachine};
use proptest::prelude::*;

fn machine() -> XeonMachine {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("plan");
    XeonMachine::new(plan, MachineConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_msr_access_never_panics(
        ops in prop::collection::vec((any::<u32>(), any::<u64>(), any::<bool>()), 1..64)
    ) {
        let mut m = machine();
        for (addr, value, write) in ops {
            if write {
                let _ = m.write_msr(addr, value);
            } else {
                let _ = m.read_msr(addr);
            }
        }
    }

    #[test]
    fn counter_writes_stay_within_their_bank(
        cha in 0usize..28,
        idx in 0usize..4,
        value in any::<u64>(),
    ) {
        let mut m = machine();
        m.write_msr(msr::counter(cha, idx), value).expect("in range");
        // Every other counter register still reads zero.
        for other_cha in 0..m.cha_count() {
            for other_idx in 0..4 {
                let expect = if (other_cha, other_idx) == (cha, idx) { value } else { 0 };
                prop_assert_eq!(
                    m.read_msr(msr::counter(other_cha, other_idx)).expect("in range"),
                    expect
                );
            }
        }
    }

    #[test]
    fn unknown_addresses_error_consistently(addr in 0u32..0x2000) {
        let m = machine();
        let decodes = addr == msr::MSR_PPIN
            || matches!(msr::decode_cha_msr(addr), Some((cha, _)) if cha < m.cha_count());
        match m.read_msr(addr) {
            Ok(_) => prop_assert!(decodes, "addr {addr:#x} read but should not decode"),
            Err(MsrError::UnknownMsr { .. }) => prop_assert!(!decodes),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}
