//! Property tests: the MESI-like coherence layer keeps its invariants under
//! arbitrary interleavings of loads and stores from all cores.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
use coremap_uncore::cache::LineState;
use coremap_uncore::{MachineConfig, PhysAddr, XeonMachine};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u16, u8),
    Write(u16, u8),
    Flush,
}

fn op_strategy(cores: u16, lines: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..cores, 0..lines).prop_map(|(c, l)| Op::Read(c, l)),
        8 => (0..cores, 0..lines).prop_map(|(c, l)| Op::Write(c, l)),
        1 => Just(Op::Flush),
    ]
}

/// After every operation:
/// * `Modified(c)` implies the line sits dirty in exactly core `c`'s L2;
/// * `Shared(s)` implies every listed sharer holds a clean copy and nobody
///   outside the set holds the line;
/// * `InLlc` implies no L2 holds the line.
fn check_invariants(machine: &XeonMachine, lines: &[PhysAddr]) {
    let cores: Vec<OsCoreId> = machine.os_cores();
    for &pa in lines {
        let holders: Vec<(OsCoreId, bool)> = cores
            .iter()
            .filter_map(|&c| machine.l2_probe(c, pa).map(|d| (c, d)))
            .collect();
        match machine.line_state(pa) {
            LineState::Modified(owner) => {
                assert_eq!(holders.len(), 1, "{pa}: modified line held by {holders:?}");
                assert_eq!(holders[0].0.index(), owner as usize, "{pa}: wrong owner");
                assert!(holders[0].1, "{pa}: modified line must be dirty");
            }
            LineState::Shared(sharers) => {
                assert!(!sharers.is_empty(), "{pa}: empty shared set");
                let holder_ids: Vec<u16> = holders.iter().map(|&(c, _)| c.index() as u16).collect();
                for s in &sharers {
                    assert!(
                        holder_ids.contains(s),
                        "{pa}: sharer {s} lost its copy (holders {holder_ids:?})"
                    );
                }
                for &(c, dirty) in &holders {
                    assert!(
                        sharers.contains(&(c.index() as u16)),
                        "{pa}: cpu{} holds an untracked copy",
                        c.index()
                    );
                    assert!(!dirty, "{pa}: shared copy in cpu{} is dirty", c.index());
                }
            }
            LineState::InLlc => {
                assert!(holders.is_empty(), "{pa}: InLlc but held by {holders:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coherence_invariants_hold(ops in prop::collection::vec(op_strategy(6, 12), 1..120)) {
        // A tiny L2 maximizes eviction pressure.
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build().expect("plan");
        let mut machine = XeonMachine::new(
            plan,
            MachineConfig {
                l2_sets: 2,
                l2_ways: 2,
                ..MachineConfig::default()
            },
        );
        // Lines chosen to collide in the small L2.
        let lines: Vec<PhysAddr> = (0..12u64).map(|i| PhysAddr::new(i * 64)).collect();
        for op in ops {
            match op {
                Op::Read(c, l) => machine.read_line(OsCoreId::new(c), lines[l as usize]),
                Op::Write(c, l) => machine.write_line(OsCoreId::new(c), lines[l as usize]),
                Op::Flush => machine.flush_caches(),
            }
            check_invariants(&machine, &lines);
        }
    }

    #[test]
    fn counter_totals_equal_observable_route_hops(
        pairs in prop::collection::vec((0u16..18, 0u16..18), 1..20)
    ) {
        use coremap_uncore::msr::{counter_ctl, unit_ctl, UNIT_CTL_RESET};
        use coremap_uncore::UncoreEvent;
        use coremap_mesh::{route::route, Direction};

        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build().expect("plan");
        let truth = plan.clone();
        let mut machine = XeonMachine::new(plan, MachineConfig::default());
        for cha in 0..machine.cha_count() {
            machine.write_msr(counter_ctl(cha, 0), UncoreEvent::VertRingBlInUse(Direction::Up).encode()).unwrap();
            machine.write_msr(counter_ctl(cha, 1), UncoreEvent::VertRingBlInUse(Direction::Down).encode()).unwrap();
            machine.write_msr(counter_ctl(cha, 2), UncoreEvent::HorzRingBlInUse(Direction::Left).encode()).unwrap();
            machine.write_msr(counter_ctl(cha, 3), UncoreEvent::HorzRingBlInUse(Direction::Right).encode()).unwrap();
        }

        for (a, b) in pairs {
            if a == b {
                continue;
            }
            let (src, dst) = (OsCoreId::new(a), OsCoreId::new(b));
            let pa = PhysAddr::new(0xAB00);
            // Establish ownership at src, reset, then do one dirty forward.
            machine.write_line(src, pa);
            for cha in 0..machine.cha_count() {
                machine.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
            }
            machine.read_line(dst, pa);

            let observable: usize = route(
                truth.coord_of_core(src),
                truth.coord_of_core(dst),
                truth.dim(),
            )
            .events()
            .iter()
            .filter(|e| truth.is_observable(e.tile))
            .count();
            let measured: u64 = (0..machine.cha_count())
                .map(|cha| {
                    (0..4)
                        .map(|i| {
                            machine
                                .read_msr(coremap_uncore::msr::counter(cha, i))
                                .unwrap()
                        })
                        .sum::<u64>()
                })
                .sum();
            prop_assert_eq!(measured as usize, observable, "{} -> {}", src, dst);
            machine.flush_caches();
        }
    }
}
