//! MSR address map of the simulated machine.
//!
//! The monitoring tool accesses all machine state the way the paper's tool
//! does: through model-specific registers, requiring root. The layout
//! mirrors (in simplified form) the Xeon Scalable uncore PMON programming
//! model: each CHA owns a bank of registers at a fixed stride.

/// The PPIN (Protected Processor Inventory Number) MSR.
pub const MSR_PPIN: u32 = 0x4F;

/// Base address of CHA 0's PMON bank.
pub const CHA_MSR_BASE: u32 = 0x0E00;
/// Address stride between consecutive CHA banks.
pub const CHA_MSR_STRIDE: u32 = 0x10;
/// Offset of the unit control register within a bank.
pub const CHA_UNIT_CTL: u32 = 0x0;
/// Offset of the first counter-control (event select) register.
pub const CHA_CTL0: u32 = 0x1;
/// Offset of the first counter register.
pub const CHA_CTR0: u32 = 0x6;
/// Number of counters per CHA bank.
pub const CHA_COUNTERS: usize = 4;

/// Unit-control bit: writing 1 resets all counters of the bank.
pub const UNIT_CTL_RESET: u64 = 1 << 1;
/// Unit-control bit: while set, the bank's counters are frozen.
pub const UNIT_CTL_FREEZE: u64 = 1 << 8;

/// Address of the unit control register of `cha`.
pub fn unit_ctl(cha: usize) -> u32 {
    CHA_MSR_BASE + cha as u32 * CHA_MSR_STRIDE + CHA_UNIT_CTL
}

/// Address of counter-control register `idx` of `cha`.
///
/// # Panics
///
/// Panics if `idx >= CHA_COUNTERS`.
pub fn counter_ctl(cha: usize, idx: usize) -> u32 {
    assert!(idx < CHA_COUNTERS, "CHA has only {CHA_COUNTERS} counters");
    CHA_MSR_BASE + cha as u32 * CHA_MSR_STRIDE + CHA_CTL0 + idx as u32
}

/// Address of counter register `idx` of `cha`.
///
/// # Panics
///
/// Panics if `idx >= CHA_COUNTERS`.
pub fn counter(cha: usize, idx: usize) -> u32 {
    assert!(idx < CHA_COUNTERS, "CHA has only {CHA_COUNTERS} counters");
    CHA_MSR_BASE + cha as u32 * CHA_MSR_STRIDE + CHA_CTR0 + idx as u32
}

/// Decodes an MSR address into `(cha, register)` if it falls inside a CHA
/// PMON bank.
pub fn decode_cha_msr(addr: u32) -> Option<(usize, ChaRegister)> {
    if addr < CHA_MSR_BASE {
        return None;
    }
    let off = addr - CHA_MSR_BASE;
    let cha = (off / CHA_MSR_STRIDE) as usize;
    let reg = off % CHA_MSR_STRIDE;
    let reg = match reg {
        CHA_UNIT_CTL => ChaRegister::UnitCtl,
        r if (CHA_CTL0..CHA_CTL0 + CHA_COUNTERS as u32).contains(&r) => {
            ChaRegister::CounterCtl((r - CHA_CTL0) as usize)
        }
        r if (CHA_CTR0..CHA_CTR0 + CHA_COUNTERS as u32).contains(&r) => {
            ChaRegister::Counter((r - CHA_CTR0) as usize)
        }
        _ => return None,
    };
    Some((cha, reg))
}

/// A register within a CHA PMON bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaRegister {
    /// The bank-wide control register (freeze / reset).
    UnitCtl,
    /// Event-select register of counter `n`.
    CounterCtl(usize),
    /// Counter register `n`.
    Counter(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trip() {
        for cha in [0usize, 1, 7, 25] {
            assert_eq!(
                decode_cha_msr(unit_ctl(cha)),
                Some((cha, ChaRegister::UnitCtl))
            );
            for idx in 0..CHA_COUNTERS {
                assert_eq!(
                    decode_cha_msr(counter_ctl(cha, idx)),
                    Some((cha, ChaRegister::CounterCtl(idx)))
                );
                assert_eq!(
                    decode_cha_msr(counter(cha, idx)),
                    Some((cha, ChaRegister::Counter(idx)))
                );
            }
        }
    }

    #[test]
    fn ppin_not_in_cha_range() {
        assert_eq!(decode_cha_msr(MSR_PPIN), None);
    }

    #[test]
    fn unused_bank_slots_decode_to_none() {
        // Offsets 0x5 and 0xA..0xF within a bank are unassigned.
        assert_eq!(decode_cha_msr(CHA_MSR_BASE + 0x5), None);
        assert_eq!(decode_cha_msr(CHA_MSR_BASE + 0xA), None);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn counter_index_bounds_checked() {
        let _ = counter(0, 4);
    }
}
