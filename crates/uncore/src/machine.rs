//! The simulated bare-metal Xeon machine.

use std::collections::HashMap;

use coremap_mesh::{
    route, ChaId, Floorplan, GridDim, OsCoreId, Ppin, RoutingDiscipline, TileCoord,
};
use coremap_obs as obs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::{L2Cache, LineState, SliceHash};
use crate::events::{RingClass, UncoreEvent};
use crate::msr::{self, ChaRegister, MSR_PPIN};
use crate::noise::NoiseModel;
use crate::pmon::ChaPmonBox;
use crate::{LineAddr, MsrError, PhysAddr};

/// Construction parameters of a [`XeonMachine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// L2 sets per core (power of two). Scaled down from real silicon so
    /// slice-eviction-set construction runs quickly; the algorithms are
    /// capacity-independent.
    pub l2_sets: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Number of physical-address bits of usable memory.
    pub addr_bits: u32,
    /// The chip's PPIN.
    pub ppin: Ppin,
    /// Secret parameter of the undisclosed LLC slice hash.
    pub slice_hash_secret: u64,
    /// Background-traffic noise.
    pub noise: NoiseModel,
    /// Seed of the machine's internal randomness (noise injection).
    pub noise_seed: u64,
    /// Whether the measuring process has root (MSR) access.
    pub privileged: bool,
    /// Mesh routing discipline. Real Xeons route vertically first; the
    /// horizontal-first variant exists for the routing-assumption
    /// sensitivity study.
    pub routing: RoutingDiscipline,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            l2_sets: 64,
            l2_ways: 8,
            addr_bits: 30,
            ppin: Ppin::new(0xC0DE_0000_0001),
            slice_hash_secret: 0x5EED_CAFE,
            noise: NoiseModel::quiet(),
            noise_seed: 0,
            privileged: true,
            routing: RoutingDiscipline::VerticalFirst,
        }
    }
}

/// Snapshot of the five counters the mapping tool cares about at one CHA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounts {
    /// LLC lookups at the tile's slice.
    pub llc_lookup: u64,
    /// Vertical ingress cycles, "up" label.
    pub up: u64,
    /// Vertical ingress cycles, "down" label.
    pub down: u64,
    /// Horizontal ingress cycles, "left" label (odd-column scrambled).
    pub left: u64,
    /// Horizontal ingress cycles, "right" label (odd-column scrambled).
    pub right: u64,
}

impl ChannelCounts {
    /// Total ring-ingress cycles regardless of direction.
    pub fn ring_total(&self) -> u64 {
        self.up + self.down + self.left + self.right
    }

    /// Total vertical ingress cycles.
    pub fn vertical(&self) -> u64 {
        self.up + self.down
    }

    /// Total horizontal ingress cycles.
    pub fn horizontal(&self) -> u64 {
        self.left + self.right
    }
}

/// A simulated bare-metal Xeon instance: floorplan (hidden ground truth),
/// caches, coherence directory, PMON banks and the MSR fabric to read them.
///
/// High-level operations model what a *pinned user-level worker thread*
/// does; MSR access models what the *root-privileged monitoring tool* does.
#[derive(Debug, Clone)]
pub struct XeonMachine {
    plan: Floorplan,
    cfg: MachineConfig,
    hash: SliceHash,
    boxes: Vec<ChaPmonBox>,
    l2: Vec<L2Cache>,
    directory: HashMap<LineAddr, LineState>,
    rng: ChaCha8Rng,
    op_count: u64,
}

impl XeonMachine {
    /// Boots a machine over a floorplan.
    pub fn new(plan: Floorplan, cfg: MachineConfig) -> Self {
        let n_cha = plan.cha_count();
        let n_core = plan.core_count();
        Self {
            hash: SliceHash::new(cfg.slice_hash_secret, n_cha),
            boxes: (0..n_cha).map(|_| ChaPmonBox::new()).collect(),
            l2: (0..n_core)
                .map(|_| L2Cache::new(cfg.l2_sets, cfg.l2_ways))
                .collect(),
            directory: HashMap::new(),
            rng: ChaCha8Rng::seed_from_u64(cfg.noise_seed),
            op_count: 0,
            plan,
            cfg,
        }
    }

    // --- Identification / topology hints (public CPUID-level info) --------

    /// Number of active CHAs (discoverable on real hardware from uncore
    /// configuration registers).
    pub fn cha_count(&self) -> usize {
        self.plan.cha_count()
    }

    /// Number of OS-visible cores.
    pub fn core_count(&self) -> usize {
        self.plan.core_count()
    }

    /// OS core IDs, ascending.
    pub fn os_cores(&self) -> Vec<OsCoreId> {
        self.plan.cores().collect()
    }

    /// The die's tile-grid dimensions — public knowledge per CPU model
    /// (paper Sec. II-C maps onto a known `T_h x T_w` grid).
    pub fn grid_dim(&self) -> GridDim {
        self.plan.dim()
    }

    /// L2 geometry `(sets, ways)` — public via CPUID on real hardware.
    pub fn l2_geometry(&self) -> (usize, usize) {
        (self.cfg.l2_sets, self.cfg.l2_ways)
    }

    /// Size of the physical address space in bytes.
    pub fn address_space(&self) -> u64 {
        1u64 << self.cfg.addr_bits
    }

    /// **Ground truth** floorplan — the hidden layout the methodology
    /// reconstructs. Only verification and test code may consult this; the
    /// mapping tool itself must restrict itself to MSRs and cache
    /// operations.
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// Grants or revokes root privileges for MSR access.
    pub fn set_privileged(&mut self, privileged: bool) {
        self.cfg.privileged = privileged;
    }

    /// Machine operations performed so far (diagnostic).
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    // --- MSR fabric --------------------------------------------------------

    /// Reads an MSR.
    ///
    /// # Errors
    ///
    /// [`MsrError::PermissionDenied`] without root, [`MsrError::UnknownMsr`]
    /// for unmapped addresses.
    pub fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        obs::inc("uncore.msr.reads");
        if !self.cfg.privileged {
            return Err(MsrError::PermissionDenied);
        }
        if addr == MSR_PPIN {
            return Ok(self.cfg.ppin.value());
        }
        match msr::decode_cha_msr(addr) {
            Some((cha, reg)) if cha < self.boxes.len() => {
                let b = &self.boxes[cha];
                Ok(match reg {
                    ChaRegister::UnitCtl => b.read_unit_ctl(),
                    ChaRegister::CounterCtl(i) => b.read_ctl(i),
                    ChaRegister::Counter(i) => {
                        // A counter readout is one PMON sample.
                        obs::inc("uncore.pmon.samples");
                        b.read_counter(i)
                    }
                })
            }
            _ => Err(MsrError::UnknownMsr { addr }),
        }
    }

    /// Writes an MSR.
    ///
    /// # Errors
    ///
    /// [`MsrError::PermissionDenied`] without root, [`MsrError::UnknownMsr`]
    /// for unmapped addresses, [`MsrError::ReadOnly`] for the PPIN.
    pub fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        obs::inc("uncore.msr.writes");
        if !self.cfg.privileged {
            return Err(MsrError::PermissionDenied);
        }
        if addr == MSR_PPIN {
            return Err(MsrError::ReadOnly { addr });
        }
        match msr::decode_cha_msr(addr) {
            Some((cha, reg)) if cha < self.boxes.len() => {
                let b = &mut self.boxes[cha];
                match reg {
                    ChaRegister::UnitCtl => b.write_unit_ctl(value),
                    ChaRegister::CounterCtl(i) => b.write_ctl(i, value),
                    ChaRegister::Counter(i) => b.write_counter(i, value),
                }
                Ok(())
            }
            _ => Err(MsrError::UnknownMsr { addr }),
        }
    }

    // --- Cache / coherence operations (user-level worker threads) ---------

    /// The CHA homing a physical address under the undisclosed slice hash.
    /// Exposed for tests; the mapping tool discovers homes by measurement.
    pub fn home_of(&self, pa: PhysAddr) -> ChaId {
        ChaId::new(self.hash.slice_of(pa.line()) as u16)
    }

    /// A worker thread pinned to `core` stores to `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core.
    pub fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.begin_op();
        let line = pa.line();
        let home = self.hash.slice_of(line) as u16;
        let home_coord = self.plan.coord_of_cha(ChaId::new(home));
        let core_coord = self.plan.coord_of_core(core);
        let state = self
            .directory
            .get(&line)
            .cloned()
            .unwrap_or(LineState::InLlc);
        match state {
            LineState::Modified(c) if c as usize == core.index() => {
                self.l2[core.index()].touch(line);
            }
            LineState::Modified(other) => {
                let other_coord = self.plan.coord_of_core(OsCoreId::new(other));
                self.record_llc_lookup(home);
                // Ownership request to the home and snoop to the owner ride
                // the AD ring; the dirty data forward rides BL.
                self.transfer_on(RingClass::Ad, core_coord, home_coord);
                self.transfer_on(RingClass::Ad, home_coord, other_coord);
                self.transfer(other_coord, core_coord);
                self.l2[other as usize].remove(line);
                self.directory
                    .insert(line, LineState::Modified(core.index() as u16));
                self.insert_l2(core, line, true);
            }
            LineState::Shared(sharers) => {
                self.record_llc_lookup(home);
                // Upgrade request on AD, invalidations to the other sharers
                // on IV.
                self.transfer_on(RingClass::Ad, core_coord, home_coord);
                let had_copy = sharers.contains(&(core.index() as u16));
                for s in sharers {
                    if s as usize != core.index() {
                        let s_coord = self.plan.coord_of_core(OsCoreId::new(s));
                        self.transfer_on(RingClass::Iv, home_coord, s_coord);
                        self.l2[s as usize].remove(line);
                    }
                }
                if !had_copy {
                    self.transfer(home_coord, core_coord);
                }
                self.directory
                    .insert(line, LineState::Modified(core.index() as u16));
                self.insert_l2(core, line, true);
            }
            LineState::InLlc => {
                self.record_llc_lookup(home);
                self.transfer_on(RingClass::Ad, core_coord, home_coord);
                self.transfer(home_coord, core_coord);
                self.directory
                    .insert(line, LineState::Modified(core.index() as u16));
                self.insert_l2(core, line, true);
            }
        }
    }

    /// A worker thread pinned to `core` loads from `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core.
    pub fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        self.begin_op();
        let line = pa.line();
        let home = self.hash.slice_of(line) as u16;
        let home_coord = self.plan.coord_of_cha(ChaId::new(home));
        let core_coord = self.plan.coord_of_core(core);
        let me = core.index() as u16;
        let state = self
            .directory
            .get(&line)
            .cloned()
            .unwrap_or(LineState::InLlc);
        match state {
            LineState::Modified(c) if c == me => {
                self.l2[core.index()].touch(line);
            }
            LineState::Modified(other) => {
                // Dirty data is forwarded from the owner's tile to the
                // reader across the mesh — the directed transfer the
                // paper's traffic-generation step relies on (Sec. II-B).
                // The read request travels to the home and the snoop to the
                // owner on the AD ring first.
                let other_coord = self.plan.coord_of_core(OsCoreId::new(other));
                self.record_llc_lookup(home);
                self.transfer_on(RingClass::Ad, core_coord, home_coord);
                self.transfer_on(RingClass::Ad, home_coord, other_coord);
                self.transfer(other_coord, core_coord);
                self.l2[other as usize].mark_clean(line);
                self.directory
                    .insert(line, LineState::Shared(sorted_pair(other, me)));
                self.insert_l2(core, line, false);
            }
            LineState::Shared(mut sharers) => {
                if sharers.contains(&me) {
                    self.l2[core.index()].touch(line);
                } else {
                    self.record_llc_lookup(home);
                    self.transfer_on(RingClass::Ad, core_coord, home_coord);
                    self.transfer(home_coord, core_coord);
                    sharers.push(me);
                    sharers.sort_unstable();
                    self.directory.insert(line, LineState::Shared(sharers));
                    self.insert_l2(core, line, false);
                }
            }
            LineState::InLlc => {
                self.record_llc_lookup(home);
                self.transfer_on(RingClass::Ad, core_coord, home_coord);
                self.transfer(home_coord, core_coord);
                self.directory.insert(line, LineState::Shared(vec![me]));
                self.insert_l2(core, line, false);
            }
        }
    }

    /// Number of integrated memory controllers on the die.
    pub fn imc_count(&self) -> usize {
        self.plan.topology().imc_positions().len()
    }

    /// Measures the uncached memory access latency (in mesh-hop units plus
    /// a constant DRAM term) from `core` to memory served by IMC `imc` —
    /// the observable used by latency-based mapping approaches [Horro et
    /// al., DAC'19]. On real hardware this is a pointer-chase over
    /// channel-interleaved allocations; the paper argues two IMCs are not
    /// enough to locate tiles on Xeon, which the latency baseline
    /// reproduces.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not enabled or `imc` is out of range.
    pub fn memory_latency(&mut self, core: OsCoreId, imc: usize) -> u64 {
        const DRAM_CONST: u64 = 60;
        const HOP_COST: u64 = 2;
        self.begin_op();
        let imc_pos = self.plan.topology().imc_positions()[imc];
        let core_pos = self.plan.coord_of_core(core);
        // Round trip: request out, data back.
        DRAM_CONST + 2 * HOP_COST * core_pos.hop_distance(imc_pos) as u64
    }

    /// Writes back and invalidates every cache on the machine (`wbinvd`),
    /// generating writeback traffic for dirty lines. The monitoring tool
    /// runs this before arming counters so earlier experiments cannot leak
    /// into the next observation window.
    pub fn flush_caches(&mut self) {
        obs::inc("uncore.cache.flushes");
        for core_idx in 0..self.l2.len() {
            let drained = self.l2[core_idx].drain();
            let core_coord = self.plan.coord_of_core(OsCoreId::new(core_idx as u16));
            for (line, dirty) in drained {
                if dirty {
                    let home = self.hash.slice_of(line) as u16;
                    let home_coord = self.plan.coord_of_cha(ChaId::new(home));
                    self.record_llc_lookup(home);
                    self.transfer(core_coord, home_coord);
                }
                self.directory.insert(line, LineState::InLlc);
            }
        }
    }

    /// Coherence state of a line (test/diagnostic accessor).
    pub fn line_state(&self, pa: PhysAddr) -> LineState {
        self.directory
            .get(&pa.line())
            .cloned()
            .unwrap_or(LineState::InLlc)
    }

    /// Whether `core`'s L2 currently holds the line, and its dirty bit
    /// (test/diagnostic accessor for coherence-invariant checking).
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an enabled core.
    #[allow(clippy::expect_used)]
    pub fn l2_probe(&self, core: OsCoreId, pa: PhysAddr) -> Option<bool> {
        let line = pa.line();
        let l2 = &self.l2[core.index()];
        l2.contains(line).then(|| {
            // Peek the dirty bit without disturbing LRU state.
            let mut probe = l2.clone();
            // audit: allow(panic-safety): infallible — the `contains` check guards the closure, and `touch` succeeds for any held line
            probe.touch(line).expect("contains implies touch")
        })
    }

    // --- Internals ---------------------------------------------------------

    fn begin_op(&mut self) {
        self.op_count += 1;
        let expected = self.cfg.noise.transfers_per_op;
        if expected <= 0.0 {
            return;
        }
        let mut n = expected.floor() as u32;
        if self.rng.gen::<f64>() < expected.fract() {
            n += 1;
        }
        let dim = self.plan.dim();
        for _ in 0..n {
            let a = TileCoord::new(
                self.rng.gen_range(0..dim.rows),
                self.rng.gen_range(0..dim.cols),
            );
            let b = TileCoord::new(
                self.rng.gen_range(0..dim.rows),
                self.rng.gen_range(0..dim.cols),
            );
            self.transfer(a, b);
            // Background cache activity also produces stray LLC lookups.
            let cha = self.rng.gen_range(0..self.boxes.len());
            self.boxes[cha].record(UncoreEvent::LlcLookup, 1);
        }
    }

    /// Routes one cache-line data transfer on the BL ring.
    fn transfer(&mut self, from: TileCoord, to: TileCoord) {
        self.transfer_on(RingClass::Bl, from, to);
    }

    /// Routes one message across the mesh on the given ring class,
    /// recording ingress ring events at every tile with an active CHA.
    fn transfer_on(&mut self, ring: RingClass, from: TileCoord, to: TileCoord) {
        if from == to {
            return;
        }
        let r = route::route_with(from, to, self.plan.dim(), self.cfg.routing);
        for ev in r.events() {
            if let Some(cha) = self.plan.tile(ev.tile).kind().cha() {
                self.boxes[cha.index()].record(
                    UncoreEvent::from_ingress_label_on(ring, ev.observed_label),
                    1,
                );
            }
        }
    }

    fn record_llc_lookup(&mut self, home: u16) {
        self.boxes[home as usize].record(UncoreEvent::LlcLookup, 1);
    }

    fn insert_l2(&mut self, core: OsCoreId, line: LineAddr, dirty: bool) {
        let core_coord = self.plan.coord_of_core(core);
        if let Some((victim, vdirty)) = self.l2[core.index()].insert(line, dirty) {
            let vhome = self.hash.slice_of(victim) as u16;
            if vdirty {
                // Dirty writeback to the victim's home slice: the targeted
                // eviction traffic of paper Sec. II-A.
                let vhome_coord = self.plan.coord_of_cha(ChaId::new(vhome));
                self.record_llc_lookup(vhome);
                self.transfer(core_coord, vhome_coord);
                self.directory.insert(victim, LineState::InLlc);
            } else {
                // Silent drop of a clean line: forget this sharer.
                let me = core.index() as u16;
                if let Some(LineState::Shared(sharers)) = self.directory.get_mut(&victim) {
                    sharers.retain(|&s| s != me);
                    if sharers.is_empty() {
                        self.directory.insert(victim, LineState::InLlc);
                    }
                }
            }
        }
    }
}

fn sorted_pair(a: u16, b: u16) -> Vec<u16> {
    if a == b {
        vec![a]
    } else if a < b {
        vec![a, b]
    } else {
        vec![b, a]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::msr::{counter, counter_ctl, unit_ctl, UNIT_CTL_FREEZE, UNIT_CTL_RESET};
    use coremap_mesh::{DieTemplate, Direction, FloorplanBuilder};

    fn machine() -> XeonMachine {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        XeonMachine::new(plan, MachineConfig::default())
    }

    /// Program all four ring counters plus... we only have 4 counters, so
    /// arm the four ring directions (the mapping tool does the same and
    /// uses a separate pass for LLC lookups).
    fn arm_ring(m: &mut XeonMachine) {
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
            m.write_msr(
                counter_ctl(cha, 0),
                UncoreEvent::VertRingBlInUse(Direction::Up).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 1),
                UncoreEvent::VertRingBlInUse(Direction::Down).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 2),
                UncoreEvent::HorzRingBlInUse(Direction::Left).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 3),
                UncoreEvent::HorzRingBlInUse(Direction::Right).encode(),
            )
            .unwrap();
        }
    }

    /// Number of route hops that land on tiles with an active CHA (the only
    /// ones whose ingress events are observable).
    fn observable_hops(m: &XeonMachine, from: TileCoord, to: TileCoord) -> usize {
        route::route(from, to, m.grid_dim())
            .events()
            .iter()
            .filter(|e| m.floorplan().is_observable(e.tile))
            .count()
    }

    fn ring_counts(m: &XeonMachine, cha: usize) -> ChannelCounts {
        ChannelCounts {
            llc_lookup: 0,
            up: m.read_msr(counter(cha, 0)).unwrap(),
            down: m.read_msr(counter(cha, 1)).unwrap(),
            left: m.read_msr(counter(cha, 2)).unwrap(),
            right: m.read_msr(counter(cha, 3)).unwrap(),
        }
    }

    #[test]
    fn ppin_readable_with_root_only() {
        let mut m = machine();
        assert_eq!(
            m.read_msr(MSR_PPIN).unwrap(),
            MachineConfig::default().ppin.value()
        );
        m.set_privileged(false);
        assert_eq!(m.read_msr(MSR_PPIN), Err(MsrError::PermissionDenied));
    }

    #[test]
    fn ppin_is_read_only() {
        let mut m = machine();
        assert!(matches!(
            m.write_msr(MSR_PPIN, 1),
            Err(MsrError::ReadOnly { .. })
        ));
    }

    #[test]
    fn unknown_msr_rejected() {
        let m = machine();
        assert!(matches!(
            m.read_msr(0x1234_5678),
            Err(MsrError::UnknownMsr { .. })
        ));
    }

    #[test]
    fn dirty_forward_crosses_the_mesh() {
        let mut m = machine();
        // Find a PA whose home is co-located with some core; use cpu0 as
        // writer and a far core as reader.
        let writer = OsCoreId::new(0);
        let reader = OsCoreId::new(17);
        let pa = PhysAddr::new(0x4_0000);
        arm_ring(&mut m);
        m.write_line(writer, pa); // fetch traffic (home -> writer)
                                  // Reset counters, then read from the far core: the only traffic now
                                  // is the dirty forward writer -> reader.
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
        }
        m.read_line(reader, pa);
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        let w = m.floorplan().coord_of_core(writer);
        let r = m.floorplan().coord_of_core(reader);
        assert_eq!(total as usize, observable_hops(&m, w, r));
    }

    #[test]
    fn second_write_after_read_is_silent_upgrade() {
        let mut m = machine();
        let writer = OsCoreId::new(0);
        let reader = OsCoreId::new(5);
        let pa = PhysAddr::new(0x8_0000);
        m.write_line(writer, pa);
        m.read_line(reader, pa);
        arm_ring(&mut m);
        // Writer still holds the (now shared) line: upgrade, no data motion.
        m.write_line(writer, pa);
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        assert_eq!(total, 0);
        // And the steady-state ping-pong transfer is writer -> reader only.
        m.read_line(reader, pa);
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        let w = m.floorplan().coord_of_core(writer);
        let r = m.floorplan().coord_of_core(reader);
        assert_eq!(total as usize, observable_hops(&m, w, r));
    }

    #[test]
    fn same_tile_core_slice_traffic_stays_local() {
        let mut m = machine();
        // Find a line homed at cpu0's own tile.
        let core = OsCoreId::new(0);
        let cha = m.floorplan().cha_of_core(core);
        let pa = (0..)
            .map(|i| PhysAddr::new(i * 64))
            .find(|&pa| m.home_of(pa) == cha)
            .unwrap();
        arm_ring(&mut m);
        m.write_line(core, pa);
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        assert_eq!(total, 0, "intra-tile fill must not touch the mesh");
    }

    #[test]
    fn dirty_eviction_writes_back_to_home() {
        let mut m = machine();
        let core = OsCoreId::new(3);
        let (sets, ways) = m.l2_geometry();
        // Collect ways+1 lines in the same L2 set.
        let mut lines = Vec::new();
        let mut i = 0u64;
        while lines.len() < ways + 1 {
            let pa = PhysAddr::new(i * 64);
            if (pa.line().value() as usize) & (sets - 1) == 7 {
                lines.push(pa);
            }
            i += 1;
        }
        for &pa in &lines {
            m.write_line(core, pa);
        }
        // The first line must have been evicted and written back.
        assert_eq!(m.line_state(lines[0]), LineState::InLlc);
        assert!(matches!(m.line_state(lines[ways]), LineState::Modified(_)));
    }

    #[test]
    fn flush_writes_back_dirty_lines() {
        let mut m = machine();
        let core = OsCoreId::new(2);
        let pa = PhysAddr::new(0xABC0);
        m.write_line(core, pa);
        assert!(matches!(m.line_state(pa), LineState::Modified(_)));
        m.flush_caches();
        assert_eq!(m.line_state(pa), LineState::InLlc);
        // A subsequent read misses to the home slice again.
        arm_ring(&mut m);
        m.read_line(core, pa);
        let home = m.home_of(pa);
        let h = m.floorplan().coord_of_cha(home);
        let c = m.floorplan().coord_of_core(core);
        let total: u64 = (0..m.cha_count())
            .map(|ch| ring_counts(&m, ch).ring_total())
            .sum();
        assert_eq!(total as usize, observable_hops(&m, h, c));
    }

    #[test]
    fn disabled_tiles_are_invisible_to_pmon() {
        // Disable a tile in the middle of the die, route traffic through it
        // and verify no counter anywhere records events for that tile.
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .disable(TileCoord::new(2, 2))
            .build()
            .unwrap();
        let n_cha = plan.cha_count();
        assert_eq!(n_cha, 27);
        let mut m = XeonMachine::new(plan, MachineConfig::default());
        arm_ring(&mut m);
        // Drive a vertical transfer straight through (2,2): from (4,2) to (0,2).
        // Find cores at those coordinates if they exist; otherwise use raw
        // transfer via write/read between whichever cores are in column 2.
        let fp = m.floorplan().clone();
        let col2_cores: Vec<OsCoreId> = fp
            .cores()
            .filter(|&c| fp.coord_of_core(c).col == 2)
            .collect();
        assert!(col2_cores.len() >= 2);
        let src = *col2_cores
            .iter()
            .max_by_key(|&&c| fp.coord_of_core(c).row)
            .unwrap();
        let dst = *col2_cores
            .iter()
            .min_by_key(|&&c| fp.coord_of_core(c).row)
            .unwrap();
        let pa = (0..)
            .map(|i| PhysAddr::new(i * 64))
            .find(|&pa| m.home_of(pa) == fp.cha_of_core(dst))
            .unwrap();
        m.write_line(src, pa);
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
        }
        m.read_line(dst, pa);
        let observed: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        let src_c = fp.coord_of_core(src);
        let dst_c = fp.coord_of_core(dst);
        assert_eq!(observed as usize, observable_hops(&m, src_c, dst_c));
        // And the disabled tile really does hide one hop when crossed.
        let crosses = src_c.row.max(dst_c.row) > 2 && src_c.row.min(dst_c.row) < 2;
        if crosses {
            assert_eq!(
                observable_hops(&m, src_c, dst_c),
                src_c.hop_distance(dst_c) - 1
            );
        }
    }

    #[test]
    fn frozen_counters_ignore_traffic() {
        let mut m = machine();
        arm_ring(&mut m);
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_FREEZE).unwrap();
        }
        m.write_line(OsCoreId::new(0), PhysAddr::new(0x9000));
        m.read_line(OsCoreId::new(9), PhysAddr::new(0x9000));
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn read_miss_sends_request_on_ad_ring() {
        let mut m = machine();
        let core = OsCoreId::new(9);
        let pa = PhysAddr::new(0x5_1000);
        let home = m.home_of(pa);
        // Arm counter 0 with vertical AD, 1 with horizontal AD.
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
            m.write_msr(
                counter_ctl(cha, 0),
                UncoreEvent::VertRingAdInUse(Direction::Up).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 1),
                UncoreEvent::VertRingAdInUse(Direction::Down).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 2),
                UncoreEvent::HorzRingAdInUse(Direction::Left).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 3),
                UncoreEvent::HorzRingAdInUse(Direction::Right).encode(),
            )
            .unwrap();
        }
        m.read_line(core, pa);
        // The read request travelled core -> home on the AD ring.
        let c = m.floorplan().coord_of_core(core);
        let h = m.floorplan().coord_of_cha(home);
        let total: u64 = (0..m.cha_count())
            .map(|cha| {
                (0..4)
                    .map(|i| m.read_msr(counter(cha, i)).unwrap())
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total as usize, observable_hops(&m, c, h));
    }

    #[test]
    fn shared_write_upgrade_sends_invalidations_on_iv_ring() {
        let mut m = machine();
        let writer = OsCoreId::new(0);
        let sharer = OsCoreId::new(11);
        let pa = PhysAddr::new(0x6_2000);
        m.write_line(writer, pa);
        m.read_line(sharer, pa); // downgrade to Shared{writer, sharer}
        for cha in 0..m.cha_count() {
            m.write_msr(unit_ctl(cha), UNIT_CTL_RESET).unwrap();
            m.write_msr(
                counter_ctl(cha, 0),
                UncoreEvent::VertRingIvInUse(Direction::Up).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 1),
                UncoreEvent::VertRingIvInUse(Direction::Down).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 2),
                UncoreEvent::HorzRingIvInUse(Direction::Left).encode(),
            )
            .unwrap();
            m.write_msr(
                counter_ctl(cha, 3),
                UncoreEvent::HorzRingIvInUse(Direction::Right).encode(),
            )
            .unwrap();
        }
        m.write_line(writer, pa); // upgrade: invalidation home -> sharer
        let home_coord = m.floorplan().coord_of_cha(m.home_of(pa));
        let sharer_coord = m.floorplan().coord_of_core(sharer);
        let total: u64 = (0..m.cha_count())
            .map(|cha| {
                (0..4)
                    .map(|i| m.read_msr(counter(cha, i)).unwrap())
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(
            total as usize,
            observable_hops(&m, home_coord, sharer_coord)
        );
    }

    #[test]
    fn noise_injects_background_events() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let mut m = XeonMachine::new(
            plan,
            MachineConfig {
                noise: NoiseModel {
                    transfers_per_op: 2.0,
                },
                ..MachineConfig::default()
            },
        );
        arm_ring(&mut m);
        for i in 0..50 {
            m.read_line(OsCoreId::new(0), PhysAddr::new(i * 64));
        }
        let total: u64 = (0..m.cha_count())
            .map(|c| ring_counts(&m, c).ring_total())
            .sum();
        assert!(total > 100, "noise should dominate: {total}");
    }

    #[test]
    fn home_distribution_is_spread() {
        let m = machine();
        let mut seen = vec![0usize; m.cha_count()];
        for i in 0..2048u64 {
            seen[m.home_of(PhysAddr::new(i * 64)).index()] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0));
    }
}
