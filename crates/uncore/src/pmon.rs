//! Per-CHA PMON counter banks.

use serde::{Deserialize, Serialize};

use crate::events::UncoreEvent;
use crate::msr::{CHA_COUNTERS, UNIT_CTL_FREEZE, UNIT_CTL_RESET};

/// One CHA's PMON bank: four programmable counters plus a unit control
/// register supporting freeze and reset — the register set the paper's
/// monitoring tool programs over MSRs (Sec. II-B).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChaPmonBox {
    ctl: [u64; CHA_COUNTERS],
    ctr: [u64; CHA_COUNTERS],
    frozen: bool,
}

impl ChaPmonBox {
    /// Creates a bank with all counters unprogrammed and running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `event` occurring `count` times at this tile: every counter
    /// programmed to the event increments, unless the bank is frozen.
    pub fn record(&mut self, event: UncoreEvent, count: u64) {
        if self.frozen {
            return;
        }
        for i in 0..CHA_COUNTERS {
            if UncoreEvent::decode(self.ctl[i]) == Some(event) {
                self.ctr[i] = self.ctr[i].wrapping_add(count);
            }
        }
    }

    /// Writes counter-control register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn write_ctl(&mut self, idx: usize, value: u64) {
        self.ctl[idx] = value;
    }

    /// Reads counter-control register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_ctl(&self, idx: usize) -> u64 {
        self.ctl[idx]
    }

    /// Reads counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_counter(&self, idx: usize) -> u64 {
        self.ctr[idx]
    }

    /// Writes counter `idx` (the real hardware allows pre-loading counters).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn write_counter(&mut self, idx: usize, value: u64) {
        self.ctr[idx] = value;
    }

    /// Applies a unit-control write: bit 1 resets all counters, bit 8 sets
    /// the freeze state (set = frozen, clear = running).
    pub fn write_unit_ctl(&mut self, value: u64) {
        if value & UNIT_CTL_RESET != 0 {
            self.ctr = [0; CHA_COUNTERS];
        }
        self.frozen = value & UNIT_CTL_FREEZE != 0;
    }

    /// Current unit-control value (freeze bit only; reset is write-only).
    pub fn read_unit_ctl(&self) -> u64 {
        if self.frozen {
            UNIT_CTL_FREEZE
        } else {
            0
        }
    }

    /// Whether the bank is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremap_mesh::Direction;

    #[test]
    fn programmed_counter_counts_matching_events() {
        let mut b = ChaPmonBox::new();
        b.write_ctl(0, UncoreEvent::LlcLookup.encode());
        b.write_ctl(1, UncoreEvent::VertRingBlInUse(Direction::Up).encode());
        b.record(UncoreEvent::LlcLookup, 3);
        b.record(UncoreEvent::VertRingBlInUse(Direction::Up), 2);
        b.record(UncoreEvent::VertRingBlInUse(Direction::Down), 5);
        assert_eq!(b.read_counter(0), 3);
        assert_eq!(b.read_counter(1), 2);
        assert_eq!(b.read_counter(2), 0);
    }

    #[test]
    fn freeze_stops_counting() {
        let mut b = ChaPmonBox::new();
        b.write_ctl(0, UncoreEvent::LlcLookup.encode());
        b.record(UncoreEvent::LlcLookup, 1);
        b.write_unit_ctl(UNIT_CTL_FREEZE);
        assert!(b.is_frozen());
        b.record(UncoreEvent::LlcLookup, 10);
        assert_eq!(b.read_counter(0), 1);
        b.write_unit_ctl(0);
        b.record(UncoreEvent::LlcLookup, 1);
        assert_eq!(b.read_counter(0), 2);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut b = ChaPmonBox::new();
        b.write_ctl(2, UncoreEvent::HorzRingBlInUse(Direction::Left).encode());
        b.record(UncoreEvent::HorzRingBlInUse(Direction::Left), 7);
        assert_eq!(b.read_counter(2), 7);
        b.write_unit_ctl(UNIT_CTL_RESET);
        assert_eq!(b.read_counter(2), 0);
        assert!(!b.is_frozen());
    }

    #[test]
    fn two_counters_same_event_both_count() {
        let mut b = ChaPmonBox::new();
        b.write_ctl(0, UncoreEvent::LlcLookup.encode());
        b.write_ctl(3, UncoreEvent::LlcLookup.encode());
        b.record(UncoreEvent::LlcLookup, 1);
        assert_eq!(b.read_counter(0), 1);
        assert_eq!(b.read_counter(3), 1);
    }
}
