//! Background-traffic noise injection.
//!
//! The paper's measurements run on cloud machines where other tenants and
//! the OS generate mesh traffic concurrently with the monitoring tool. The
//! noise model injects random line transfers between random tiles around
//! each monitored operation, so thresholding logic in the mapper is
//! exercised against realistic interference.

use serde::{Deserialize, Serialize};

/// Configuration of background mesh noise.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Expected number of random background transfers injected per monitored
    /// machine operation.
    pub transfers_per_op: f64,
}

impl NoiseModel {
    /// A quiet machine (no background traffic).
    pub fn quiet() -> Self {
        Self {
            transfers_per_op: 0.0,
        }
    }

    /// A lightly loaded cloud host.
    pub fn light() -> Self {
        Self {
            transfers_per_op: 0.05,
        }
    }

    /// A busy cloud host; mapping should still succeed with thresholding.
    pub fn busy() -> Self {
        Self {
            transfers_per_op: 0.5,
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::quiet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered_by_intensity() {
        assert!(NoiseModel::quiet().transfers_per_op < NoiseModel::light().transfers_per_op);
        assert!(NoiseModel::light().transfers_per_op < NoiseModel::busy().transfers_per_op);
    }
}
