//! Machine access errors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error accessing a model-specific register.
///
/// Serializable so recorded [`backend`](crate::backend) traces can persist
/// failed MSR accesses verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsrError {
    /// The caller does not have root privileges on the machine.
    PermissionDenied,
    /// No register is mapped at the address.
    UnknownMsr {
        /// The faulting address.
        addr: u32,
    },
    /// The register exists but is read-only.
    ReadOnly {
        /// The faulting address.
        addr: u32,
    },
}

impl fmt::Display for MsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsrError::PermissionDenied => f.write_str("msr access requires root privileges"),
            MsrError::UnknownMsr { addr } => write!(f, "no msr mapped at {addr:#x}"),
            MsrError::ReadOnly { addr } => write!(f, "msr {addr:#x} is read-only"),
        }
    }
}

impl std::error::Error for MsrError {}
