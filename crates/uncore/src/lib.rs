//! # coremap-uncore
//!
//! Simulated bare-metal Xeon machine for the core-map methodology: the
//! substitution substrate standing in for the real hardware the paper
//! measures (root MSR access, uncore PMON, caches, mesh traffic).
//!
//! The simulation is *behavioural*, not cycle-accurate: it reproduces
//! exactly the observables the mapping tool consumes —
//!
//! * an [`msr`]-addressed register file holding the PPIN and one
//!   [CHA PMON bank](pmon::ChaPmonBox) per active CHA (four counters, event
//!   select registers, freeze/reset control, paper Sec. II-A/B),
//! * an L2 + sliced-LLC [cache model](cache) with an undisclosed,
//!   per-instance slice hash,
//! * a MESI-like coherence layer whose data transfers ride the mesh via
//!   [`coremap_mesh::route`] and bump the ring-occupancy counters of every
//!   tile with an *active* CHA they pass (disabled tiles route silently,
//!   Sec. II-B),
//!
//! and it enforces the same access rules (MSRs require root; threads are
//! placed by OS core ID; PMON banks are indexed by CHA ID).
//!
//! The central type is [`XeonMachine`]. Higher layers drive it through
//! high-level "pinned worker thread" operations ([`XeonMachine::write_line`],
//! [`XeonMachine::read_line`], …) and read the PMON through MSRs, exactly
//! mirroring the structure of the paper's measurement tool.
//!
//! ```
//! use coremap_mesh::{DieTemplate, FloorplanBuilder, OsCoreId};
//! use coremap_uncore::{MachineConfig, PhysAddr, XeonMachine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
//! let mut machine = XeonMachine::new(plan, MachineConfig::default());
//! // A pinned worker on cpu0 writes a line, dirtying it in its L2.
//! machine.write_line(OsCoreId::new(0), PhysAddr::new(0x1000));
//! // Another worker on cpu7 reads it: the dirty data crosses the mesh.
//! machine.read_line(OsCoreId::new(7), PhysAddr::new(0x1000));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod backend;
pub mod cache;
mod error;
pub mod events;
mod machine;
pub mod msr;
mod noise;
pub mod pmon;

pub use addr::{LineAddr, PhysAddr};
pub use backend::MachineBackend;
pub use error::MsrError;
pub use events::{RingClass, UncoreEvent};
pub use machine::{ChannelCounts, MachineConfig, XeonMachine};
pub use noise::NoiseModel;
