//! Physical addresses and cache line addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Log2 of the cache line size (64 bytes).
pub const LINE_SHIFT: u32 = 6;

/// A physical memory address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Wraps a raw physical address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self::new(v)
    }
}

/// A cache-line-granular address (physical address >> 6).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line index.
    pub const fn new(line: u64) -> Self {
        Self(line)
    }

    /// Raw line index.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The first physical address of the line.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_in_same_line_share_line_addr() {
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x103F);
        let c = PhysAddr::new(0x1040);
        assert_eq!(a.line(), b.line());
        assert_ne!(a.line(), c.line());
    }

    #[test]
    fn line_base_round_trip() {
        let line = PhysAddr::new(0x12345).line();
        assert_eq!(line.base_addr().line(), line);
        assert_eq!(line.base_addr().value() % 64, 0);
    }
}
