//! Cache hierarchy model: private L2 caches and the sliced, distributed LLC.
//!
//! The model is deliberately scaled down (fewer sets/ways than real silicon,
//! configurable via [`MachineConfig`](crate::MachineConfig)) — the mapping
//! algorithms only depend on the *structure* (set-indexed L2 with limited
//! associativity; LLC address-hashed across slices with an undisclosed
//! per-instance function), not on capacities.

use serde::{Deserialize, Serialize};

use crate::LineAddr;

/// Per-core private L2: set-indexed, LRU-replaced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L2Cache {
    sets: usize,
    ways: usize,
    /// Per-set MRU-ordered lines (`last` = most recently used) with a dirty
    /// bit.
    lines: Vec<Vec<(LineAddr, bool)>>,
}

impl L2Cache {
    /// Creates an empty L2 with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "L2 set count must be a power of two"
        );
        assert!(ways > 0, "L2 must have at least one way");
        Self {
            sets,
            ways,
            lines: vec![Vec::new(); sets],
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The set index a line maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.value() as usize) & (self.sets - 1)
    }

    /// Whether the line is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines[self.set_of(line)]
            .iter()
            .any(|&(l, _)| l == line)
    }

    /// Looks the line up, refreshing LRU state. Returns the dirty bit on a
    /// hit.
    pub fn touch(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let entry = ways.remove(pos);
            ways.push(entry);
            Some(entry.1)
        } else {
            None
        }
    }

    /// Marks a present line dirty (no-op if absent).
    pub fn mark_dirty(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if let Some(e) = self.lines[set].iter_mut().find(|(l, _)| *l == line) {
            e.1 = true;
        }
    }

    /// Marks a present line clean — used when a dirty line is downgraded to
    /// shared by a remote read (no-op if absent).
    pub fn mark_clean(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        if let Some(e) = self.lines[set].iter_mut().find(|(l, _)| *l == line) {
            e.1 = false;
        }
    }

    /// Inserts a line (MRU, with the given dirty state), returning the
    /// evicted victim `(line, dirty)` if the set overflowed.
    pub fn insert(&mut self, line: LineAddr, dirty: bool) -> Option<(LineAddr, bool)> {
        let set = self.set_of(line);
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let mut entry = ways.remove(pos);
            entry.1 |= dirty;
            ways.push(entry);
            return None;
        }
        let victim = if ways.len() == self.ways {
            Some(ways.remove(0))
        } else {
            None
        };
        ways.push((line, dirty));
        victim
    }

    /// Removes a line (invalidation), returning its dirty bit if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let ways = &mut self.lines[set];
        ways.iter()
            .position(|&(l, _)| l == line)
            .map(|pos| ways.remove(pos).1)
    }

    /// Drains every line from the cache (`wbinvd`-like), returning all
    /// `(line, dirty)` entries so the coherence layer can write back dirty
    /// data and forget clean sharers.
    pub fn drain(&mut self) -> Vec<(LineAddr, bool)> {
        let mut out = Vec::new();
        for set in &mut self.lines {
            out.append(set);
        }
        out
    }
}

/// The undisclosed LLC slice-hash: maps a cache line to the CHA/slice that
/// "homes" it. Parameterized by a per-instance secret so no two machines
/// share a mapping, mirroring the paper's observation that the hash is not
/// public and need not be deciphered (Sec. II-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceHash {
    secret: u64,
    slices: usize,
}

impl SliceHash {
    /// Creates a hash over `slices` slices with the given secret.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn new(secret: u64, slices: usize) -> Self {
        assert!(slices > 0, "LLC must have at least one slice");
        Self { secret, slices }
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// The slice index homing `line`.
    pub fn slice_of(&self, line: LineAddr) -> usize {
        // Multiply-shift mixing of the line address with the secret; the
        // exact function is irrelevant as long as it spreads lines roughly
        // uniformly and differs per instance.
        let mixed = (line.value() ^ self.secret).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mixed = mixed ^ (mixed >> 29);
        (mixed % self.slices as u64) as usize
    }
}

/// Global coherence state of a cache line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    /// Present only in the LLC home slice (or memory behind it).
    InLlc,
    /// Dirty and owned by the L2 of one core (OS core index).
    Modified(u16),
    /// Clean, shared by the L2s of the listed cores (sorted, deduped).
    Shared(Vec<u16>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(v: u64) -> LineAddr {
        LineAddr::new(v)
    }

    #[test]
    fn lru_eviction_order() {
        let mut l2 = L2Cache::new(1, 2);
        assert_eq!(l2.insert(line(1), false), None);
        assert_eq!(l2.insert(line(2), false), None);
        // Touch 1 so 2 becomes LRU.
        l2.touch(line(1));
        assert_eq!(l2.insert(line(3), false), Some((line(2), false)));
        assert!(l2.contains(line(1)));
        assert!(l2.contains(line(3)));
    }

    #[test]
    fn dirty_bit_tracked_through_eviction() {
        let mut l2 = L2Cache::new(1, 1);
        l2.insert(line(1), false);
        l2.mark_dirty(line(1));
        assert_eq!(l2.insert(line(2), false), Some((line(1), true)));
    }

    #[test]
    fn reinsert_merges_dirty_state() {
        let mut l2 = L2Cache::new(1, 2);
        l2.insert(line(1), true);
        assert_eq!(l2.insert(line(1), false), None);
        assert_eq!(l2.touch(line(1)), Some(true));
    }

    #[test]
    fn set_indexing_separates_lines() {
        let l2 = L2Cache::new(4, 2);
        assert_eq!(l2.set_of(line(0)), 0);
        assert_eq!(l2.set_of(line(5)), 1);
        assert_eq!(l2.set_of(line(7)), 3);
    }

    #[test]
    fn remove_returns_dirty_bit() {
        let mut l2 = L2Cache::new(1, 2);
        l2.insert(line(9), true);
        assert_eq!(l2.remove(line(9)), Some(true));
        assert_eq!(l2.remove(line(9)), None);
    }

    #[test]
    fn drain_returns_all_lines_with_dirty_bits() {
        let mut l2 = L2Cache::new(2, 2);
        l2.insert(line(0), true);
        l2.insert(line(1), false);
        l2.insert(line(2), true);
        let mut d = l2.drain(); // (line, dirty) pairs
        d.sort();
        assert_eq!(d, vec![(line(0), true), (line(1), false), (line(2), true)]);
        assert!(!l2.contains(line(1)));
    }

    #[test]
    fn mark_clean_clears_dirty_bit() {
        let mut l2 = L2Cache::new(1, 2);
        l2.insert(line(4), true);
        l2.mark_clean(line(4));
        assert_eq!(l2.touch(line(4)), Some(false));
    }

    #[test]
    fn slice_hash_is_deterministic_and_varied() {
        let h = SliceHash::new(0xDEADBEEF, 26);
        let a = h.slice_of(line(100));
        assert_eq!(a, h.slice_of(line(100)));
        // Different secrets give a different mapping for at least one of a
        // handful of lines.
        let h2 = SliceHash::new(0xFEEDFACE, 26);
        let differs = (0..32u64).any(|v| h.slice_of(line(v)) != h2.slice_of(line(v)));
        assert!(differs);
    }

    #[test]
    fn slice_hash_covers_all_slices() {
        let h = SliceHash::new(42, 18);
        let mut seen = [false; 18];
        for v in 0..4096u64 {
            seen[h.slice_of(line(v))] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash should reach every slice");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = L2Cache::new(3, 2);
    }
}
