//! Uncore PMON event encodings.
//!
//! Mirrors the structure of the Intel Xeon Scalable uncore performance
//! monitoring reference: a CHA counter is programmed by writing an *event
//! select* value (event code plus unit mask) to its control MSR. The mapping
//! methodology needs exactly five events (paper Sec. II-A/B): the LLC lookup
//! count and the four ring-occupancy ingress counters.

use coremap_mesh::Direction;
use serde::{Deserialize, Serialize};

/// Event code of `LLC_LOOKUP`.
pub const EV_LLC_LOOKUP: u64 = 0x34;
/// Event code of `VERT_RING_BL_IN_USE` (data ring).
pub const EV_VERT_RING_BL_IN_USE: u64 = 0xAA;
/// Event code of `HORZ_RING_BL_IN_USE` (data ring).
pub const EV_HORZ_RING_BL_IN_USE: u64 = 0xAB;
/// Event code of `VERT_RING_AD_IN_USE` (address/request ring).
pub const EV_VERT_RING_AD_IN_USE: u64 = 0xA6;
/// Event code of `HORZ_RING_AD_IN_USE` (address/request ring).
pub const EV_HORZ_RING_AD_IN_USE: u64 = 0xA7;
/// Event code of `VERT_RING_IV_IN_USE` (invalidation/snoop-response ring).
pub const EV_VERT_RING_IV_IN_USE: u64 = 0xB0;
/// Event code of `HORZ_RING_IV_IN_USE` (invalidation/snoop-response ring).
pub const EV_HORZ_RING_IV_IN_USE: u64 = 0xB1;

/// The mesh ring class a message travels on. The Xeon mesh multiplexes
/// several message classes over each physical link; the uncore exposes
/// separate in-use counters per class. The paper monitors the BL (data)
/// ring (Sec. II-B); the AD (request) and IV (invalidation) classes are
/// modelled so the ring-choice ablation can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingClass {
    /// Data payload ring (`*_RING_BL_IN_USE`).
    Bl,
    /// Address/request ring (`*_RING_AD_IN_USE`).
    Ad,
    /// Invalidation / snoop-response ring (`*_RING_IV_IN_USE`).
    Iv,
}

/// Unit mask selecting the "up"/"left" flavour of a ring event.
pub const UMASK_FIRST: u64 = 0x01;
/// Unit mask selecting the "down"/"right" flavour of a ring event.
pub const UMASK_SECOND: u64 = 0x02;
/// Unit mask selecting all LLC lookup types.
pub const UMASK_LLC_ANY: u64 = 0x1F;

/// An uncore event a CHA PMON counter can be programmed to count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UncoreEvent {
    /// A lookup in the tile's LLC slice (any request type).
    LlcLookup,
    /// A cycle of the vertical ("BL" data) ingress ring in use, in the given
    /// observed direction (`Up` or `Down`).
    VertRingBlInUse(Direction),
    /// A cycle of the horizontal ingress ring in use, in the given observed
    /// direction (`Left` or `Right`). Note the observed label is scrambled
    /// by the odd-column tile flip.
    HorzRingBlInUse(Direction),
    /// Vertical address/request-ring ingress cycle.
    VertRingAdInUse(Direction),
    /// Horizontal address/request-ring ingress cycle (label scrambled like
    /// BL).
    HorzRingAdInUse(Direction),
    /// Vertical invalidation-ring ingress cycle.
    VertRingIvInUse(Direction),
    /// Horizontal invalidation-ring ingress cycle (label scrambled).
    HorzRingIvInUse(Direction),
}

impl UncoreEvent {
    /// Encodes the event as an event-select register value
    /// (`event | umask << 8`).
    ///
    /// # Panics
    ///
    /// Panics if a ring event carries a direction of the wrong axis (e.g.
    /// `VertRingBlInUse(Left)`); such values cannot be constructed by this
    /// crate's machinery.
    pub fn encode(self) -> u64 {
        match self {
            UncoreEvent::LlcLookup => EV_LLC_LOOKUP | (UMASK_LLC_ANY << 8),
            UncoreEvent::VertRingBlInUse(d) => EV_VERT_RING_BL_IN_USE | (vert_umask(d) << 8),
            UncoreEvent::HorzRingBlInUse(d) => EV_HORZ_RING_BL_IN_USE | (horz_umask(d) << 8),
            UncoreEvent::VertRingAdInUse(d) => EV_VERT_RING_AD_IN_USE | (vert_umask(d) << 8),
            UncoreEvent::HorzRingAdInUse(d) => EV_HORZ_RING_AD_IN_USE | (horz_umask(d) << 8),
            UncoreEvent::VertRingIvInUse(d) => EV_VERT_RING_IV_IN_USE | (vert_umask(d) << 8),
            UncoreEvent::HorzRingIvInUse(d) => EV_HORZ_RING_IV_IN_USE | (horz_umask(d) << 8),
        }
    }

    /// Decodes an event-select register value back into an event, if it is
    /// one this model implements.
    pub fn decode(value: u64) -> Option<UncoreEvent> {
        let event = value & 0xFF;
        let umask = (value >> 8) & 0xFF;
        let vert_dir = match umask {
            UMASK_FIRST => Some(Direction::Up),
            UMASK_SECOND => Some(Direction::Down),
            _ => None,
        };
        let horz_dir = match umask {
            UMASK_FIRST => Some(Direction::Left),
            UMASK_SECOND => Some(Direction::Right),
            _ => None,
        };
        match event {
            EV_LLC_LOOKUP => Some(UncoreEvent::LlcLookup),
            EV_VERT_RING_BL_IN_USE => vert_dir.map(UncoreEvent::VertRingBlInUse),
            EV_HORZ_RING_BL_IN_USE => horz_dir.map(UncoreEvent::HorzRingBlInUse),
            EV_VERT_RING_AD_IN_USE => vert_dir.map(UncoreEvent::VertRingAdInUse),
            EV_HORZ_RING_AD_IN_USE => horz_dir.map(UncoreEvent::HorzRingAdInUse),
            EV_VERT_RING_IV_IN_USE => vert_dir.map(UncoreEvent::VertRingIvInUse),
            EV_HORZ_RING_IV_IN_USE => horz_dir.map(UncoreEvent::HorzRingIvInUse),
            _ => None,
        }
    }

    /// The ring event corresponding to an observed ingress label on the BL
    /// (data) ring.
    pub fn from_ingress_label(label: Direction) -> UncoreEvent {
        Self::from_ingress_label_on(RingClass::Bl, label)
    }

    /// The ring event corresponding to an observed ingress label on the
    /// given ring class.
    pub fn from_ingress_label_on(ring: RingClass, label: Direction) -> UncoreEvent {
        match (ring, label.is_vertical()) {
            (RingClass::Bl, true) => UncoreEvent::VertRingBlInUse(label),
            (RingClass::Bl, false) => UncoreEvent::HorzRingBlInUse(label),
            (RingClass::Ad, true) => UncoreEvent::VertRingAdInUse(label),
            (RingClass::Ad, false) => UncoreEvent::HorzRingAdInUse(label),
            (RingClass::Iv, true) => UncoreEvent::VertRingIvInUse(label),
            (RingClass::Iv, false) => UncoreEvent::HorzRingIvInUse(label),
        }
    }
}

fn vert_umask(d: Direction) -> u64 {
    match d {
        Direction::Up => UMASK_FIRST,
        Direction::Down => UMASK_SECOND,
        // audit: allow(panic-safety): contract — `for_class` only pairs vertical events with Up/Down; a sideways direction here is a constructor bug
        other => panic!("vertical ring event with direction {other}"),
    }
}

fn horz_umask(d: Direction) -> u64 {
    match d {
        Direction::Left => UMASK_FIRST,
        Direction::Right => UMASK_SECOND,
        // audit: allow(panic-safety): contract — `for_class` only pairs horizontal events with Left/Right; a vertical direction here is a constructor bug
        other => panic!("horizontal ring event with direction {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let events = [
            UncoreEvent::LlcLookup,
            UncoreEvent::VertRingBlInUse(Direction::Up),
            UncoreEvent::VertRingBlInUse(Direction::Down),
            UncoreEvent::HorzRingBlInUse(Direction::Left),
            UncoreEvent::HorzRingBlInUse(Direction::Right),
            UncoreEvent::VertRingAdInUse(Direction::Up),
            UncoreEvent::HorzRingAdInUse(Direction::Right),
            UncoreEvent::VertRingIvInUse(Direction::Down),
            UncoreEvent::HorzRingIvInUse(Direction::Left),
        ];
        for e in events {
            assert_eq!(UncoreEvent::decode(e.encode()), Some(e));
        }
    }

    #[test]
    fn decode_rejects_unknown() {
        assert_eq!(UncoreEvent::decode(0x00), None);
        assert_eq!(UncoreEvent::decode(0xAA | (0x7 << 8)), None);
    }

    #[test]
    fn ingress_label_mapping() {
        assert_eq!(
            UncoreEvent::from_ingress_label(Direction::Up),
            UncoreEvent::VertRingBlInUse(Direction::Up)
        );
        assert_eq!(
            UncoreEvent::from_ingress_label(Direction::Right),
            UncoreEvent::HorzRingBlInUse(Direction::Right)
        );
    }

    #[test]
    #[should_panic(expected = "vertical ring event")]
    fn encode_rejects_axis_mismatch() {
        let _ = UncoreEvent::VertRingBlInUse(Direction::Left).encode();
    }
}
