//! The machine-backend abstraction.
//!
//! The mapping methodology only needs a small set of primitives from the
//! machine under measurement; [`MachineBackend`] names them. The trait
//! lives next to the simulated [`XeonMachine`] (its reference
//! implementation) and is the seam where other backends plug in: a
//! *real-hardware* driver, the record/replay/fault-injection wrappers in
//! `coremap_core::backend`, or test doubles.
//!
//! | trait method | bare-metal Linux implementation |
//! |---|---|
//! | `read_msr` / `write_msr` | `pread`/`pwrite` on `/dev/cpu/<n>/msr` (root) |
//! | `os_cores` / `core_count` | `/sys/devices/system/cpu` enumeration (SMT folded) |
//! | `cha_count` | uncore discovery MSRs / `CAPID` fuse registers |
//! | `grid_dim` | per-model die constant ([Tam et al., ISSCC'18]) |
//! | `l2_geometry` | `CPUID` leaf 4 |
//! | `address_space` | usable physical memory from `/proc/iomem` |
//! | `home_of` | slice-hash oracle (only needed by diagnostics) |
//! | `write_line` / `read_line` | pinned worker thread issuing volatile accesses to a hugepage-backed buffer with known physical addresses |
//! | `flush_caches` | `wbinvd` (kernel helper) or a `clflush` sweep |
//!
//! All higher layers (`eviction`, `cha_map`, `traffic`, `calibrate`, the
//! `CoreMapper`) are generic over this trait.

use coremap_mesh::{ChaId, GridDim, OsCoreId};

use crate::{MsrError, PhysAddr, XeonMachine};

/// A machine the mapping pipeline can measure.
///
/// Semantics the pipeline relies on (all satisfied by real Xeons and by the
/// simulator):
///
/// * MSR access requires privilege and reaches the per-CHA PMON banks laid
///   out as in [`crate::msr`];
/// * `write_line`/`read_line` behave like pinned user-level accesses under
///   an invalidation-based coherence protocol over a mesh with
///   dimension-order routing;
/// * `flush_caches` returns every line to its home slice so experiment
///   windows do not leak into each other.
pub trait MachineBackend {
    /// Reads a model-specific register.
    ///
    /// # Errors
    ///
    /// [`MsrError`] on missing privilege or unmapped addresses.
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError>;

    /// Writes a model-specific register.
    ///
    /// # Errors
    ///
    /// [`MsrError`] on missing privilege, unmapped or read-only addresses.
    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError>;

    /// Number of active CHAs.
    fn cha_count(&self) -> usize;

    /// Number of OS-visible cores.
    fn core_count(&self) -> usize;

    /// OS core IDs, ascending.
    fn os_cores(&self) -> Vec<OsCoreId>;

    /// The die's tile-grid dimensions (known per CPU model).
    fn grid_dim(&self) -> GridDim;

    /// L2 geometry `(sets, ways)`.
    fn l2_geometry(&self) -> (usize, usize);

    /// Size of the usable physical address space in bytes.
    fn address_space(&self) -> u64;

    /// The CHA a physical address's cache line homes to.
    ///
    /// A ground-truth oracle the *measurement* pipeline never calls — the
    /// slice hash is exactly what eviction-set probing recovers — but
    /// diagnostics and backend-conformance tests do.
    fn home_of(&self, pa: PhysAddr) -> ChaId;

    /// A worker pinned to `core` stores to `pa`.
    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr);

    /// A worker pinned to `core` loads from `pa`.
    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr);

    /// Writes back and invalidates all caches.
    fn flush_caches(&mut self);

    /// Number of cache operations issued so far — a diagnostic; backends
    /// that do not track it may keep the default.
    fn op_count(&self) -> u64 {
        0
    }
}

impl MachineBackend for XeonMachine {
    fn read_msr(&self, addr: u32) -> Result<u64, MsrError> {
        XeonMachine::read_msr(self, addr)
    }

    fn write_msr(&mut self, addr: u32, value: u64) -> Result<(), MsrError> {
        XeonMachine::write_msr(self, addr, value)
    }

    fn cha_count(&self) -> usize {
        XeonMachine::cha_count(self)
    }

    fn core_count(&self) -> usize {
        XeonMachine::core_count(self)
    }

    fn os_cores(&self) -> Vec<OsCoreId> {
        XeonMachine::os_cores(self)
    }

    fn grid_dim(&self) -> GridDim {
        XeonMachine::grid_dim(self)
    }

    fn l2_geometry(&self) -> (usize, usize) {
        XeonMachine::l2_geometry(self)
    }

    fn address_space(&self) -> u64 {
        XeonMachine::address_space(self)
    }

    fn home_of(&self, pa: PhysAddr) -> ChaId {
        XeonMachine::home_of(self, pa)
    }

    fn write_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        XeonMachine::write_line(self, core, pa);
    }

    fn read_line(&mut self, core: OsCoreId, pa: PhysAddr) {
        XeonMachine::read_line(self, core, pa);
    }

    fn flush_caches(&mut self) {
        XeonMachine::flush_caches(self);
    }

    fn op_count(&self) -> u64 {
        XeonMachine::op_count(self)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::MachineConfig;
    use coremap_mesh::{DieTemplate, FloorplanBuilder};

    fn as_backend<B: MachineBackend>(b: &B) -> (usize, usize) {
        (b.cha_count(), b.core_count())
    }

    #[test]
    fn xeon_machine_implements_the_trait() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let machine = XeonMachine::new(plan, MachineConfig::default());
        assert_eq!(as_backend(&machine), (28, 28));
    }

    #[test]
    fn trait_msr_access_matches_inherent() {
        let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
            .build()
            .unwrap();
        let machine = XeonMachine::new(plan, MachineConfig::default());
        let via_trait = MachineBackend::read_msr(&machine, crate::msr::MSR_PPIN).unwrap();
        let direct = machine.read_msr(crate::msr::MSR_PPIN).unwrap();
        assert_eq!(via_trait, direct);
    }
}
