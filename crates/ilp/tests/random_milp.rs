//! Property tests: branch & bound agrees with brute-force enumeration on
//! random small MILPs.

use coremap_ilp::{Cmp, Model, SolveError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomMilp {
    n_vars: usize,
    /// Per-constraint: coefficients, cmp selector, rhs.
    constraints: Vec<(Vec<i8>, u8, i8)>,
    objective: Vec<i8>,
}

fn milp_strategy() -> impl Strategy<Value = RandomMilp> {
    (2usize..=5).prop_flat_map(|n_vars| {
        let constraint = (prop::collection::vec(-4i8..=4, n_vars), 0u8..3, -6i8..=10);
        (
            prop::collection::vec(constraint, 1..=4),
            prop::collection::vec(-5i8..=5, n_vars),
        )
            .prop_map(move |(constraints, objective)| RandomMilp {
                n_vars,
                constraints,
                objective,
            })
    })
}

fn brute_force(m: &RandomMilp) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << m.n_vars) {
        let assign: Vec<i64> = (0..m.n_vars).map(|j| ((mask >> j) & 1) as i64).collect();
        let feasible = m.constraints.iter().all(|(coeffs, cmp, rhs)| {
            let lhs: i64 = coeffs
                .iter()
                .zip(&assign)
                .map(|(&c, &x)| c as i64 * x)
                .sum();
            match cmp % 3 {
                0 => lhs <= *rhs as i64,
                1 => lhs >= *rhs as i64,
                _ => lhs == *rhs as i64,
            }
        });
        if feasible {
            let obj: i64 = m
                .objective
                .iter()
                .zip(&assign)
                .map(|(&c, &x)| c as i64 * x)
                .sum();
            best = Some(best.map_or(obj, |b: i64| b.min(obj)));
        }
    }
    best
}

fn solve_with_ilp(m: &RandomMilp) -> Result<i64, SolveError> {
    let mut model = Model::new();
    let vars: Vec<_> = (0..m.n_vars)
        .map(|j| model.bin_var(&format!("b{j}")))
        .collect();
    for (coeffs, cmp, rhs) in &m.constraints {
        let mut e = model.expr();
        for (j, &c) in coeffs.iter().enumerate() {
            e = e.term(c as f64, vars[j]);
        }
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        model.constraint(e, cmp, *rhs as f64);
    }
    let mut obj = model.expr();
    for (j, &c) in m.objective.iter().enumerate() {
        obj = obj.term(c as f64, vars[j]);
    }
    model.minimize(obj);
    model.solve().map(|s| s.objective().round() as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bb_matches_brute_force(m in milp_strategy()) {
        let expect = brute_force(&m);
        let got = solve_with_ilp(&m);
        match (expect, got) {
            (Some(e), Ok(g)) => prop_assert_eq!(e, g, "objective mismatch"),
            (None, Err(SolveError::Infeasible)) => {}
            (e, g) => prop_assert!(false, "expected {:?}, got {:?}", e, g),
        }
    }

    #[test]
    fn bb_matches_brute_force_after_presolve(m in milp_strategy()) {
        let expect = brute_force(&m);
        // Round-trip through presolve to check the reductions are sound.
        let mut model = Model::new();
        let vars: Vec<_> = (0..m.n_vars)
            .map(|j| model.bin_var(&format!("b{j}")))
            .collect();
        for (coeffs, cmp, rhs) in &m.constraints {
            let mut e = model.expr();
            for (j, &c) in coeffs.iter().enumerate() {
                e = e.term(c as f64, vars[j]);
            }
            let cmp = match cmp % 3 {
                0 => Cmp::Le,
                1 => Cmp::Ge,
                _ => Cmp::Eq,
            };
            model.constraint(e, cmp, *rhs as f64);
        }
        let mut obj = model.expr();
        for (j, &c) in m.objective.iter().enumerate() {
            obj = obj.term(c as f64, vars[j]);
        }
        model.minimize(obj);

        let got = coremap_ilp::presolve::merge_equalities(&model)
            .and_then(|p| p.model.solve().map(|s| s.objective().round() as i64));
        match (expect, got) {
            (Some(e), Ok(g)) => prop_assert_eq!(e, g, "objective mismatch"),
            (None, Err(SolveError::Infeasible)) => {}
            (e, g) => prop_assert!(false, "expected {:?}, got {:?}", e, g),
        }
    }
}
