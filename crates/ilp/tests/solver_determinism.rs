//! Property tests: the revised-simplex branch & bound returns *byte-identical*
//! solutions whatever the engine configuration — warm-started or cold, serial
//! or speculative-parallel. The canonical answer is the cold serial solve;
//! every other configuration must reproduce its variable values bit-for-bit.

use coremap_ilp::{BbConfig, Cmp, LpEngine, Model, SolveError, Var};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomMilp {
    n_vars: usize,
    /// Per-constraint: coefficients, cmp selector, rhs.
    constraints: Vec<(Vec<i8>, u8, i8)>,
    objective: Vec<i8>,
}

fn milp_strategy() -> impl Strategy<Value = RandomMilp> {
    (2usize..=6).prop_flat_map(|n_vars| {
        let constraint = (prop::collection::vec(-4i8..=4, n_vars), 0u8..3, -6i8..=10);
        (
            prop::collection::vec(constraint, 1..=5),
            prop::collection::vec(-5i8..=5, n_vars),
        )
            .prop_map(move |(constraints, objective)| RandomMilp {
                n_vars,
                constraints,
                objective,
            })
    })
}

fn build(m: &RandomMilp) -> (Model, Vec<Var>) {
    let mut model = Model::new();
    let vars: Vec<_> = (0..m.n_vars)
        .map(|j| model.bin_var(&format!("b{j}")))
        .collect();
    for (coeffs, cmp, rhs) in &m.constraints {
        let mut e = model.expr();
        for (j, &c) in coeffs.iter().enumerate() {
            e = e.term(c as f64, vars[j]);
        }
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        model.constraint(e, cmp, *rhs as f64);
    }
    let mut obj = model.expr();
    for (j, &c) in m.objective.iter().enumerate() {
        obj = obj.term(c as f64, vars[j]);
    }
    model.minimize(obj);
    (model, vars)
}

/// Solves under one configuration and fingerprints the answer exactly:
/// every variable value and the objective as raw f64 bits.
fn fingerprint(
    m: &RandomMilp,
    engine: LpEngine,
    workers: usize,
) -> Result<(Vec<u64>, u64), SolveError> {
    let (model, vars) = build(m);
    let cfg = BbConfig {
        engine,
        workers,
        ..BbConfig::default()
    };
    let sol = model.solve_with_config(&cfg)?;
    let bits: Vec<u64> = vars.iter().map(|&v| sol.value(v).to_bits()).collect();
    Ok((bits, sol.objective().to_bits()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn warm_and_parallel_solves_are_byte_identical_to_cold_serial(m in milp_strategy()) {
        let canonical = fingerprint(&m, LpEngine::RevisedCold, 1);
        for (engine, workers) in [
            (LpEngine::RevisedWarm, 1),
            (LpEngine::RevisedWarm, 4),
            (LpEngine::RevisedCold, 8),
        ] {
            let got = fingerprint(&m, engine, workers);
            match (&canonical, &got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a, b,
                    "{:?} x{} diverged from cold serial", engine, workers
                ),
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (a, b) => prop_assert!(
                    false,
                    "outcome mismatch: cold serial {:?}, {:?} x{} {:?}", a, engine, workers, b
                ),
            }
        }
    }
}
