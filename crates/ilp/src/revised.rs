//! Bounded-variable revised simplex over the sparse column store.
//!
//! This is the production LP engine behind branch & bound, replacing the
//! dense tableau in [`crate::simplex`] (which is kept as the differential /
//! benchmark baseline). Differences that matter for speed on the
//! reconstruction ILP:
//!
//! * **Bounds are handled implicitly.** A nonbasic variable may sit at its
//!   lower *or* upper bound; the dense solver instead materializes every
//!   finite upper bound as an extra `<=` row, which roughly doubles its row
//!   count on an all-binary model.
//! * **The basis is LU-factorized** ([`crate::lu`]) and patched with
//!   product-form eta updates; each iteration costs two sparse triangular
//!   solves plus a sparse pricing pass instead of an `m × n` tableau
//!   update.
//! * **Warm starts.** [`RevisedEngine::solve_dual_from`] re-solves from a
//!   caller-supplied basis with the dual simplex. After branch & bound
//!   tightens one variable bound, the parent's optimal basis stays dual
//!   feasible, so a handful of dual pivots replace a full two-phase cold
//!   solve — and a dual-unbounded ray proves the child infeasible without
//!   ever building a phase-1 problem.
//!
//! Anti-cycling follows the dense engine's design: Dantzig pricing until a
//! per-solve pivot counter crosses the caller's Bland switch threshold,
//! then Bland's rule. The counter spans both phases of one LP solve and is
//! *reset for every solve*, so a warm-started B&B child can never inherit a
//! stale cycling flag from its parent's solve (see the regression tests in
//! `branch_bound`).
//!
//! Determinism: every scan runs in ascending index order with explicit
//! tie-breaks and the summation order of every dot product is fixed by the
//! column store, so a solve is a pure function of `(problem, bounds,
//! basis)`. The parallel B&B driver relies on this to keep results
//! byte-identical at any worker count. No wall-clock, no hashing, no
//! randomness.

use crate::lu::Factorization;
#[cfg(test)]
use crate::simplex::LpProblem;
use crate::simplex::{LpOutcome, LpRow, FEAS_TOL};
use crate::sparse::ColMatrix;
use crate::{Cmp, SolveError};

const PIVOT_TOL: f64 = 1e-9;
const DJ_TOL: f64 = 1e-9;
const RATIO_EPS: f64 = 1e-10;

/// Where a column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColStatus {
    /// In the basis; value tracked in `xb`.
    Basic,
    /// Nonbasic at its (finite) lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// A basis snapshot: enough to warm-start a re-solve after bound changes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Basis {
    /// Column occupying each row slot.
    pub basic: Vec<usize>,
    /// Status of every column (structural, slack and artificial).
    pub status: Vec<ColStatus>,
}

/// Per-solve statistics, returned to the caller instead of being recorded
/// into the metrics registry — worker threads must stay observation-free so
/// metrics stay worker-count independent (only the sequencer records).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LpStats {
    /// Simplex iterations (basis changes and bound flips).
    pub pivots: usize,
    /// Basis (re)factorizations, including the initial one.
    pub refactorizations: usize,
    /// Whether the Dantzig→Bland anti-cycling switch engaged.
    pub bland_engaged: bool,
}

/// Outcome of a revised-simplex solve.
#[derive(Debug, Clone)]
pub(crate) struct RevisedOutcome {
    /// Optimal / infeasible / unbounded, with structural values on success.
    pub outcome: LpOutcome,
    /// Basis snapshot at optimality (for warm-starting children).
    pub basis: Option<Basis>,
    /// Solve statistics.
    pub stats: LpStats,
}

/// The immutable part of an LP shared across branch-and-bound nodes: the
/// sparse matrix (structural + slack + artificial columns), costs and
/// right-hand sides. Only variable bounds change per node; they are passed
/// to each solve. Shared by `&` across the speculative worker threads.
#[derive(Debug)]
pub(crate) struct RevisedEngine {
    m: usize,
    n: usize,
    /// `n` structural + `m` slack + `m` artificial columns.
    ncols: usize,
    cols: ColMatrix,
    /// Phase-2 cost (structural entries only; slacks/artificials are 0).
    cost: Vec<f64>,
    rhs: Vec<f64>,
    /// Slack bounds by row: `Le → [0, ∞)`, `Ge → (−∞, 0]`, `Eq → [0, 0]`.
    slack_bounds: Vec<(f64, f64)>,
}

impl RevisedEngine {
    /// Builds the engine from an [`LpProblem`]'s structure. The problem's
    /// `bounds` field is ignored; bounds are supplied per solve.
    #[cfg(test)]
    pub fn new(p: &LpProblem) -> Self {
        Self::from_parts(p.n, &p.objective, &p.rows)
    }

    /// Builds from raw parts: structural count, dense objective, rows.
    pub fn from_parts(n: usize, objective: &[f64], rows: &[LpRow]) -> Self {
        let m = rows.len();
        let ncols = n + 2 * m;
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        let mut rhs = Vec::with_capacity(m);
        let mut slack_bounds = Vec::with_capacity(m);
        for (i, row) in rows.iter().enumerate() {
            for &(j, a) in &row.coeffs {
                if a != 0.0 {
                    columns[j].push((i, a));
                }
            }
            rhs.push(row.rhs);
            // Row reads `a·x + s = rhs`, so `s = rhs − a·x`.
            slack_bounds.push(match row.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            });
            columns[n + i].push((i, 1.0));
            // Artificial columns have a stable identity (one per row, unit
            // coefficient) so that a parent basis containing a residual
            // artificial — pinned to zero — warm-starts children verbatim.
            columns[n + m + i].push((i, 1.0));
        }
        let mut cost = vec![0.0; ncols];
        cost[..n].copy_from_slice(&objective[..n]);
        Self {
            m,
            n,
            ncols,
            cols: ColMatrix::from_columns(m, &columns),
            cost,
            rhs,
            slack_bounds,
        }
    }

    /// Per-solve bound arrays over all columns. Artificials are pinned to
    /// `[0, 0]`; the cold solve relaxes the ones it needs for phase 1.
    fn column_bounds(&self, bounds: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
        let mut lower = vec![0.0; self.ncols];
        let mut upper = vec![0.0; self.ncols];
        for j in 0..self.n {
            lower[j] = bounds[j].0;
            upper[j] = bounds[j].1;
        }
        for i in 0..self.m {
            lower[self.n + i] = self.slack_bounds[i].0;
            upper[self.n + i] = self.slack_bounds[i].1;
        }
        (lower, upper)
    }

    /// Cold solve: two-phase primal simplex from the all-slack basis.
    ///
    /// # Errors
    ///
    /// [`SolveError::IterationLimit`] on the pivot safety limit or
    /// numerical breakdown (singular refactorization).
    pub fn solve_primal(
        &self,
        bounds: &[(f64, f64)],
        bland_switch: usize,
    ) -> Result<RevisedOutcome, SolveError> {
        let mut stats = LpStats::default();
        if self.m == 0 {
            return Ok(self.trivial_solution(bounds, stats));
        }
        let (mut lower, mut upper) = self.column_bounds(bounds);
        let mut status = vec![ColStatus::AtLower; self.ncols];
        for j in 0..self.n {
            if self.cost[j] < 0.0 && lower[j] < upper[j] {
                status[j] = ColStatus::AtUpper;
            }
        }

        // Initial point: structurals at their chosen bound; each row gets
        // its slack basic when the implied value fits the slack bounds, and
        // a phase-1 artificial otherwise.
        let mut act = self.rhs.clone();
        for j in 0..self.n {
            let v = nonbasic_value(status[j], lower[j], upper[j]);
            self.cols.col_axpy(j, -v, &mut act);
        }
        let mut basic = Vec::with_capacity(self.m);
        let mut xb = Vec::with_capacity(self.m);
        let mut phase1_cost: Option<Vec<f64>> = None;
        for i in 0..self.m {
            let s = act[i];
            let (slb, sub) = self.slack_bounds[i];
            let art = self.n + self.m + i;
            if s >= slb - FEAS_TOL && s <= sub + FEAS_TOL {
                basic.push(self.n + i);
                status[self.n + i] = ColStatus::Basic;
                xb.push(s);
            } else {
                let p1 = phase1_cost.get_or_insert_with(|| vec![0.0; self.ncols]);
                if s < slb {
                    // Slack clamps to its (finite) lower bound; the
                    // artificial absorbs the negative residual.
                    status[self.n + i] = ColStatus::AtLower;
                    lower[art] = f64::NEG_INFINITY;
                    p1[art] = -1.0;
                    xb.push(s - slb);
                } else {
                    status[self.n + i] = ColStatus::AtUpper;
                    upper[art] = f64::INFINITY;
                    p1[art] = 1.0;
                    xb.push(s - sub);
                }
                basic.push(art);
                status[art] = ColStatus::Basic;
            }
        }

        let mut st = SolveState {
            eng: self,
            lower,
            upper,
            basic,
            status,
            xb,
            fact: Factorization::identity(self.m),
            stats: LpStats {
                refactorizations: 1,
                ..LpStats::default()
            },
        };
        let iter_limit = self.iter_limit();

        // Phase 1: drive the artificial residuals to zero.
        if let Some(p1) = phase1_cost {
            match st.run_primal(&p1, bland_switch, iter_limit)? {
                PhaseEnd::Unbounded => {
                    // Phase-1 objective is bounded below by 0; an unbounded
                    // ray here means numerical breakdown.
                    return Err(SolveError::IterationLimit);
                }
                PhaseEnd::Optimal => {}
            }
            let infeas: f64 = (0..self.m)
                .map(|i| {
                    let art = self.n + self.m + i;
                    match st.status[art] {
                        ColStatus::Basic => {
                            let slot = st.basic.iter().position(|&c| c == art);
                            slot.map_or(0.0, |s| st.xb[s].abs())
                        }
                        _ => 0.0,
                    }
                })
                .sum();
            if infeas > 1e-6 {
                stats = st.stats;
                return Ok(RevisedOutcome {
                    outcome: LpOutcome::Infeasible,
                    basis: None,
                    stats,
                });
            }
            // Pin every artificial back to [0, 0] for phase 2.
            for i in 0..self.m {
                let art = self.n + self.m + i;
                st.lower[art] = 0.0;
                st.upper[art] = 0.0;
            }
        }

        // Phase 2: the true objective, continuing the per-solve pivot
        // counter so the anti-cycling switch never resets mid-solve.
        let cost = self.cost.clone();
        match st.run_primal(&cost, bland_switch, iter_limit)? {
            PhaseEnd::Unbounded => Ok(RevisedOutcome {
                outcome: LpOutcome::Unbounded,
                basis: None,
                stats: st.stats,
            }),
            PhaseEnd::Optimal => Ok(st.extract()),
        }
    }

    /// Warm re-solve: dual simplex starting from `start` (typically the
    /// parent node's optimal basis) under new `bounds`. The basis is dual
    /// feasible because costs and the matrix are unchanged; primal
    /// infeasibilities introduced by the tightened bounds are repaired by
    /// dual pivots. A dual-unbounded ray proves infeasibility.
    ///
    /// # Errors
    ///
    /// [`SolveError::IterationLimit`] on the pivot safety limit or a
    /// numerically singular starting basis — callers treat any error as a
    /// warm-start miss and fall back to the cold path.
    pub fn solve_dual_from(
        &self,
        bounds: &[(f64, f64)],
        start: &Basis,
        bland_switch: usize,
    ) -> Result<RevisedOutcome, SolveError> {
        let stats = LpStats::default();
        if self.m == 0 {
            return Ok(self.trivial_solution(bounds, stats));
        }
        debug_assert_eq!(start.basic.len(), self.m);
        debug_assert_eq!(start.status.len(), self.ncols);
        let (lower, upper) = self.column_bounds(bounds);
        let basis_cols = self.gather_basis_columns(&start.basic);
        let fact = Factorization::factor(&basis_cols).map_err(|_| SolveError::IterationLimit)?;
        let mut st = SolveState {
            eng: self,
            lower,
            upper,
            basic: start.basic.clone(),
            status: start.status.clone(),
            xb: Vec::new(),
            fact,
            stats: LpStats {
                refactorizations: 1,
                ..LpStats::default()
            },
        };
        st.recompute_xb();
        let cost = self.cost.clone();
        match st.run_dual(&cost, bland_switch, self.iter_limit())? {
            DualEnd::Infeasible => Ok(RevisedOutcome {
                outcome: LpOutcome::Infeasible,
                basis: None,
                stats: st.stats,
            }),
            DualEnd::PrimalFeasible => Ok(st.extract()),
        }
    }

    fn iter_limit(&self) -> usize {
        200 * (self.m + self.ncols) + 10_000
    }

    fn gather_basis_columns(&self, basic: &[usize]) -> Vec<Vec<(usize, f64)>> {
        basic
            .iter()
            .map(|&j| {
                let (rows, vals) = self.cols.col(j);
                rows.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect()
    }

    /// `m == 0`: optimum is each variable at its objective-preferred bound.
    fn trivial_solution(&self, bounds: &[(f64, f64)], stats: LpStats) -> RevisedOutcome {
        let x: Vec<f64> = (0..self.n)
            .map(|j| {
                if self.cost[j] < 0.0 {
                    bounds[j].1
                } else {
                    bounds[j].0
                }
            })
            .collect();
        let objective = x.iter().zip(&self.cost).map(|(a, b)| a * b).sum();
        let status: Vec<ColStatus> = (0..self.ncols)
            .map(|j| {
                if j < self.n && self.cost[j] < 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                }
            })
            .collect();
        RevisedOutcome {
            outcome: LpOutcome::Optimal {
                x,
                objective,
                iterations: 0,
            },
            basis: Some(Basis {
                basic: Vec::new(),
                status,
            }),
            stats,
        }
    }
}

fn nonbasic_value(status: ColStatus, lower: f64, upper: f64) -> f64 {
    match status {
        ColStatus::AtLower => {
            debug_assert!(lower.is_finite());
            lower
        }
        ColStatus::AtUpper => {
            debug_assert!(upper.is_finite());
            upper
        }
        ColStatus::Basic => 0.0,
    }
}

enum PhaseEnd {
    Optimal,
    Unbounded,
}

enum DualEnd {
    PrimalFeasible,
    Infeasible,
}

/// Mutable solver state threaded through the primal/dual iteration loops.
struct SolveState<'a> {
    eng: &'a RevisedEngine,
    lower: Vec<f64>,
    upper: Vec<f64>,
    basic: Vec<usize>,
    status: Vec<ColStatus>,
    /// Values of the basic columns, by slot.
    xb: Vec<f64>,
    fact: Factorization,
    stats: LpStats,
}

impl SolveState<'_> {
    fn refactor(&mut self) -> Result<(), SolveError> {
        let cols = self.eng.gather_basis_columns(&self.basic);
        self.fact = Factorization::factor(&cols).map_err(|_| SolveError::IterationLimit)?;
        self.stats.refactorizations += 1;
        self.recompute_xb();
        Ok(())
    }

    /// `x_B = B⁻¹ (rhs − Σ_nonbasic A_j x_j)`; also resets accumulated
    /// floating-point drift after each refactorization.
    fn recompute_xb(&mut self) {
        let mut b = self.eng.rhs.clone();
        for j in 0..self.eng.ncols {
            if self.status[j] != ColStatus::Basic {
                let v = nonbasic_value(self.status[j], self.lower[j], self.upper[j]);
                self.eng.cols.col_axpy(j, -v, &mut b);
            }
        }
        let mut xb = Vec::new();
        self.fact.ftran(&b, &mut xb);
        self.xb = xb;
    }

    fn c_basic(&self, cost: &[f64]) -> Vec<f64> {
        self.basic.iter().map(|&j| cost[j]).collect()
    }

    /// Primal simplex iterations until optimality or an unbounded ray.
    fn run_primal(
        &mut self,
        cost: &[f64],
        bland_switch: usize,
        iter_limit: usize,
    ) -> Result<PhaseEnd, SolveError> {
        let m = self.eng.m;
        let mut y = Vec::new();
        let mut w = Vec::new();
        let mut col_dense = vec![0.0; m];
        loop {
            if self.stats.pivots >= iter_limit {
                return Err(SolveError::IterationLimit);
            }
            let bland = self.stats.pivots > bland_switch;
            if bland {
                self.stats.bland_engaged = true;
            }

            // Pricing: d_j = c_j − y·A_j over nonbasic, non-fixed columns.
            let cb = self.c_basic(cost);
            self.fact.btran(&cb, &mut y);
            let mut enter = None;
            let mut best_viol = DJ_TOL;
            for (j, &cj) in cost.iter().enumerate().take(self.eng.ncols) {
                if self.status[j] == ColStatus::Basic || self.lower[j] >= self.upper[j] {
                    continue;
                }
                let d = cj - self.eng.cols.col_dot(j, &y);
                let viol = match self.status[j] {
                    ColStatus::AtLower => -d,
                    ColStatus::AtUpper => d,
                    ColStatus::Basic => unreachable!(),
                };
                if viol > best_viol {
                    enter = Some(j);
                    if bland {
                        break; // Bland: first eligible index.
                    }
                    best_viol = viol;
                }
            }
            let Some(q) = enter else {
                return Ok(PhaseEnd::Optimal);
            };
            let dir = match self.status[q] {
                ColStatus::AtLower => 1.0,
                _ => -1.0,
            };

            // Direction through the basis.
            col_dense.iter_mut().for_each(|v| *v = 0.0);
            self.eng.cols.col_axpy(q, 1.0, &mut col_dense);
            self.fact.ftran(&col_dense, &mut w);

            // Ratio test: entering's own range vs basic variables hitting a
            // bound. Ties prefer the bound flip, then (Dantzig) the larger
            // |w_i| for stability, (Bland) the smaller basic column index.
            let mut best_t = self.upper[q] - self.lower[q];
            let mut leave: Option<usize> = None;
            for (i, &wi) in w.iter().enumerate() {
                let rate = -dir * wi;
                let limit = if rate > PIVOT_TOL {
                    (self.upper[self.basic[i]] - self.xb[i]) / rate
                } else if rate < -PIVOT_TOL {
                    (self.lower[self.basic[i]] - self.xb[i]) / rate
                } else {
                    continue;
                };
                if !limit.is_finite() {
                    continue;
                }
                let limit = limit.max(0.0);
                if limit < best_t - RATIO_EPS {
                    best_t = limit;
                    leave = Some(i);
                } else if (limit - best_t).abs() <= RATIO_EPS {
                    if let Some(l) = leave {
                        let take = if bland {
                            self.basic[i] < self.basic[l]
                        } else {
                            let (wi_m, wl_m) = (w[i].abs(), w[l].abs());
                            wi_m > wl_m + RATIO_EPS
                                || ((wi_m - wl_m).abs() <= RATIO_EPS
                                    && self.basic[i] < self.basic[l])
                        };
                        if take {
                            leave = Some(i);
                        }
                    }
                }
            }
            if !best_t.is_finite() {
                return Ok(PhaseEnd::Unbounded);
            }

            // Apply the step.
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    self.xb[i] += -dir * wi * best_t;
                }
            }
            match leave {
                None => {
                    // Bound flip: no basis change, no eta growth.
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        _ => ColStatus::AtLower,
                    };
                }
                Some(r) => {
                    let entering_value =
                        nonbasic_value(self.status[q], self.lower[q], self.upper[q]) + dir * best_t;
                    let leaving = self.basic[r];
                    self.status[leaving] = if -dir * w[r] > 0.0 {
                        ColStatus::AtUpper
                    } else {
                        ColStatus::AtLower
                    };
                    self.basic[r] = q;
                    self.status[q] = ColStatus::Basic;
                    self.xb[r] = entering_value;
                    if self.fact.update(r, &w).is_err() {
                        self.refactor()?;
                    }
                }
            }
            self.stats.pivots += 1;
        }
    }

    /// Dual simplex iterations until primal feasibility (optimal, since the
    /// start is dual feasible) or a dual-unbounded ray (primal infeasible).
    fn run_dual(
        &mut self,
        cost: &[f64],
        bland_switch: usize,
        iter_limit: usize,
    ) -> Result<DualEnd, SolveError> {
        let m = self.eng.m;
        let mut y = Vec::new();
        let mut rho = Vec::new();
        let mut w = Vec::new();
        let mut unit = vec![0.0; m];
        let mut col_dense = vec![0.0; m];
        loop {
            if self.stats.pivots >= iter_limit {
                return Err(SolveError::IterationLimit);
            }
            let bland = self.stats.pivots > bland_switch;
            if bland {
                self.stats.bland_engaged = true;
            }

            // Leaving: the basic variable most outside its bounds (Bland:
            // the smallest basic column index among the violated).
            let mut leave: Option<(usize, bool)> = None; // (slot, below)
            let mut best_viol = FEAS_TOL;
            let mut best_col = usize::MAX;
            for i in 0..m {
                let (lo, hi) = (self.lower[self.basic[i]], self.upper[self.basic[i]]);
                let (viol, below) = if self.xb[i] < lo {
                    (lo - self.xb[i], true)
                } else if self.xb[i] > hi {
                    (self.xb[i] - hi, false)
                } else {
                    continue;
                };
                if bland {
                    if viol > FEAS_TOL && self.basic[i] < best_col {
                        best_col = self.basic[i];
                        leave = Some((i, below));
                    }
                } else if viol > best_viol {
                    best_viol = viol;
                    leave = Some((i, below));
                }
            }
            let Some((r, below)) = leave else {
                return Ok(DualEnd::PrimalFeasible);
            };

            // Pivot row ρ = eᵣᵀ B⁻¹ and current duals y.
            unit.iter_mut().for_each(|v| *v = 0.0);
            unit[r] = 1.0;
            self.fact.btran(&unit, &mut rho);
            let cb = self.c_basic(cost);
            self.fact.btran(&cb, &mut y);

            // Dual ratio test: among sign-compatible nonbasic columns pick
            // the one with the smallest |d_j| / |α_j|.
            let mut enter: Option<(usize, f64)> = None; // (col, alpha)
            let mut best_ratio = f64::INFINITY;
            for (j, &cj) in cost.iter().enumerate().take(self.eng.ncols) {
                if self.status[j] == ColStatus::Basic || self.lower[j] >= self.upper[j] {
                    continue;
                }
                let alpha = self.eng.cols.col_dot(j, &rho);
                let compatible = match (below, self.status[j]) {
                    // x_Br must increase: raise an at-lower var with α < 0
                    // or drop an at-upper var with α > 0 — and vice versa.
                    (true, ColStatus::AtLower) => alpha < -PIVOT_TOL,
                    (true, ColStatus::AtUpper) => alpha > PIVOT_TOL,
                    (false, ColStatus::AtLower) => alpha > PIVOT_TOL,
                    (false, ColStatus::AtUpper) => alpha < -PIVOT_TOL,
                    (_, ColStatus::Basic) => false,
                };
                if !compatible {
                    continue;
                }
                let d = cj - self.eng.cols.col_dot(j, &y);
                let ratio = d.abs() / alpha.abs();
                let take = match enter {
                    None => true,
                    Some((_, ea)) => {
                        if bland {
                            // Bland: `j` ascends, so keeping the first of
                            // any ratio tie picks the smallest index.
                            ratio < best_ratio - RATIO_EPS
                        } else {
                            ratio < best_ratio - RATIO_EPS
                                || ((ratio - best_ratio).abs() <= RATIO_EPS
                                    && alpha.abs() > ea.abs() + RATIO_EPS)
                        }
                    }
                };
                if take {
                    best_ratio = ratio;
                    enter = Some((j, alpha));
                }
            }
            let Some((q, _alpha)) = enter else {
                return Ok(DualEnd::Infeasible);
            };

            // Direction and primal step.
            col_dense.iter_mut().for_each(|v| *v = 0.0);
            self.eng.cols.col_axpy(q, 1.0, &mut col_dense);
            self.fact.ftran(&col_dense, &mut w);
            if w[r].abs() <= PIVOT_TOL {
                // FTRAN disagrees with the pivot row — drift; refactor and
                // retry. Counts as an iteration so the safety limit still
                // bounds the loop.
                self.refactor()?;
                self.stats.pivots += 1;
                continue;
            }
            let target = if below {
                self.lower[self.basic[r]]
            } else {
                self.upper[self.basic[r]]
            };
            let delta = (self.xb[r] - target) / w[r];
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    self.xb[i] -= delta * wi;
                }
            }
            let leaving = self.basic[r];
            self.status[leaving] = if below {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            };
            let entering_value = nonbasic_value(self.status[q], self.lower[q], self.upper[q]);
            self.basic[r] = q;
            self.status[q] = ColStatus::Basic;
            self.xb[r] = entering_value + delta;
            if self.fact.update(r, &w).is_err() {
                self.refactor()?;
            }
            self.stats.pivots += 1;
        }
    }

    /// Builds the optimal outcome: structural values, objective, basis.
    fn extract(self) -> RevisedOutcome {
        let eng = self.eng;
        let mut values = vec![0.0; eng.ncols];
        for (j, v) in values.iter_mut().enumerate() {
            if self.status[j] != ColStatus::Basic {
                *v = nonbasic_value(self.status[j], self.lower[j], self.upper[j]);
            }
        }
        for (i, &j) in self.basic.iter().enumerate() {
            values[j] = self.xb[i];
        }
        let x: Vec<f64> = values[..eng.n].to_vec();
        let objective: f64 = x.iter().zip(&eng.cost[..eng.n]).map(|(a, b)| a * b).sum();
        RevisedOutcome {
            outcome: LpOutcome::Optimal {
                x,
                objective,
                iterations: self.stats.pivots,
            },
            basis: Some(Basis {
                basic: self.basic,
                status: self.status,
            }),
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::simplex::solve_lp;

    const BLAND: usize = 2_000;

    fn lp(n: usize, objective: Vec<f64>, rows: Vec<LpRow>, bounds: Vec<(f64, f64)>) -> LpProblem {
        LpProblem {
            n,
            objective,
            rows,
            bounds,
        }
    }

    fn solve_cold(p: &LpProblem) -> RevisedOutcome {
        RevisedEngine::new(p)
            .solve_primal(&p.bounds, BLAND)
            .unwrap()
    }

    fn optimal(p: &LpProblem) -> (Vec<f64>, f64) {
        match solve_cold(p).outcome {
            LpOutcome::Optimal { x, objective, .. } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        let p = lp(
            2,
            vec![-1.0, -1.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                cmp: Cmp::Le,
                rhs: 4.0,
            }],
            vec![(0.0, 3.0), (0.0, 3.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((obj + 4.0).abs() < 1e-6);
        assert!((x[0] + x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_constraints() {
        let p = lp(
            2,
            vec![1.0, 1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    cmp: Cmp::Eq,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 10.0), (0.0, 10.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((obj - 2.0).abs() < 1e-6, "obj={obj}");
        assert!((x[0] - 1.5).abs() < 1e-6);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let p = lp(
            1,
            vec![0.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 5.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 3.0,
                },
            ],
            vec![(0.0, 10.0)],
        );
        assert!(matches!(solve_cold(&p).outcome, LpOutcome::Infeasible));
    }

    #[test]
    fn negative_bounds_and_fixed_vars() {
        // min x with x in [-5, 5], x >= -3  => x = -3; y fixed at 2.
        let p = lp(
            2,
            vec![1.0, 0.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                cmp: Cmp::Ge,
                rhs: -1.0,
            }],
            vec![(-5.0, 5.0), (2.0, 2.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] + 3.0).abs() < 1e-6, "x={x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6);
        assert!((obj + 3.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_picks_best_bounds() {
        let p = lp(2, vec![1.0, -1.0], vec![], vec![(1.0, 4.0), (2.0, 6.0)]);
        let (x, obj) = optimal(&p);
        assert_eq!(x, vec![1.0, 6.0]);
        assert!((obj + 5.0).abs() < 1e-9);
    }

    #[test]
    fn equality_only_and_redundant_rows() {
        let p = lp(
            2,
            vec![0.0, 0.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 3.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    cmp: Cmp::Eq,
                    rhs: 1.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 3.0,
                },
            ],
            vec![(0.0, 10.0), (0.0, 10.0)],
        );
        let (x, _) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    /// Beale's cycling example must terminate and reach the optimum.
    #[test]
    fn beale_terminates_at_optimum() {
        let p = lp(
            4,
            vec![-0.75, 150.0, -0.02, 6.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    cmp: Cmp::Le,
                    rhs: 0.0,
                },
                LpRow {
                    coeffs: vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    cmp: Cmp::Le,
                    rhs: 0.0,
                },
                LpRow {
                    coeffs: vec![(2, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 1e4); 4],
        );
        let (x, obj) = optimal(&p);
        assert!((obj + 0.05).abs() < 1e-6, "obj={obj}");
        assert!((x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bland_from_first_pivot_still_optimal() {
        let p = lp(
            2,
            vec![1.0, 1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    cmp: Cmp::Eq,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 10.0), (0.0, 10.0)],
        );
        let eng = RevisedEngine::new(&p);
        let with_dantzig = eng.solve_primal(&p.bounds, BLAND).unwrap();
        let with_bland = eng.solve_primal(&p.bounds, 0).unwrap();
        let (LpOutcome::Optimal { objective: a, .. }, LpOutcome::Optimal { objective: b, .. }) =
            (with_dantzig.outcome, with_bland.outcome)
        else {
            panic!("expected optimal outcomes");
        };
        assert!((a - b).abs() < 1e-6);
        assert!(with_bland.stats.bland_engaged);
    }

    #[test]
    fn dual_warm_start_matches_cold_after_bound_tightening() {
        // Knapsack-ish LP; tighten x0's upper bound and re-solve warm.
        let p = lp(
            3,
            vec![-10.0, -13.0, -7.0],
            vec![LpRow {
                coeffs: vec![(0, 3.0), (1, 4.0), (2, 2.0)],
                cmp: Cmp::Le,
                rhs: 6.0,
            }],
            vec![(0.0, 1.0); 3],
        );
        let eng = RevisedEngine::new(&p);
        let cold = eng.solve_primal(&p.bounds, BLAND).unwrap();
        let basis = cold.basis.unwrap();
        let mut tightened = p.bounds.clone();
        tightened[0] = (0.0, 0.0);
        let warm = eng.solve_dual_from(&tightened, &basis, BLAND).unwrap();
        let cold2 = eng.solve_primal(&tightened, BLAND).unwrap();
        let (LpOutcome::Optimal { objective: a, .. }, LpOutcome::Optimal { objective: b, .. }) =
            (warm.outcome, cold2.outcome)
        else {
            panic!("expected optimal outcomes");
        };
        assert!((a - b).abs() < 1e-6, "warm {a} vs cold {b}");
    }

    #[test]
    fn dual_warm_start_detects_infeasible_child() {
        // x + y >= 2 with both forced to 0 is infeasible.
        let p = lp(
            2,
            vec![1.0, 1.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                cmp: Cmp::Ge,
                rhs: 2.0,
            }],
            vec![(0.0, 5.0), (0.0, 5.0)],
        );
        let eng = RevisedEngine::new(&p);
        let cold = eng.solve_primal(&p.bounds, BLAND).unwrap();
        let basis = cold.basis.unwrap();
        let infeasible_bounds = vec![(0.0, 0.0), (0.0, 0.0)];
        let warm = eng
            .solve_dual_from(&infeasible_bounds, &basis, BLAND)
            .unwrap();
        assert!(matches!(warm.outcome, LpOutcome::Infeasible));
    }

    /// Differential fuzz against the dense tableau engine on random LPs.
    #[test]
    fn matches_dense_engine_on_random_lps() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // xorshift64*; deterministic, no external RNG dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            state
        };
        let mut int_in = |lo: i64, hi: i64| lo + (next() % (hi - lo + 1) as u64) as i64;
        for case in 0..400 {
            let n = int_in(1, 5) as usize;
            let n_rows = int_in(1, 4) as usize;
            let objective: Vec<f64> = (0..n).map(|_| int_in(-5, 5) as f64).collect();
            let rows: Vec<LpRow> = (0..n_rows)
                .map(|_| LpRow {
                    coeffs: (0..n)
                        .filter_map(|j| {
                            let c = int_in(-4, 4) as f64;
                            (c != 0.0).then_some((j, c))
                        })
                        .collect(),
                    cmp: match int_in(0, 2) {
                        0 => Cmp::Le,
                        1 => Cmp::Ge,
                        _ => Cmp::Eq,
                    },
                    rhs: int_in(-6, 10) as f64,
                })
                .collect();
            let bounds: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let lo = int_in(-3, 2) as f64;
                    (lo, lo + int_in(0, 5) as f64)
                })
                .collect();
            let p = lp(n, objective, rows, bounds);
            let dense = solve_lp(&p).unwrap();
            let revised = solve_cold(&p).outcome;
            match (dense, revised) {
                (
                    LpOutcome::Optimal {
                        objective: od,
                        x: xd,
                        ..
                    },
                    LpOutcome::Optimal {
                        objective: or,
                        x: xr,
                        ..
                    },
                ) => {
                    assert!(
                        (od - or).abs() < 1e-6,
                        "case {case}: dense {od} vs revised {or}\n dense x {xd:?} revised x {xr:?}\n {p:?}"
                    );
                }
                (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                (d, r) => panic!("case {case}: dense {d:?} vs revised {r:?}\n {p:?}"),
            }
        }
    }
}
