//! Sparse column store for the revised simplex.
//!
//! The reconstruction ILP's constraint matrix is extremely sparse: one-hot
//! rows touch `dim` binaries, link rows a handful more, and the big-M
//! nullifier rows only three or four variables each. The dense tableau the
//! previous solver carried multiplied every pivot by the full `m × n` array;
//! the revised simplex only ever needs (a) a column of `A` at a time and
//! (b) sparse dot products against dense row/price vectors, which is what
//! this compressed-sparse-column layout provides.

/// Immutable compressed-sparse-column matrix.
///
/// Entries within a column are stored in ascending row order; iteration
/// order (and therefore floating-point summation order) is fixed, which the
/// byte-identical-across-worker-counts guarantee of the parallel B&B relies
/// on.
#[derive(Debug, Clone)]
pub(crate) struct ColMatrix {
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl ColMatrix {
    /// Builds from per-column `(row, value)` lists. Zero entries are
    /// dropped; duplicate rows within a column are summed.
    pub fn from_columns(m: usize, cols: &[Vec<(usize, f64)>]) -> Self {
        let mut col_ptr = Vec::with_capacity(cols.len() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for col in cols {
            scratch.clear();
            scratch.extend_from_slice(col);
            scratch.sort_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                debug_assert!(r < m, "row index {r} out of range (m = {m})");
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == r {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self {
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of columns.
    #[cfg(test)]
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Stored non-zero count.
    #[cfg(test)]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(rows, values)` slices of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// Sparse dot product `A_j · y` against a dense vector.
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += v * y[r];
        }
        acc
    }

    /// `out += alpha * A_j` (sparse scatter into a dense vector).
    pub fn col_axpy(&self, j: usize, alpha: f64, out: &mut [f64]) {
        if alpha == 0.0 {
            return;
        }
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += alpha * v;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn builds_and_reads_columns() {
        let cols = vec![
            vec![(0, 1.0), (2, -3.0)],
            vec![],
            vec![(1, 2.0), (1, 0.5), (0, 4.0)],
        ];
        let m = ColMatrix::from_columns(3, &cols);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 4);
        let (r, v) = m.col(0);
        assert_eq!(r, &[0, 2]);
        assert_eq!(v, &[1.0, -3.0]);
        let (r, v) = m.col(1);
        assert!(r.is_empty() && v.is_empty());
        // Duplicates summed, rows sorted.
        let (r, v) = m.col(2);
        assert_eq!(r, &[0, 1]);
        assert_eq!(v, &[4.0, 2.5]);
    }

    #[test]
    fn zero_entries_dropped() {
        let cols = vec![vec![(0, 1.0), (0, -1.0), (1, 2.0)]];
        let m = ColMatrix::from_columns(2, &cols);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0), (&[1usize][..], &[2.0][..]));
    }

    #[test]
    fn dot_and_axpy() {
        let cols = vec![vec![(0, 2.0), (2, 1.0)]];
        let m = ColMatrix::from_columns(3, &cols);
        assert_eq!(m.col_dot(0, &[1.0, 5.0, 3.0]), 5.0);
        let mut out = vec![0.0; 3];
        m.col_axpy(0, 2.0, &mut out);
        assert_eq!(out, vec![4.0, 0.0, 2.0]);
    }
}
