//! # coremap-ilp
//!
//! A self-contained mixed-integer linear programming (MILP) solver built for
//! the core-map reconstruction ILP of *"Know Your Neighbor"* (DATE 2022,
//! Sec. II-C), and usable as a small general-purpose solver.
//!
//! The paper formulates tile-position recovery as an ILP with integer
//! row/column variables, binary direction-nullifier variables and one-hot /
//! occupancy indicator binaries. Rather than depending on an external solver
//! (CPLEX / CBC), this crate implements the whole stack from scratch:
//!
//! * [`Model`] — a builder-style problem description: bounded continuous,
//!   integer and binary [`Var`]s, linear constraints and a linear
//!   minimization objective.
//! * [`presolve`] — equality merging, bound tightening and constraint
//!   deduplication, mapped transparently back to the original variables.
//! * A dense **two-phase primal simplex** with Bland's anti-cycling rule for
//!   the LP relaxations ([`simplex`]).
//! * **Branch & bound** on fractional integer variables with best-incumbent
//!   pruning ([`solve`](Model::solve)).
//! * An independent exact feasibility [`verify`](Solution::verify) pass on
//!   the final incumbent, so floating-point drift inside the simplex can
//!   never silently produce an infeasible "solution".
//!
//! ```
//! use coremap_ilp::{Model, Cmp};
//!
//! # fn main() -> Result<(), coremap_ilp::SolveError> {
//! // maximize 5a + 4b  s.t.  6a + 4b <= 24, a + 2b <= 6, a,b >= 0 integer
//! let mut m = Model::new();
//! let a = m.int_var("a", 0, 10);
//! let b = m.int_var("b", 0, 10);
//! m.constraint(m.expr().term(6.0, a).term(4.0, b), Cmp::Le, 24.0);
//! m.constraint(m.expr().term(1.0, a).term(2.0, b), Cmp::Le, 6.0);
//! m.minimize(m.expr().term(-5.0, a).term(-4.0, b));
//! let sol = m.solve()?;
//! assert_eq!(sol.int_value(a), 4);
//! assert_eq!(sol.int_value(b), 0);
//! assert!((sol.objective() + 20.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod lu;
mod model;
pub mod presolve;
mod revised;
pub mod simplex;
mod solution;
mod sparse;

pub use branch_bound::{BbConfig, Branching, LpEngine};
pub use error::SolveError;
pub use model::{Cmp, ExprBuilder, LinExpr, Model, Var, VarKind};
pub use solution::{Solution, SolveStats, Status};
