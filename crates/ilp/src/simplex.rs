//! Dense two-phase primal simplex for the LP relaxations.
//!
//! The LPs solved here are small (a few hundred rows/columns after the
//! model-level merging performed by `coremap-core`), so a dense tableau with
//! Dantzig pricing and a Bland's-rule anti-cycling fallback is simple,
//! robust and fast enough.
//!
//! Standardization: every variable is shifted so its lower bound becomes 0;
//! finite upper bounds become explicit `<=` rows; rows are scaled to a
//! non-negative right-hand side; `<=` rows get slacks, `>=` rows get a
//! surplus plus an artificial, `==` rows get an artificial. Phase 1
//! minimizes the artificial sum; phase 2 minimizes the true objective with
//! the artificial columns barred from re-entering the basis.

// Dense numeric kernels index several parallel arrays per loop; iterator
// rewrites obscure the math without removing a bounds check.
#![allow(clippy::needless_range_loop)]

use coremap_obs as obs;

use crate::{Cmp, SolveError};

/// Feasibility / integrality tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;
/// Pivots of Dantzig pricing before switching to Bland's rule.
const BLAND_SWITCH: usize = 2_000;

/// A linear constraint row of an [`LpProblem`], in sparse form.
#[derive(Debug, Clone)]
pub struct LpRow {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub coeffs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A bounded linear program: minimize `objective . x` subject to the rows
/// and to `bounds[j].0 <= x[j] <= bounds[j].1`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub n: usize,
    /// Dense objective vector of length `n`.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
    /// Inclusive finite bounds per variable.
    pub bounds: Vec<(f64, f64)>,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal point (length `n`).
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
        /// Simplex pivots used.
        iterations: usize,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

/// Solves the LP with two-phase primal simplex.
///
/// # Errors
///
/// Returns [`SolveError::IterationLimit`] if the pivot safety limit is
/// exceeded (indicates numerical trouble; the limit scales with problem
/// size).
pub fn solve_lp(p: &LpProblem) -> Result<LpOutcome, SolveError> {
    solve_lp_with_bland_switch(p, BLAND_SWITCH)
}

/// [`solve_lp`] with an explicit Dantzig→Bland switch threshold.
///
/// The threshold compares against the *cumulative* pivot count of the
/// solve: once crossed — in either phase — every later pivot of the same
/// solve uses Bland's rule. Resetting the count at the phase-1→phase-2
/// transition would let a degenerate phase-2 basis revert to Dantzig
/// pricing and cycle, which is exactly the failure mode the guard exists
/// to prevent; `pub(crate)` so the anti-cycling tests can cross a tiny
/// threshold without a 2000-pivot warm-up.
pub(crate) fn solve_lp_with_bland_switch(
    p: &LpProblem,
    bland_switch: usize,
) -> Result<LpOutcome, SolveError> {
    debug_assert_eq!(p.objective.len(), p.n);
    debug_assert_eq!(p.bounds.len(), p.n);

    // --- Standardize -----------------------------------------------------
    // Shift x_j = y_j + lb_j with y_j >= 0; fixed variables (lb == ub)
    // become constants folded into the rhs.
    let mut fixed = vec![None::<f64>; p.n];
    let mut shift = vec![0.0; p.n];
    for (j, &(lb, ub)) in p.bounds.iter().enumerate() {
        debug_assert!(lb.is_finite() && ub.is_finite() && lb <= ub + FEAS_TOL);
        if (ub - lb).abs() <= FEAS_TOL {
            fixed[j] = Some(lb);
        } else {
            shift[j] = lb;
        }
    }

    // Collect standardized rows: (coeffs over free vars, cmp, rhs').
    type StdRow = (Vec<(usize, f64)>, Cmp, f64);
    let mut std_rows: Vec<StdRow> = Vec::new();
    for row in &p.rows {
        let mut rhs = row.rhs;
        let mut coeffs = Vec::with_capacity(row.coeffs.len());
        for &(j, a) in &row.coeffs {
            if let Some(v) = fixed[j] {
                rhs -= a * v;
            } else {
                rhs -= a * shift[j];
                coeffs.push((j, a));
            }
        }
        if coeffs.is_empty() {
            // Constant row: check satisfiability directly.
            let ok = match row.cmp {
                Cmp::Le => 0.0 <= rhs + FEAS_TOL,
                Cmp::Ge => 0.0 >= rhs - FEAS_TOL,
                Cmp::Eq => rhs.abs() <= FEAS_TOL,
            };
            if !ok {
                return Ok(LpOutcome::Infeasible);
            }
            continue;
        }
        std_rows.push((coeffs, row.cmp, rhs));
    }
    // Upper bounds as rows on the shifted variables.
    for (j, &(lb, ub)) in p.bounds.iter().enumerate() {
        if fixed[j].is_none() {
            std_rows.push((vec![(j, 1.0)], Cmp::Le, ub - lb));
        }
    }

    let m = std_rows.len();
    if m == 0 {
        // Only fixed variables / no constraints: optimal at bounds.
        let mut x = vec![0.0; p.n];
        for j in 0..p.n {
            x[j] = fixed[j].unwrap_or(p.bounds[j].0);
            // Minimize: pick the bound minimizing the objective.
            if fixed[j].is_none() && p.objective[j] < 0.0 {
                x[j] = p.bounds[j].1;
            }
        }
        let obj = x.iter().zip(&p.objective).map(|(a, b)| a * b).sum();
        return Ok(LpOutcome::Optimal {
            x,
            objective: obj,
            iterations: 0,
        });
    }

    // Column layout: [structural (n)] [slack/surplus (m_s)] [artificial (m_a)]
    // Build the tableau with a non-negative rhs.
    let mut slack_cols = 0usize;
    let mut art_cols = 0usize;
    // First pass: count.
    let mut normed: Vec<StdRow> = Vec::with_capacity(m);
    for (coeffs, cmp, rhs) in std_rows {
        let (coeffs, cmp, rhs) = if rhs < 0.0 {
            let flipped: Vec<(usize, f64)> = coeffs.iter().map(|&(j, a)| (j, -a)).collect();
            let cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
            (flipped, cmp, -rhs)
        } else {
            (coeffs, cmp, rhs)
        };
        match cmp {
            Cmp::Le => slack_cols += 1,
            Cmp::Ge => {
                slack_cols += 1;
                art_cols += 1;
            }
            Cmp::Eq => art_cols += 1,
        }
        normed.push((coeffs, cmp, rhs));
    }

    let n = p.n;
    let total = n + slack_cols + art_cols;
    let width = total + 1; // + rhs column
    let mut tab = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    let art_start = n + slack_cols;

    let mut next_slack = n;
    let mut next_art = art_start;
    for (i, (coeffs, cmp, rhs)) in normed.iter().enumerate() {
        let row = &mut tab[i * width..(i + 1) * width];
        for &(j, a) in coeffs {
            row[j] += a;
        }
        row[total] = *rhs;
        match cmp {
            Cmp::Le => {
                row[next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                row[next_slack] = -1.0;
                next_slack += 1;
                row[next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                row[next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    // Phase-2 cost row (true objective on shifted vars) and phase-1 cost row.
    let mut cost2 = vec![0.0f64; width];
    for j in 0..n {
        // Fixed variables have all-zero tableau columns; their (constant)
        // objective contribution is added back during extraction, so their
        // reduced cost must be zero or pricing would falsely report the
        // problem unbounded.
        if fixed[j].is_none() {
            cost2[j] = p.objective[j];
        }
    }
    // Reduced-cost rows are maintained by pivoting alongside the tableau.
    let mut cost1 = vec![0.0f64; width];
    for (i, &b) in basis.iter().enumerate() {
        if b >= art_start {
            // cost1 = sum of artificials => subtract each artificial row to
            // express the cost in terms of nonbasic columns.
            for k in 0..width {
                cost1[k] -= tab[i * width + k];
            }
        }
    }
    // (Artificial columns themselves carry +1 cost; after subtraction their
    // reduced cost is 0, which is consistent with them being basic.)
    for a in art_start..total {
        cost1[a] += 1.0;
    }

    let iter_limit = 200 * (m + total) + 10_000;
    let mut iterations = 0usize;
    let record_pivots = |iterations: usize| {
        obs::add("ilp.simplex.pivots", iterations as u64);
        if iterations > bland_switch {
            obs::inc("ilp.simplex.bland_switches");
        }
    };

    // --- Phase 1 ----------------------------------------------------------
    let allow_all = |_: usize| true;
    run_simplex(
        &mut tab,
        &mut cost1,
        Some(&mut cost2),
        &mut basis,
        m,
        width,
        total,
        allow_all,
        bland_switch,
        iter_limit,
        &mut iterations,
    )?;
    let phase1_obj = -cost1[total];
    if phase1_obj > 1e-6 {
        record_pivots(iterations);
        return Ok(LpOutcome::Infeasible);
    }

    // Drive any artificial variables still basic (at value 0) out of the
    // basis, or drop their rows if redundant.
    for i in 0..m {
        if basis[i] >= art_start {
            let row = i * width;
            if let Some(enter) = (0..art_start).find(|&j| tab[row + j].abs() > PIVOT_TOL) {
                pivot(&mut tab, &mut cost1, Some(&mut cost2), m, width, i, enter);
                basis[i] = enter;
            }
            // else: redundant zero row; harmless to leave (rhs is 0).
        }
    }

    // --- Phase 2 ----------------------------------------------------------
    // `iterations` carries over: the anti-cycling switch must not reset at
    // the phase transition.
    let mut dummy = cost1; // phase-1 row no longer needed
    let outcome = run_simplex(
        &mut tab,
        &mut cost2,
        None,
        &mut basis,
        m,
        width,
        art_start, // artificial columns barred
        |_| true,
        bland_switch,
        iter_limit,
        &mut iterations,
    )?;
    dummy.clear();
    record_pivots(iterations);
    if let Phase::Unbounded = outcome {
        return Ok(LpOutcome::Unbounded);
    }

    // Extract the solution.
    let mut y = vec![0.0f64; total];
    for (i, &b) in basis.iter().enumerate() {
        if b < total {
            y[b] = tab[i * width + total];
        }
    }
    let mut x = vec![0.0f64; n];
    for j in 0..n {
        x[j] = fixed[j].unwrap_or(y[j] + shift[j]);
    }
    let objective = x.iter().zip(&p.objective).map(|(a, b)| a * b).sum();
    Ok(LpOutcome::Optimal {
        x,
        objective,
        iterations,
    })
}

enum Phase {
    Optimal,
    Unbounded,
}

/// Runs primal simplex iterations on the tableau until optimality or
/// unboundedness. `col_limit` restricts which columns may enter the basis
/// (used to bar artificials in phase 2). `aux_cost` is a second cost row
/// kept consistent by the same pivots (phase-2 costs during phase 1).
///
/// The Dantzig→Bland anti-cycling decision compares `bland_switch` against
/// the solve-wide `iterations` count, which the caller threads through
/// both phases — a per-call counter would reset at the phase transition
/// and reopen the cycling window on degenerate bases.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tab: &mut [f64],
    cost: &mut [f64],
    mut aux_cost: Option<&mut Vec<f64>>,
    basis: &mut [usize],
    m: usize,
    width: usize,
    col_limit: usize,
    allow: impl Fn(usize) -> bool,
    bland_switch: usize,
    iter_limit: usize,
    iterations: &mut usize,
) -> Result<Phase, SolveError> {
    loop {
        if *iterations >= iter_limit {
            return Err(SolveError::IterationLimit);
        }
        // Pricing: Dantzig first, Bland's rule once we suspect cycling.
        let bland = *iterations > bland_switch;
        let mut enter = None;
        if bland {
            for j in 0..col_limit {
                if allow(j) && cost[j] < -PIVOT_TOL {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -PIVOT_TOL;
            for j in 0..col_limit {
                if allow(j) && cost[j] < best {
                    best = cost[j];
                    enter = Some(j);
                }
            }
        }
        let Some(enter) = enter else {
            return Ok(Phase::Optimal);
        };

        // Ratio test.
        let mut leave = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i * width + enter];
            if a > PIVOT_TOL {
                let ratio = tab[i * width + width - 1] / a;
                let better = ratio < best_ratio - 1e-12
                    || (bland
                        && (ratio - best_ratio).abs() <= 1e-12
                        && leave.is_none_or(|l: usize| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Ok(Phase::Unbounded);
        };

        pivot(tab, cost, aux_cost.as_deref_mut(), m, width, leave, enter);
        basis[leave] = enter;
        *iterations += 1;
    }
}

/// Gauss-Jordan pivot on `(row, col)`, updating the cost row(s).
fn pivot(
    tab: &mut [f64],
    cost: &mut [f64],
    aux_cost: Option<&mut Vec<f64>>,
    m: usize,
    width: usize,
    row: usize,
    col: usize,
) {
    let piv = tab[row * width + col];
    debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small: {piv}");
    let inv = 1.0 / piv;
    for k in 0..width {
        tab[row * width + k] *= inv;
    }
    // Snapshot the pivot row to avoid aliasing while updating others.
    let pivot_row: Vec<f64> = tab[row * width..(row + 1) * width].to_vec();
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = tab[i * width + col];
        if factor.abs() > 0.0 {
            for k in 0..width {
                tab[i * width + k] -= factor * pivot_row[k];
            }
            tab[i * width + col] = 0.0; // exact zero for stability
        }
    }
    let factor = cost[col];
    if factor.abs() > 0.0 {
        for k in 0..width {
            cost[k] -= factor * pivot_row[k];
        }
        cost[col] = 0.0;
    }
    if let Some(aux) = aux_cost {
        let factor = aux[col];
        if factor.abs() > 0.0 {
            for k in 0..width {
                aux[k] -= factor * pivot_row[k];
            }
            aux[col] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn lp(n: usize, objective: Vec<f64>, rows: Vec<LpRow>, bounds: Vec<(f64, f64)>) -> LpProblem {
        LpProblem {
            n,
            objective,
            rows,
            bounds,
        }
    }

    fn optimal(p: &LpProblem) -> (Vec<f64>, f64) {
        match solve_lp(p).unwrap() {
            LpOutcome::Optimal { x, objective, .. } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        // min -x - y  s.t. x + y <= 4, x <= 3, y <= 3 => obj -4
        let p = lp(
            2,
            vec![-1.0, -1.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                cmp: Cmp::Le,
                rhs: 4.0,
            }],
            vec![(0.0, 3.0), (0.0, 3.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((obj + 4.0).abs() < 1e-6);
        assert!((x[0] + x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y s.t. x + y >= 2, x - y == 1, x,y in [0,10]
        // => y = x - 1, 2x - 1 >= 2, x >= 1.5 => x=1.5, y=0.5, obj=2
        let p = lp(
            2,
            vec![1.0, 1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    cmp: Cmp::Eq,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 10.0), (0.0, 10.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((obj - 2.0).abs() < 1e-6, "obj={obj}");
        assert!((x[0] - 1.5).abs() < 1e-6);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let p = lp(
            1,
            vec![0.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 5.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 3.0,
                },
            ],
            vec![(0.0, 10.0)],
        );
        assert!(matches!(solve_lp(&p).unwrap(), LpOutcome::Infeasible));
    }

    #[test]
    fn negative_lower_bounds_shifted_correctly() {
        // min x s.t. x >= -3 with x in [-5, 5] => x = -3
        let p = lp(
            1,
            vec![1.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0)],
                cmp: Cmp::Ge,
                rhs: -3.0,
            }],
            vec![(-5.0, 5.0)],
        );
        let (x, obj) = optimal(&p);
        assert!((x[0] + 3.0).abs() < 1e-6);
        assert!((obj + 3.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variables_fold_into_rhs() {
        // y fixed to 2; min x s.t. x + y >= 5 => x = 3.
        let p = lp(
            2,
            vec![1.0, 0.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                cmp: Cmp::Ge,
                rhs: 5.0,
            }],
            vec![(0.0, 10.0), (2.0, 2.0)],
        );
        let (x, _) = optimal(&p);
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_picks_best_bounds() {
        let p = lp(2, vec![1.0, -1.0], vec![], vec![(1.0, 4.0), (2.0, 6.0)]);
        let (x, obj) = optimal(&p);
        assert_eq!(x, vec![1.0, 6.0]);
        assert!((obj + 5.0).abs() < 1e-9);
    }

    #[test]
    fn constant_row_infeasibility() {
        // x fixed to 1 and constraint x >= 2 => infeasible via constant row.
        let p = lp(
            1,
            vec![0.0],
            vec![LpRow {
                coeffs: vec![(0, 1.0)],
                cmp: Cmp::Ge,
                rhs: 2.0,
            }],
            vec![(1.0, 1.0)],
        );
        assert!(matches!(solve_lp(&p).unwrap(), LpOutcome::Infeasible));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate corner: several redundant constraints meet.
        let p = lp(
            2,
            vec![-1.0, -1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 2.0), (1, 2.0)],
                    cmp: Cmp::Le,
                    rhs: 4.0,
                },
            ],
            vec![(0.0, 5.0), (0.0, 5.0)],
        );
        let (_, obj) = optimal(&p);
        assert!((obj + 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_only_system() {
        // x + y == 3, x - y == 1 => x=2, y=1.
        let p = lp(
            2,
            vec![0.0, 0.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 3.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (1, -1.0)],
                    cmp: Cmp::Eq,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 10.0), (0.0, 10.0)],
        );
        let (x, _) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_no_panic() {
        // Same equality twice: phase 1 leaves a redundant artificial basic.
        let p = lp(
            1,
            vec![1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 2.0,
                },
            ],
            vec![(0.0, 10.0)],
        );
        let (x, _) = optimal(&p);
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    /// Beale's classic cycling example: highly degenerate, known to cycle
    /// forever under naive Dantzig pricing with certain tie-breaks.
    /// Optimum: x = (1/25, 0, 1, 0), objective -0.05.
    fn beale() -> LpProblem {
        lp(
            4,
            vec![-0.75, 150.0, -0.02, 6.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    cmp: Cmp::Le,
                    rhs: 0.0,
                },
                LpRow {
                    coeffs: vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    cmp: Cmp::Le,
                    rhs: 0.0,
                },
                LpRow {
                    coeffs: vec![(2, 1.0)],
                    cmp: Cmp::Le,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 1e4); 4],
        )
    }

    #[test]
    fn beale_cycling_lp_reaches_optimum() {
        let (x, obj) = optimal(&beale());
        assert!((obj + 0.05).abs() < 1e-6, "obj={obj}");
        assert!((x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bland_pricing_from_the_first_pivot_still_optimal() {
        // Force Bland's rule immediately: termination is guaranteed and the
        // optimum must match Dantzig's.
        for p in [beale(), {
            lp(
                2,
                vec![1.0, 1.0],
                vec![
                    LpRow {
                        coeffs: vec![(0, 1.0), (1, 1.0)],
                        cmp: Cmp::Ge,
                        rhs: 2.0,
                    },
                    LpRow {
                        coeffs: vec![(0, 1.0), (1, -1.0)],
                        cmp: Cmp::Eq,
                        rhs: 1.0,
                    },
                ],
                vec![(0.0, 10.0), (0.0, 10.0)],
            )
        }] {
            let dantzig = match solve_lp(&p).unwrap() {
                LpOutcome::Optimal { objective, .. } => objective,
                other => panic!("expected optimal, got {other:?}"),
            };
            match solve_lp_with_bland_switch(&p, 0).unwrap() {
                LpOutcome::Optimal { objective, .. } => {
                    assert!((objective - dantzig).abs() < 1e-6);
                }
                other => panic!("expected optimal under Bland, got {other:?}"),
            }
        }
    }

    #[test]
    fn bland_switch_counts_iterations_across_the_phase_transition() {
        // A degenerate problem whose equality rows force a real phase 1.
        // Regression for the anti-cycling guard resetting at the phase
        // transition: the switch decision compares the *cumulative*
        // iteration count, so a threshold below the total — even one that
        // neither phase would cross on its own counter — must trip it.
        let p = lp(
            3,
            vec![1.0, 1.0, 1.0],
            vec![
                LpRow {
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(1, 1.0), (2, 1.0)],
                    cmp: Cmp::Eq,
                    rhs: 2.0,
                },
                LpRow {
                    coeffs: vec![(0, 1.0), (2, 1.0)],
                    cmp: Cmp::Ge,
                    rhs: 1.0,
                },
            ],
            vec![(0.0, 10.0); 3],
        );
        let total = match solve_lp(&p).unwrap() {
            LpOutcome::Optimal { iterations, .. } => iterations,
            other => panic!("expected optimal, got {other:?}"),
        };
        assert!(total >= 2, "need a multi-pivot solve, got {total}");

        // Re-solve with the switch threshold strictly inside the total
        // count and the metrics registry listening: the cumulative counter
        // must cross it exactly once.
        let reg = std::sync::Arc::new(coremap_obs::Registry::new());
        {
            let _g = coremap_obs::install(reg.clone());
            match solve_lp_with_bland_switch(&p, total - 1).unwrap() {
                LpOutcome::Optimal { objective, .. } => {
                    // x = 2-y, z = 2-y, so obj = 4-y with y <= 1.5.
                    assert!((objective - 2.5).abs() < 1e-6, "obj={objective}");
                }
                other => panic!("expected optimal, got {other:?}"),
            }
        }
        assert_eq!(reg.counter_value("ilp.simplex.bland_switches"), 1);
        assert!(reg.counter_value("ilp.simplex.pivots") >= total as u64);
    }
}
