//! Model presolve: equality merging, constraint deduplication.
//!
//! The core-map reconstruction ILP (paper Sec. II-C) contains a large number
//! of *alignment* equalities — every tile observing a vertical ingress on a
//! path shares the source's column variable, every horizontal observer
//! shares the sink's row variable (`C_i = C_s`, `R_j = R_e`). With all-pairs
//! traffic observations these collapse most position variables into a few
//! equivalence classes. [`merge_equalities`] performs that collapse
//! generically: it unions variables linked by two-term equality constraints,
//! intersects their domains, rewrites all other constraints over class
//! representatives and deduplicates the results.

#![allow(clippy::needless_range_loop)] // parallel-array index loops

use std::collections::{BTreeMap, BTreeSet};

use coremap_obs as obs;

use crate::model::{Cmp, Model, VarKind};
use crate::{Solution, SolveError, Var};

/// Result of presolving: a reduced model plus the variable mapping back to
/// the original model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model. It may be extended further (e.g. with indicator
    /// variables) before solving.
    pub model: Model,
    map: Vec<Var>,
    orig_vars: usize,
}

impl Presolved {
    /// The reduced-model variable standing in for original variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the original model.
    pub fn mapped(&self, v: Var) -> Var {
        self.map[v.index()]
    }

    /// Lifts a solution of the reduced model back to original-model variable
    /// values (indexed by original [`Var::index`]).
    pub fn lift(&self, sol: &Solution) -> Vec<f64> {
        (0..self.orig_vars)
            .map(|j| sol.value(self.map[j]))
            .collect()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as representative for determinism.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[drop] = keep;
        }
    }
}

fn stronger(a: VarKind, b: VarKind) -> VarKind {
    use VarKind::*;
    match (a, b) {
        (Binary, _) | (_, Binary) => Binary,
        (Integer, _) | (_, Integer) => Integer,
        _ => Continuous,
    }
}

/// Merges variables linked by `a*x - a*y == 0` equality constraints and
/// deduplicates the remaining constraints.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] if merging proves the model infeasible
/// (a merged class has an empty domain, or a constraint reduces to a false
/// constant relation).
pub fn merge_equalities(model: &Model) -> Result<Presolved, SolveError> {
    let n = model.var_count();
    let mut uf = UnionFind::new(n);

    let mut is_merge = vec![false; model.constraints.len()];
    for (ci, c) in model.constraints.iter().enumerate() {
        if c.cmp == Cmp::Eq && c.rhs == 0.0 && c.terms.len() == 2 {
            let (v1, a1) = c.terms[0];
            let (v2, a2) = c.terms[1];
            if (a1 + a2).abs() <= f64::EPSILON * (a1.abs() + a2.abs()) && a1 != 0.0 {
                uf.union(v1.index(), v2.index());
                is_merge[ci] = true;
            }
        }
    }

    // Gather classes and merged domains.
    let mut class_of = vec![usize::MAX; n];
    let mut reduced = Model::new();
    let mut rep_var: BTreeMap<usize, Var> = BTreeMap::new();
    // First compute merged bounds/kinds per root.
    let mut merged: BTreeMap<usize, (f64, f64, VarKind, String)> = BTreeMap::new();
    for j in 0..n {
        let root = uf.find(j);
        let d = &model.vars[j];
        let e = merged
            .entry(root)
            .or_insert((d.lb, d.ub, d.kind, d.name.clone()));
        e.0 = e.0.max(d.lb);
        e.1 = e.1.min(d.ub);
        e.2 = stronger(e.2, d.kind);
    }
    // BTreeMap iterates in ascending root order: deterministic as-is.
    for (root, (lb, ub, kind, name)) in merged {
        if lb > ub + 1e-9 {
            return Err(SolveError::Infeasible);
        }
        let ub = ub.max(lb);
        let v = match kind {
            VarKind::Continuous => reduced.num_var(&name, lb, ub),
            VarKind::Integer => reduced.int_var(&name, lb.ceil() as i64, ub.floor() as i64),
            VarKind::Binary => {
                let v = reduced.bin_var(&name);
                if lb > 0.5 {
                    reduced.constraint(crate::LinExpr::from(v), Cmp::Ge, 1.0);
                }
                if ub < 0.5 {
                    reduced.constraint(crate::LinExpr::from(v), Cmp::Le, 0.0);
                }
                v
            }
        };
        rep_var.insert(root, v);
    }
    for j in 0..n {
        class_of[j] = uf.find(j);
    }

    // Rewrite constraints.
    type ConstraintKey = (Vec<(usize, u64)>, u8, u64);
    let mut seen: BTreeSet<ConstraintKey> = BTreeSet::new();
    for (ci, c) in model.constraints.iter().enumerate() {
        if is_merge[ci] {
            continue;
        }
        let mut acc: BTreeMap<usize, f64> = BTreeMap::new();
        for &(v, a) in &c.terms {
            *acc.entry(rep_var[&class_of[v.index()]].index())
                .or_insert(0.0) += a;
        }
        // BTreeMap drains in ascending variable order: already canonical.
        let terms: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, a)| a != 0.0).collect();
        if terms.is_empty() {
            let ok = match c.cmp {
                Cmp::Le => 0.0 <= c.rhs + 1e-9,
                Cmp::Ge => 0.0 >= c.rhs - 1e-9,
                Cmp::Eq => c.rhs.abs() <= 1e-9,
            };
            if !ok {
                return Err(SolveError::Infeasible);
            }
            continue;
        }
        let key = (
            terms
                .iter()
                .map(|&(j, a)| (j, a.to_bits()))
                .collect::<Vec<_>>(),
            match c.cmp {
                Cmp::Le => 0u8,
                Cmp::Ge => 1,
                Cmp::Eq => 2,
            },
            c.rhs.to_bits(),
        );
        if !seen.insert(key) {
            continue;
        }
        let mut expr = crate::LinExpr::new();
        for (j, a) in terms {
            expr.add_term(a, Var(j));
        }
        reduced.constraint(expr, c.cmp, c.rhs);
    }

    // Rewrite the objective.
    let mut obj_acc: BTreeMap<usize, f64> = BTreeMap::new();
    for &(v, a) in &model.objective {
        *obj_acc
            .entry(rep_var[&class_of[v.index()]].index())
            .or_insert(0.0) += a;
    }
    let mut obj = crate::LinExpr::new();
    for (j, a) in obj_acc {
        if a != 0.0 {
            obj.add_term(a, Var(j));
        }
    }
    reduced.minimize(obj);

    let map = (0..n).map(|j| rep_var[&class_of[j]]).collect();
    Ok(Presolved {
        model: reduced,
        map,
        orig_vars: n,
    })
}

/// A sparse constraint row: `(terms, comparison, rhs)`.
pub type SparseRow = (Vec<(usize, f64)>, Cmp, f64);

/// One round of interval-arithmetic bound propagation over `constraints`,
/// tightening `bounds` in place. Returns whether anything changed.
///
/// For every constraint `sum a_i x_i (cmp) rhs` and every variable `j`, the
/// activity range of the remaining terms implies a bound on `x_j`; integer
/// variables round inward. Used by the solver as root preprocessing and
/// exposed for model debugging.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when a domain empties.
pub fn propagate_bounds_once(
    constraints: &[SparseRow],
    kinds: &[VarKind],
    bounds: &mut [(f64, f64)],
) -> Result<bool, SolveError> {
    let mut tightenings = 0u64;
    let res = propagate_bounds_quiet(constraints, kinds, bounds, &mut tightenings);
    obs::add("ilp.presolve.tightenings", tightenings);
    res
}

/// [`propagate_bounds_once`] without metrics recording. The branch-and-bound
/// sequencer uses this at node level and records the counts itself, so the
/// observation stream stays identical at any worker count.
pub(crate) fn propagate_bounds_quiet(
    constraints: &[SparseRow],
    kinds: &[VarKind],
    bounds: &mut [(f64, f64)],
    tightenings: &mut u64,
) -> Result<bool, SolveError> {
    const TOL: f64 = 1e-9;
    let mut changed = false;
    for (terms, cmp, rhs) in constraints {
        // Pre-compute each term's activity range.
        let ranges: Vec<(f64, f64)> = terms
            .iter()
            .map(|&(j, a)| {
                let (l, u) = bounds[j];
                let (x, y) = (a * l, a * u);
                (x.min(y), x.max(y))
            })
            .collect();
        let total_min: f64 = ranges.iter().map(|r| r.0).sum();
        let total_max: f64 = ranges.iter().map(|r| r.1).sum();
        for (t_idx, &(j, a)) in terms.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let rest_min = total_min - ranges[t_idx].0;
            let rest_max = total_max - ranges[t_idx].1;
            // a * x_j <= rhs - rest_min   (for Le / Eq)
            // a * x_j >= rhs - rest_max   (for Ge / Eq)
            let mut apply = |upper_on_ax: Option<f64>, lower_on_ax: Option<f64>| {
                let (mut l, mut u) = bounds[j];
                if let Some(ub) = upper_on_ax {
                    if a > 0.0 {
                        u = u.min(ub / a);
                    } else {
                        l = l.max(ub / a);
                    }
                }
                if let Some(lb) = lower_on_ax {
                    if a > 0.0 {
                        l = l.max(lb / a);
                    } else {
                        u = u.min(lb / a);
                    }
                }
                if matches!(kinds[j], VarKind::Integer | VarKind::Binary) {
                    l = (l - TOL).ceil();
                    u = (u + TOL).floor();
                }
                if l > bounds[j].0 + TOL || u < bounds[j].1 - TOL {
                    changed = true;
                    *tightenings += 1;
                }
                bounds[j] = (l.max(bounds[j].0), u.min(bounds[j].1));
            };
            match cmp {
                Cmp::Le => apply(Some(rhs - rest_min), None),
                Cmp::Ge => apply(None, Some(rhs - rest_max)),
                Cmp::Eq => apply(Some(rhs - rest_min), Some(rhs - rest_max)),
            }
            if bounds[j].0 > bounds[j].1 + TOL {
                return Err(SolveError::Infeasible);
            }
        }
    }
    Ok(changed)
}

/// Extracts a model's constraints as [`SparseRow`]s keyed by
/// [`Var::index`]. Shared by root bound tightening and the branch-and-bound
/// node presolve.
pub(crate) fn model_rows(model: &Model) -> Vec<SparseRow> {
    model
        .constraints
        .iter()
        .map(|c| {
            (
                c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
                c.cmp,
                c.rhs,
            )
        })
        .collect()
}

/// Number of variables whose domain is a single point.
pub(crate) fn count_fixed(bounds: &[(f64, f64)]) -> usize {
    bounds.iter().filter(|&&(l, u)| u - l <= 1e-9).count()
}

/// A link row `sum w_k b_k - c x == 0` tying a target variable to a one-hot
/// group: choosing member `k` forces `x` to its implied value, choosing an
/// unlisted member forces `x = 0`.
#[derive(Debug, Clone)]
struct LinkRow {
    /// `(member, implied target value)`, ascending member index.
    implied: Vec<(usize, f64)>,
    /// Group members absent from the row (implied target value `0`).
    unlisted: Vec<usize>,
    target: usize,
}

/// One-hot groups and link rows detected in a model.
///
/// The reconstruction ILP (paper Sec. II-C) encodes each unknown tile
/// position with a one-hot binary group (`sum b = 1`) plus link rows mapping
/// the selected binary to the integer row/column value. Interval arithmetic
/// alone cannot reason across the selection, but the structure allows strong
/// inference: a member whose implied target value falls outside the target's
/// domain can be fixed to zero, and the target's domain shrinks to the range
/// of surviving alternatives. Detection is a pure function of the model, so
/// the structure can be computed once at the root and reused at every
/// branch-and-bound node.
#[derive(Debug, Clone, Default)]
pub(crate) struct IndicatorStructure {
    /// One-hot groups: ascending member indices.
    groups: Vec<Vec<usize>>,
    links: Vec<LinkRow>,
}

impl IndicatorStructure {
    /// Scans `constraints` for one-hot rows (`sum b == 1`, all-binary unit
    /// coefficients) and link rows (`== 0`, exactly one non-group term).
    pub fn detect(constraints: &[SparseRow], kinds: &[VarKind], n: usize) -> Self {
        let mut group_of = vec![usize::MAX; n];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (terms, cmp, rhs) in constraints {
            if *cmp != Cmp::Eq || *rhs != 1.0 || terms.len() < 2 {
                continue;
            }
            let one_hot = terms.iter().all(|&(j, a)| {
                a == 1.0 && kinds[j] == VarKind::Binary && group_of[j] == usize::MAX
            });
            if !one_hot {
                continue;
            }
            let mut members: Vec<usize> = terms.iter().map(|&(j, _)| j).collect();
            members.sort_unstable();
            for &j in &members {
                group_of[j] = groups.len();
            }
            groups.push(members);
        }
        let mut links = Vec::new();
        for (terms, cmp, rhs) in constraints {
            if *cmp != Cmp::Eq || *rhs != 0.0 || terms.len() < 2 {
                continue;
            }
            let mut group = usize::MAX;
            let mut target: Option<(usize, f64)> = None;
            let mut weights: Vec<(usize, f64)> = Vec::new();
            let mut ok = true;
            for &(j, a) in terms {
                if a == 0.0 {
                    ok = false;
                    break;
                }
                let g = group_of[j];
                if g == usize::MAX {
                    if target.is_some() {
                        ok = false;
                        break;
                    }
                    target = Some((j, a));
                } else {
                    if group == usize::MAX {
                        group = g;
                    }
                    if g != group {
                        ok = false;
                        break;
                    }
                    weights.push((j, a));
                }
            }
            let Some((target, c)) = target else { continue };
            if !ok || weights.is_empty() || group == usize::MAX {
                continue;
            }
            // w_k b_k + c x == 0 picks x = -w_k / c when member k is chosen.
            let mut implied: Vec<(usize, f64)> =
                weights.iter().map(|&(j, w)| (j, -w / c)).collect();
            implied.sort_unstable_by_key(|&(j, _)| j);
            let listed: BTreeSet<usize> = implied.iter().map(|&(j, _)| j).collect();
            let unlisted: Vec<usize> = groups[group]
                .iter()
                .copied()
                .filter(|j| !listed.contains(j))
                .collect();
            links.push(LinkRow {
                implied,
                unlisted,
                target,
            });
        }
        Self { groups, links }
    }

    /// One round of indicator propagation over `bounds`. Returns whether
    /// anything changed; obs-free (the caller owns metric recording).
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when a one-hot group empties or a target
    /// domain becomes empty.
    pub fn propagate(
        &self,
        kinds: &[VarKind],
        bounds: &mut [(f64, f64)],
        tightenings: &mut u64,
    ) -> Result<bool, SolveError> {
        const TOL: f64 = 1e-9;
        let mut changed = false;
        for members in &self.groups {
            let mut forced = usize::MAX;
            for &j in members {
                if bounds[j].0 > 0.5 {
                    if forced != usize::MAX {
                        return Err(SolveError::Infeasible);
                    }
                    forced = j;
                }
            }
            if forced != usize::MAX {
                for &j in members {
                    if j != forced && bounds[j].1 > 0.5 {
                        bounds[j].1 = 0.0;
                        changed = true;
                        *tightenings += 1;
                    }
                }
            }
            let alive: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&j| bounds[j].1 > 0.5)
                .collect();
            if alive.is_empty() {
                return Err(SolveError::Infeasible);
            }
            if alive.len() == 1 && bounds[alive[0]].0 < 0.5 {
                bounds[alive[0]].0 = 1.0;
                changed = true;
                *tightenings += 1;
            }
        }
        for link in &self.links {
            let (tl, tu) = bounds[link.target];
            // Kill members whose implied target value cannot be realized.
            for &(j, v) in &link.implied {
                if bounds[j].1 > 0.5 && (v < tl - TOL || v > tu + TOL) {
                    if bounds[j].0 > 0.5 {
                        return Err(SolveError::Infeasible);
                    }
                    bounds[j].1 = 0.0;
                    changed = true;
                    *tightenings += 1;
                }
            }
            if 0.0 < tl - TOL || 0.0 > tu + TOL {
                for &j in &link.unlisted {
                    if bounds[j].1 > 0.5 {
                        if bounds[j].0 > 0.5 {
                            return Err(SolveError::Infeasible);
                        }
                        bounds[j].1 = 0.0;
                        changed = true;
                        *tightenings += 1;
                    }
                }
            }
            // The target is confined to the surviving alternatives' range.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &(j, v) in &link.implied {
                if bounds[j].1 > 0.5 {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if link.unlisted.iter().any(|&j| bounds[j].1 > 0.5) {
                lo = lo.min(0.0);
                hi = hi.max(0.0);
            }
            if lo > hi {
                return Err(SolveError::Infeasible);
            }
            let mut nl = tl.max(lo);
            let mut nu = tu.min(hi);
            if matches!(kinds[link.target], VarKind::Integer | VarKind::Binary) {
                nl = (nl - TOL).ceil();
                nu = (nu + TOL).floor();
            }
            if nl > tl + TOL || nu < tu - TOL {
                changed = true;
                *tightenings += 1;
            }
            bounds[link.target] = (nl.max(tl), nu.min(tu));
            if bounds[link.target].0 > bounds[link.target].1 + TOL {
                return Err(SolveError::Infeasible);
            }
        }
        Ok(changed)
    }
}

/// Runs interval and indicator propagation to a fixpoint (bounded passes),
/// obs-free. The branch-and-bound sequencer calls this per node and records
/// the accumulated counts itself.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when propagation proves the bounds infeasible.
pub(crate) fn tighten_quiet(
    constraints: &[SparseRow],
    kinds: &[VarKind],
    structure: &IndicatorStructure,
    bounds: &mut [(f64, f64)],
    tightenings: &mut u64,
) -> Result<(), SolveError> {
    for _ in 0..16 {
        let a = propagate_bounds_quiet(constraints, kinds, bounds, tightenings)?;
        let b = structure.propagate(kinds, bounds, tightenings)?;
        if !a && !b {
            break;
        }
    }
    Ok(())
}

/// Runs bound propagation — interval arithmetic plus one-hot / link-row
/// indicator inference — to a fixpoint (bounded number of passes) over a
/// [`Model`], returning the tightened per-variable bounds. Records
/// `ilp.presolve.tightenings` and `ilp.presolve.vars_fixed`.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when propagation proves the model infeasible.
pub fn tightened_bounds(model: &Model) -> Result<Vec<(f64, f64)>, SolveError> {
    let mut bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lb, v.ub)).collect();
    let kinds: Vec<VarKind> = model.vars.iter().map(|v| v.kind).collect();
    let constraints = model_rows(model);
    let structure = IndicatorStructure::detect(&constraints, &kinds, model.var_count());
    let fixed_before = count_fixed(&bounds);
    let mut tightenings = 0u64;
    let res = tighten_quiet(
        &constraints,
        &kinds,
        &structure,
        &mut bounds,
        &mut tightenings,
    );
    obs::add("ilp.presolve.tightenings", tightenings);
    res?;
    obs::add(
        "ilp.presolve.vars_fixed",
        count_fixed(&bounds).saturating_sub(fixed_before) as u64,
    );
    Ok(bounds)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::{Cmp, Model};

    #[test]
    fn merges_chained_equalities() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        let c = m.int_var("c", 2, 8);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        m.constraint(m.expr().term(1.0, b).term(-1.0, c), Cmp::Eq, 0.0);
        m.constraint(m.expr().term(1.0, a), Cmp::Ge, 5.0);
        m.minimize(m.expr().term(1.0, c));
        let p = merge_equalities(&m).unwrap();
        assert_eq!(p.model.var_count(), 1);
        assert_eq!(p.mapped(a), p.mapped(b));
        assert_eq!(p.mapped(b), p.mapped(c));
        // Bounds intersect to [2, 8].
        assert_eq!(p.model.var_bounds(p.mapped(a)), (2.0, 8.0));
        let sol = p.model.solve().unwrap();
        let lifted = p.lift(&sol);
        assert_eq!(lifted, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn scaled_equalities_also_merge() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(m.expr().term(3.0, a).term(-3.0, b), Cmp::Eq, 0.0);
        let p = merge_equalities(&m).unwrap();
        assert_eq!(p.model.var_count(), 1);
    }

    #[test]
    fn unequal_coefficients_do_not_merge() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(m.expr().term(2.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        let p = merge_equalities(&m).unwrap();
        assert_eq!(p.model.var_count(), 2);
        assert_eq!(p.model.constraint_count(), 1);
    }

    #[test]
    fn detects_empty_merged_domain() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 2);
        let b = m.int_var("b", 5, 9);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        assert_eq!(merge_equalities(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn deduplicates_identical_constraints() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        for _ in 0..5 {
            m.constraint(m.expr().term(1.0, a).term(1.0, b), Cmp::Le, 7.0);
        }
        let p = merge_equalities(&m).unwrap();
        assert_eq!(p.model.constraint_count(), 1);
    }

    #[test]
    fn merged_self_cancelling_constraint_drops() {
        // After merging a == b, constraint a - b <= 0 becomes vacuous.
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Le, 0.0);
        let p = merge_equalities(&m).unwrap();
        assert_eq!(p.model.constraint_count(), 0);
    }

    #[test]
    fn merged_false_constant_is_infeasible() {
        // a == b merged, then a - b >= 1 is impossible.
        let mut m = Model::new();
        let a = m.int_var("a", 0, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Ge, 1.0);
        assert_eq!(merge_equalities(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn objective_is_rewritten() {
        let mut m = Model::new();
        let a = m.int_var("a", 1, 10);
        let b = m.int_var("b", 0, 10);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        m.minimize(m.expr().term(2.0, a).term(3.0, b));
        let p = merge_equalities(&m).unwrap();
        let sol = p.model.solve().unwrap();
        // min 5 * merged with merged >= 1 => objective 5.
        assert!((sol.objective() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn bound_propagation_tightens_chains() {
        // x <= 4, y >= x + 2, z == y + 1 with wide declared domains.
        let mut m = Model::new();
        let x = m.int_var("x", 0, 100);
        let y = m.int_var("y", 0, 100);
        let z = m.int_var("z", 0, 100);
        m.constraint(m.expr().term(1.0, x), Cmp::Le, 4.0);
        m.constraint(m.expr().term(1.0, y).term(-1.0, x), Cmp::Ge, 2.0);
        m.constraint(m.expr().term(1.0, z).term(-1.0, y), Cmp::Eq, 1.0);
        let b = tightened_bounds(&m).unwrap();
        assert_eq!(b[x.index()], (0.0, 4.0));
        assert_eq!(b[y.index()].0, 2.0);
        // z = y + 1 and y <= 100 keeps z's upper at 100; its lower tightens.
        assert_eq!(b[z.index()].0, 3.0);
    }

    #[test]
    fn bound_propagation_detects_infeasibility() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 3);
        m.constraint(m.expr().term(1.0, x), Cmp::Ge, 7.0);
        assert_eq!(tightened_bounds(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn bound_propagation_rounds_integer_bounds_inward() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 9);
        // 2x <= 7 -> x <= 3 for integers.
        m.constraint(m.expr().term(2.0, x), Cmp::Le, 7.0);
        let b = tightened_bounds(&m).unwrap();
        assert_eq!(b[x.index()], (0.0, 3.0));
    }

    #[test]
    fn link_row_prunes_one_hot_members_outside_target_domain() {
        // One-hot {b0, b1, b2}; x = 2 b0 + 5 b1 + 9 b2 with x in [4, 8].
        // Values 2 and 9 are unreachable, so b0 and b2 die, b1 is forced,
        // and x collapses to 5. Plain interval arithmetic cannot see this.
        let mut m = Model::new();
        let b0 = m.bin_var("b0");
        let b1 = m.bin_var("b1");
        let b2 = m.bin_var("b2");
        let x = m.int_var("x", 4, 8);
        m.constraint(
            m.expr().term(1.0, b0).term(1.0, b1).term(1.0, b2),
            Cmp::Eq,
            1.0,
        );
        m.constraint(
            m.expr()
                .term(1.0, x)
                .term(-2.0, b0)
                .term(-5.0, b1)
                .term(-9.0, b2),
            Cmp::Eq,
            0.0,
        );
        let b = tightened_bounds(&m).unwrap();
        assert_eq!(b[b0.index()], (0.0, 0.0));
        assert_eq!(b[b1.index()], (1.0, 1.0));
        assert_eq!(b[b2.index()], (0.0, 0.0));
        assert_eq!(b[x.index()], (5.0, 5.0));
    }

    #[test]
    fn link_row_kills_unlisted_members_when_zero_unreachable() {
        // b2 is in the group but absent from the link row: choosing it means
        // x = 0, impossible with x in [3, 4], so b2 must be 0.
        let mut m = Model::new();
        let b0 = m.bin_var("b0");
        let b1 = m.bin_var("b1");
        let b2 = m.bin_var("b2");
        let x = m.int_var("x", 3, 4);
        m.constraint(
            m.expr().term(1.0, b0).term(1.0, b1).term(1.0, b2),
            Cmp::Eq,
            1.0,
        );
        m.constraint(
            m.expr().term(1.0, x).term(-3.0, b0).term(-4.0, b1),
            Cmp::Eq,
            0.0,
        );
        let b = tightened_bounds(&m).unwrap();
        assert_eq!(b[b2.index()], (0.0, 0.0));
        assert_eq!(b[b0.index()], (0.0, 1.0));
        assert_eq!(b[b1.index()], (0.0, 1.0));
    }

    #[test]
    fn one_hot_with_two_forced_members_is_infeasible() {
        let mut m = Model::new();
        let b0 = m.bin_var("b0");
        let b1 = m.bin_var("b1");
        let b2 = m.bin_var("b2");
        m.constraint(
            m.expr().term(1.0, b0).term(1.0, b1).term(1.0, b2),
            Cmp::Eq,
            1.0,
        );
        m.constraint(m.expr().term(1.0, b0), Cmp::Ge, 1.0);
        m.constraint(m.expr().term(1.0, b1), Cmp::Ge, 1.0);
        assert_eq!(tightened_bounds(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn solve_equivalence_with_and_without_presolve() {
        let mut m = Model::new();
        let a = m.int_var("a", 0, 6);
        let b = m.int_var("b", 0, 6);
        let c = m.int_var("c", 0, 6);
        m.constraint(m.expr().term(1.0, a).term(-1.0, b), Cmp::Eq, 0.0);
        m.constraint(m.expr().term(1.0, b).term(2.0, c), Cmp::Ge, 7.0);
        m.minimize(m.expr().term(1.0, a).term(1.0, c));
        let direct = m.solve().unwrap();
        let p = merge_equalities(&m).unwrap();
        let reduced = p.model.solve().unwrap();
        assert!((direct.objective() - reduced.objective()).abs() < 1e-6);
    }
}
