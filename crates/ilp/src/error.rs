//! Solver errors.

use std::fmt;

/// Error returned by [`Model::solve`](crate::Model::solve).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective can decrease without bound (only possible for malformed
    /// models, since all variables carry finite bounds).
    Unbounded,
    /// The simplex exceeded its iteration safety limit.
    IterationLimit,
    /// Branch & bound exceeded its node limit before proving optimality.
    NodeLimit,
    /// The final incumbent failed the independent exact feasibility check —
    /// indicates numerical breakdown inside the LP solver.
    VerificationFailed {
        /// Index of the violated constraint.
        constraint: usize,
        /// Magnitude of the violation.
        violation: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("model is infeasible"),
            SolveError::Unbounded => f.write_str("model is unbounded"),
            SolveError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
            SolveError::NodeLimit => f.write_str("branch-and-bound node limit exceeded"),
            SolveError::VerificationFailed {
                constraint,
                violation,
            } => write!(
                f,
                "incumbent violates constraint {constraint} by {violation:.3e}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}
