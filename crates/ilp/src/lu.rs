//! LU factorization of the simplex basis, with product-form eta updates.
//!
//! The revised simplex never forms `B⁻¹` explicitly. A basis `B` (one
//! column per row slot) is factorized as `P B = L U` with partial row
//! pivoting; FTRAN (`B x = b`) and BTRAN (`Bᵀ y = c`) are triangular
//! solves. After each basis change the factorization is patched with a
//! product-form eta matrix instead of being recomputed; once the eta file
//! grows past [`REFACTOR_EVERY`] entries (or a pivot element is too small
//! to be stable) the basis is refactorized from scratch, which also resets
//! accumulated floating-point drift.
//!
//! The elimination uses a dense scratch matrix for bookkeeping but stores
//! `L` and `U` sparsely and only performs arithmetic on structural
//! non-zeros, so the work per refactorization scales with fill-in rather
//! than `m³` — the bases arising from the reconstruction ILP are unit
//! columns plus a sparse fringe, and factor in near-linear time.

/// Eta-file length that triggers a refactorization.
pub(crate) const REFACTOR_EVERY: usize = 64;

/// Pivot magnitude below which the factorization refuses to proceed.
const SINGULAR_TOL: f64 = 1e-11;

/// Eta-pivot magnitude below which [`Factorization::update`] asks the
/// caller to refactorize instead.
const ETA_TOL: f64 = 1e-9;

/// The basis was numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Singular;

/// Caller must refactorize from the current basis columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NeedsRefactor;

#[derive(Debug, Clone)]
struct Eta {
    /// Basis slot replaced by this update.
    r: usize,
    /// Pivot element `w[r]`.
    wr: f64,
    /// Remaining non-zeros of `w = B⁻¹ a_q` (slot, value), `slot != r`.
    others: Vec<(usize, f64)>,
}

/// Sparse LU factors of a basis plus the eta file of subsequent updates.
#[derive(Debug, Clone)]
pub(crate) struct Factorization {
    m: usize,
    /// Unit lower-triangular columns: `l_cols[k]` holds `(pos, mult)` with
    /// `pos > k`, in permuted row positions.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Upper-triangular rows: `u_rows[k]` holds `(col, value)` with
    /// `col > k`; diagonals live in `u_diag`.
    u_rows: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    /// `perm[k]` = original row index occupying permuted position `k`.
    perm: Vec<usize>,
    etas: Vec<Eta>,
}

impl Factorization {
    /// The factorization of the identity basis (all-slack starting basis;
    /// slack and artificial columns are unit vectors).
    pub fn identity(m: usize) -> Self {
        Self {
            m,
            l_cols: vec![Vec::new(); m],
            u_rows: vec![Vec::new(); m],
            u_diag: vec![1.0; m],
            perm: (0..m).collect(),
            etas: Vec::new(),
        }
    }

    /// Factorizes the basis whose columns are given as sparse
    /// `(row, value)` lists (one per slot, in slot order).
    pub fn factor(cols: &[Vec<(usize, f64)>]) -> Result<Self, Singular> {
        let m = cols.len();
        // Dense scratch in original-row-major layout; row permutation is
        // tracked through `perm` so rows are never physically swapped.
        let mut a = vec![0.0f64; m * m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                a[r * m + j] += v;
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        let mut l_cols = vec![Vec::new(); m];
        let mut u_rows = vec![Vec::new(); m];
        let mut u_diag = vec![0.0f64; m];
        for k in 0..m {
            // Partial pivoting: largest magnitude in column k at or below
            // the diagonal; ties keep the smallest position (deterministic).
            let mut best = k;
            let mut best_mag = a[perm[k] * m + k].abs();
            for (off, &p) in perm.iter().enumerate().skip(k + 1) {
                let mag = a[p * m + k].abs();
                if mag > best_mag {
                    best_mag = mag;
                    best = off;
                }
            }
            if best_mag <= SINGULAR_TOL {
                return Err(Singular);
            }
            perm.swap(k, best);
            let prow = perm[k] * m;
            let piv = a[prow + k];
            u_diag[k] = piv;
            let urow: Vec<(usize, f64)> = (k + 1..m)
                .filter(|&c| a[prow + c] != 0.0)
                .map(|c| (c, a[prow + c]))
                .collect();
            for &orow in perm.iter().take(m).skip(k + 1) {
                let irow = orow * m;
                let mult = a[irow + k] / piv;
                if mult != 0.0 {
                    // Record against the *original* row: a later pivot swap
                    // may still move this row to a different position.
                    l_cols[k].push((orow, mult));
                    for &(c, uv) in &urow {
                        a[irow + c] -= mult * uv;
                    }
                }
            }
            u_rows[k] = urow;
        }
        // Remap L entries from original rows to their final permuted
        // positions, sorting for a deterministic gather order in BTRAN.
        let mut pos_of = vec![0usize; m];
        for (k, &r) in perm.iter().enumerate() {
            pos_of[r] = k;
        }
        for col in &mut l_cols {
            for e in col.iter_mut() {
                e.0 = pos_of[e.0];
            }
            col.sort_by_key(|&(pos, _)| pos);
        }
        Ok(Self {
            m,
            l_cols,
            u_rows,
            u_diag,
            perm,
            etas: Vec::new(),
        })
    }

    /// Solves `B x = b`. `b` is indexed by constraint row; the result is
    /// indexed by basis slot.
    pub fn ftran(&self, b: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        let mut y: Vec<f64> = self.perm.iter().map(|&r| b[r]).collect();
        // L y' = y (forward, unit diagonal, scatter form).
        for k in 0..m {
            let alpha = y[k];
            if alpha != 0.0 {
                for &(pos, mult) in &self.l_cols[k] {
                    y[pos] -= alpha * mult;
                }
            }
        }
        // U x = y' (backward, gather form over sparse rows).
        out.clear();
        out.resize(m, 0.0);
        for k in (0..m).rev() {
            let mut t = y[k];
            for &(c, v) in &self.u_rows[k] {
                t -= v * out[c];
            }
            out[k] = t / self.u_diag[k];
        }
        // Product-form updates, oldest first.
        for eta in &self.etas {
            let tr = out[eta.r] / eta.wr;
            out[eta.r] = tr;
            if tr != 0.0 {
                for &(i, wi) in &eta.others {
                    out[i] -= wi * tr;
                }
            }
        }
    }

    /// Solves `Bᵀ y = c`. `c` is indexed by basis slot; the result is
    /// indexed by constraint row.
    pub fn btran(&self, c: &[f64], out: &mut Vec<f64>) {
        let m = self.m;
        let mut z: Vec<f64> = c.to_vec();
        // Inverse-transpose etas, newest first.
        for eta in self.etas.iter().rev() {
            let mut acc = z[eta.r];
            for &(i, wi) in &eta.others {
                acc -= wi * z[i];
            }
            z[eta.r] = acc / eta.wr;
        }
        // Uᵀ w = z (forward, scatter form).
        for k in 0..m {
            let wk = z[k] / self.u_diag[k];
            z[k] = wk;
            if wk != 0.0 {
                for &(c_idx, v) in &self.u_rows[k] {
                    z[c_idx] -= wk * v;
                }
            }
        }
        // Lᵀ v = w (backward, gather form).
        for k in (0..m).rev() {
            let mut t = z[k];
            for &(pos, mult) in &self.l_cols[k] {
                t -= mult * z[pos];
            }
            z[k] = t;
        }
        out.clear();
        out.resize(m, 0.0);
        for (k, &r) in self.perm.iter().enumerate() {
            out[r] = z[k];
        }
    }

    /// Records the basis change that replaced slot `r`'s column with a
    /// column whose FTRAN image is `w`. Returns [`NeedsRefactor`] when the
    /// eta pivot is too small or the eta file is full.
    pub fn update(&mut self, r: usize, w: &[f64]) -> Result<(), NeedsRefactor> {
        let wr = w[r];
        if wr.abs() < ETA_TOL || self.etas.len() >= REFACTOR_EVERY {
            return Err(NeedsRefactor);
        }
        let others: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, wr, others });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn dense_mul(cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * x[j];
            }
        }
        out
    }

    fn dense_tmul(cols: &[Vec<(usize, f64)>], y: &[f64]) -> Vec<f64> {
        cols.iter()
            .map(|col| col.iter().map(|&(r, v)| v * y[r]).sum())
            .collect()
    }

    #[test]
    fn identity_roundtrip() {
        let cols: Vec<Vec<(usize, f64)>> = (0..4).map(|i| vec![(i, 1.0)]).collect();
        let f = Factorization::factor(&cols).unwrap();
        let b = vec![3.0, -1.0, 2.0, 0.5];
        let mut x = Vec::new();
        f.ftran(&b, &mut x);
        assert_eq!(x, b);
        let mut y = Vec::new();
        f.btran(&b, &mut y);
        assert_eq!(y, b);
    }

    #[test]
    fn general_matrix_ftran_btran() {
        // Needs pivoting: first diagonal entry is 0.
        let cols = vec![
            vec![(1, 2.0), (2, 1.0)],
            vec![(0, 4.0), (1, -1.0)],
            vec![(0, 1.0), (2, 3.0)],
        ];
        let f = Factorization::factor(&cols).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let mut x = Vec::new();
        f.ftran(&b, &mut x);
        let back = dense_mul(&cols, &x);
        for (a, e) in back.iter().zip(&b) {
            assert!((a - e).abs() < 1e-10, "{back:?} != {b:?}");
        }
        let mut y = Vec::new();
        f.btran(&b, &mut y);
        let back = dense_tmul(&cols, &y);
        for (a, e) in back.iter().zip(&b) {
            assert!((a - e).abs() < 1e-10, "{back:?} != {b:?}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 2.0), (1, 2.0)]];
        assert_eq!(Factorization::factor(&cols).unwrap_err(), Singular);
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let mut cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 3.0)],
            vec![(0, 1.0), (2, 1.0)],
        ];
        let mut f = Factorization::factor(&cols).unwrap();
        // Replace slot 1's column with a_q.
        let a_q = vec![(0, 1.0), (1, 1.0), (2, 1.0)];
        let mut dense_q = vec![0.0; 3];
        for &(r, v) in &a_q {
            dense_q[r] = v;
        }
        let mut w = Vec::new();
        f.ftran(&dense_q, &mut w);
        f.update(1, &w).unwrap();
        cols[1] = a_q;
        let fresh = Factorization::factor(&cols).unwrap();
        let b = vec![5.0, -2.0, 1.0];
        let (mut x1, mut x2) = (Vec::new(), Vec::new());
        f.ftran(&b, &mut x1);
        fresh.ftran(&b, &mut x2);
        for (a, e) in x1.iter().zip(&x2) {
            assert!((a - e).abs() < 1e-10, "{x1:?} != {x2:?}");
        }
        let (mut y1, mut y2) = (Vec::new(), Vec::new());
        f.btran(&b, &mut y1);
        fresh.btran(&b, &mut y2);
        for (a, e) in y1.iter().zip(&y2) {
            assert!((a - e).abs() < 1e-10, "{y1:?} != {y2:?}");
        }
    }

    #[test]
    fn full_eta_file_requests_refactor() {
        let cols: Vec<Vec<(usize, f64)>> = (0..2).map(|i| vec![(i, 1.0)]).collect();
        let mut f = Factorization::factor(&cols).unwrap();
        let w = vec![1.0, 0.5];
        for _ in 0..REFACTOR_EVERY {
            f.update(0, &w).unwrap();
        }
        assert_eq!(f.update(0, &w).unwrap_err(), NeedsRefactor);
    }
}
