//! Solve results.

use crate::model::{Cmp, Model, VarKind};
use crate::Var;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// A provably optimal integer-feasible solution was found.
    Optimal,
    /// A feasible solution was found but optimality was not proven (node
    /// limit reached with an incumbent).
    Feasible,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots across all LP relaxations.
    pub lp_iterations: usize,
}

/// An integer-feasible solution to a [`Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) status: Status,
    pub(crate) stats: SolveStats,
}

impl Solution {
    /// Value of `var` in the solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// Value of `var` rounded to the nearest integer — use for integer and
    /// binary variables.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Termination status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Search statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// All variable values, indexed by [`Var::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Independently re-checks this solution against `model`: integrality of
    /// integer variables, variable bounds, and every constraint within
    /// `tol`. Returns the index of the first violated constraint, if any.
    ///
    /// This is the safety net guarding against floating-point drift inside
    /// the simplex; [`Model::solve`] runs it automatically on the incumbent.
    pub fn verify(&self, model: &Model, tol: f64) -> Option<usize> {
        for (j, vd) in model.vars.iter().enumerate() {
            let v = self.values[j];
            if v < vd.lb - tol || v > vd.ub + tol {
                return Some(usize::MAX - j);
            }
            if matches!(vd.kind, VarKind::Integer | VarKind::Binary) && (v - v.round()).abs() > tol
            {
                return Some(usize::MAX - j);
            }
        }
        for (i, c) in model.constraints.iter().enumerate() {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|&(v, coeff)| coeff * self.values[v.index()])
                .sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cmp;

    #[test]
    fn verify_accepts_feasible_point() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        m.constraint(m.expr().term(1.0, x), Cmp::Le, 3.0);
        let sol = Solution {
            values: vec![2.0],
            objective: 0.0,
            status: Status::Optimal,
            stats: SolveStats::default(),
        };
        assert_eq!(sol.verify(&m, 1e-6), None);
    }

    #[test]
    fn verify_rejects_constraint_violation() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        m.constraint(m.expr().term(1.0, x), Cmp::Le, 3.0);
        let sol = Solution {
            values: vec![4.0],
            objective: 0.0,
            status: Status::Optimal,
            stats: SolveStats::default(),
        };
        assert_eq!(sol.verify(&m, 1e-6), Some(0));
    }

    #[test]
    fn verify_rejects_fractional_integer() {
        let mut m = Model::new();
        let _x = m.int_var("x", 0, 5);
        let sol = Solution {
            values: vec![1.5],
            objective: 0.0,
            status: Status::Optimal,
            stats: SolveStats::default(),
        };
        assert!(sol.verify(&m, 1e-6).is_some());
    }
}
