//! Problem description: variables, linear expressions, constraints and the
//! objective.

use std::fmt;

use crate::branch_bound;
use crate::{Solution, SolveError};

/// Handle to a decision variable of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Index of the variable within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer restricted to `{0, 1}`.
    Binary,
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
    pub priority: i32,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        })
    }
}

/// A linear expression: `sum(coeff_j * var_j)`.
///
/// Terms on the same variable are accumulated. Use [`Model::expr`] /
/// [`ExprBuilder`] to build expressions fluently.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` pairs; variables may repeat and are summed.
    pub terms: Vec<(Var, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, coeff: f64, var: Var) {
        self.terms.push((var, coeff));
    }

    /// Evaluates the expression on a dense value vector.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.0]).sum()
    }

    /// Collapses repeated variables, dropping zero coefficients.
    pub fn normalized(&self) -> Vec<(Var, f64)> {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(Var, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        out
    }
}

/// Fluent builder for [`LinExpr`], produced by [`Model::expr`].
///
/// ```
/// use coremap_ilp::Model;
/// let mut m = Model::new();
/// let x = m.num_var("x", 0.0, 1.0);
/// let e = m.expr().term(2.0, x).constant_free();
/// assert_eq!(e.terms.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprBuilder {
    expr: LinExpr,
}

impl ExprBuilder {
    /// Adds `coeff * var`.
    pub fn term(mut self, coeff: f64, var: Var) -> Self {
        self.expr.add_term(coeff, var);
        self
    }

    /// Adds `1.0 * var` for each variable.
    pub fn sum<I: IntoIterator<Item = Var>>(mut self, vars: I) -> Self {
        for v in vars {
            self.expr.add_term(1.0, v);
        }
        self
    }

    /// Finishes the expression.
    pub fn constant_free(self) -> LinExpr {
        self.expr
    }
}

impl From<ExprBuilder> for LinExpr {
    fn from(b: ExprBuilder) -> Self {
        b.expr
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr {
            terms: vec![(v, 1.0)],
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintData {
    pub terms: Vec<(Var, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
    pub name: Option<String>,
}

/// A mixed-integer linear program under construction.
///
/// All variables must carry finite bounds; the reconstruction ILP (and MILP
/// practice generally) always has natural bounds, and finite bounds let the
/// branch-and-bound search terminate unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
    pub(crate) objective: Vec<(Var, f64)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lb > ub`.
    pub fn num_var(&mut self, name: &str, lb: f64, ub: f64) -> Var {
        self.push_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds an integer variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`.
    pub fn int_var(&mut self, name: &str, lb: i64, ub: i64) -> Var {
        self.push_var(name, VarKind::Integer, lb as f64, ub as f64)
    }

    /// Adds a binary (`{0,1}`) variable.
    pub fn bin_var(&mut self, name: &str) -> Var {
        self.push_var(name, VarKind::Binary, 0.0, 1.0)
    }

    fn push_var(&mut self, name: &str, kind: VarKind, lb: f64, ub: f64) -> Var {
        assert!(
            lb.is_finite() && ub.is_finite(),
            "variable {name} must have finite bounds"
        );
        assert!(lb <= ub, "variable {name} has empty domain [{lb}, {ub}]");
        let var = Var(self.vars.len());
        self.vars.push(VarData {
            name: name.to_owned(),
            kind,
            lb,
            ub,
            priority: 0,
        });
        var
    }

    /// Sets the branching priority of an integer/binary variable: among the
    /// fractional variables of an LP relaxation, branch-and-bound always
    /// branches within the highest priority class first. Structural
    /// decision variables (e.g. direction indicators) usually deserve
    /// higher priority than encoding variables.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn set_branch_priority(&mut self, var: Var, priority: i32) {
        self.vars[var.0].priority = priority;
    }

    /// Branching priority of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn branch_priority(&self, var: Var) -> i32 {
        self.vars[var.0].priority
    }

    /// Starts a fluent [`ExprBuilder`].
    pub fn expr(&self) -> ExprBuilder {
        ExprBuilder::default()
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn constraint(&mut self, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) {
        self.named_constraint(None, expr, cmp, rhs);
    }

    /// Adds a named constraint (names appear in debug output only).
    pub fn named_constraint(
        &mut self,
        name: Option<&str>,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) {
        let expr: LinExpr = expr.into();
        self.constraints.push(ConstraintData {
            terms: expr.normalized(),
            cmp,
            rhs,
            name: name.map(str::to_owned),
        });
    }

    /// Sets the linear objective to be minimized (replacing any previous
    /// objective). An empty objective makes the solve a pure feasibility
    /// problem.
    pub fn minimize(&mut self, expr: impl Into<LinExpr>) {
        let expr: LinExpr = expr.into();
        self.objective = expr.normalized();
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Kind of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_kind(&self, var: Var) -> VarKind {
        self.vars[var.0].kind
    }

    /// Inclusive bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_bounds(&self, var: Var) -> (f64, f64) {
        let d = &self.vars[var.0];
        (d.lb, d.ub)
    }

    /// Name of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.0].name
    }

    /// Writes a human-readable dump of the model (LP-format-like), useful
    /// when debugging infeasible reconstructions. Constraint names given to
    /// [`named_constraint`](Self::named_constraint) appear as row labels.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "minimize:");
        for &(v, c) in &self.objective {
            let _ = write!(out, " {c:+}*{}", self.vars[v.0].name);
        }
        let _ = writeln!(out, "\nsubject to:");
        for (i, con) in self.constraints.iter().enumerate() {
            let label = con.name.clone().unwrap_or_else(|| format!("c{i}"));
            let _ = write!(out, "  {label}:");
            for &(v, a) in &con.terms {
                let _ = write!(out, " {a:+}*{}", self.vars[v.0].name);
            }
            let _ = writeln!(out, " {} {}", con.cmp, con.rhs);
        }
        let _ = writeln!(out, "bounds:");
        for v in &self.vars {
            let kind = match v.kind {
                VarKind::Continuous => "num",
                VarKind::Integer => "int",
                VarKind::Binary => "bin",
            };
            let _ = writeln!(out, "  {} <= {} ({kind}) <= {}", v.lb, v.name, v.ub);
        }
        out
    }

    /// Solves the model with presolve + branch & bound.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] when no assignment satisfies the
    /// constraints, [`SolveError::Unbounded`] when the objective diverges
    /// (impossible with finite bounds unless the model is malformed), and
    /// [`SolveError::IterationLimit`] / [`SolveError::NodeLimit`] when the
    /// internal safety limits trip.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        branch_bound::solve(self, &branch_bound::BbConfig::default())
    }

    /// Solves with an explicit node limit (for ablation benchmarks).
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_node_limit(&self, node_limit: usize) -> Result<Solution, SolveError> {
        let cfg = branch_bound::BbConfig {
            node_limit,
            ..Default::default()
        };
        branch_bound::solve(self, &cfg)
    }

    /// Solves with an explicit branching rule (for ablation benchmarks).
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_branching(
        &self,
        branching: crate::Branching,
    ) -> Result<Solution, SolveError> {
        let cfg = branch_bound::BbConfig {
            branching,
            ..Default::default()
        };
        branch_bound::solve(self, &cfg)
    }

    /// Solves with full control over the branch-and-bound configuration:
    /// LP engine, worker count, node limit, branching rule and the
    /// anti-cycling switch. Results are byte-identical at any worker count
    /// and across the warm-started and cold revised engines.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_config(&self, cfg: &crate::BbConfig) -> Result<Solution, SolveError> {
        branch_bound::solve(self, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_normalization_merges_terms() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        let mut e = LinExpr::new();
        e.add_term(1.0, x);
        e.add_term(2.0, y);
        e.add_term(3.0, x);
        e.add_term(-2.0, y);
        let n = e.normalized();
        assert_eq!(n, vec![(x, 4.0)]);
    }

    #[test]
    fn eval_uses_values() {
        let mut m = Model::new();
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        let e: LinExpr = m.expr().term(2.0, x).term(-1.0, y).into();
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn var_metadata_accessible() {
        let mut m = Model::new();
        let x = m.int_var("rows", -2, 7);
        assert_eq!(m.var_kind(x), VarKind::Integer);
        assert_eq!(m.var_bounds(x), (-2.0, 7.0));
        assert_eq!(m.var_name(x), "rows");
        assert_eq!(m.var_count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn reversed_bounds_panic() {
        let mut m = Model::new();
        let _ = m.int_var("bad", 3, 1);
    }

    #[test]
    fn sum_builder() {
        let mut m = Model::new();
        let vars: Vec<Var> = (0..3).map(|i| m.bin_var(&format!("b{i}"))).collect();
        let e: LinExpr = m.expr().sum(vars.iter().copied()).into();
        assert_eq!(e.terms.len(), 3);
        assert!(e.terms.iter().all(|&(_, c)| c == 1.0));
    }

    #[test]
    fn dump_includes_names_and_bounds() {
        let mut m = Model::new();
        let x = m.int_var("rows", 0, 4);
        m.named_constraint(Some("order"), m.expr().term(1.0, x), Cmp::Ge, 1.0);
        m.minimize(m.expr().term(1.0, x));
        let d = m.dump();
        assert!(d.contains("order:"));
        assert!(d.contains("rows"));
        assert!(d.contains("(int)"));
    }

    #[test]
    fn from_var_single_term() {
        let mut m = Model::new();
        let x = m.bin_var("x");
        let e: LinExpr = x.into();
        assert_eq!(e.terms, vec![(x, 1.0)]);
    }
}
