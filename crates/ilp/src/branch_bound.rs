//! Branch & bound over the LP relaxations.

use coremap_obs as obs;

use crate::model::{Model, VarKind};
use crate::simplex::{solve_lp, LpOutcome, LpProblem, LpRow, FEAS_TOL};
use crate::solution::{Solution, SolveStats, Status};
use crate::SolveError;

/// Branch-and-bound configuration.
#[derive(Debug, Clone)]
pub struct BbConfig {
    /// Maximum nodes to explore before giving up.
    pub node_limit: usize,
    /// Branching rule.
    pub branching: Branching,
}

impl Default for BbConfig {
    fn default() -> Self {
        Self {
            node_limit: 200_000,
            branching: Branching::MostFractional,
        }
    }
}

/// Variable selection rule for branching (ablated in the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// Branch on the integer variable whose LP value is closest to 0.5
    /// fractionality.
    MostFractional,
    /// Branch on the first fractional integer variable by index.
    FirstFractional,
}

#[derive(Debug, Clone)]
struct Node {
    /// Per-variable bound overrides `(lb, ub)`.
    bounds: Vec<(f64, f64)>,
    /// LP bound of the parent (for best-first ordering).
    parent_bound: f64,
    depth: usize,
}

/// Solves `model` by LP-based branch & bound.
pub(crate) fn solve(model: &Model, cfg: &BbConfig) -> Result<Solution, SolveError> {
    let n = model.var_count();
    let mut objective = vec![0.0; n];
    for &(v, c) in &model.objective {
        objective[v.index()] = c;
    }
    let rows: Vec<LpRow> = model
        .constraints
        .iter()
        .map(|c| LpRow {
            coeffs: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            cmp: c.cmp,
            rhs: c.rhs,
        })
        .collect();
    // Root preprocessing: interval bound propagation shrinks domains (and
    // can prove infeasibility) before any LP is solved.
    let root_bounds: Vec<(f64, f64)> = crate::presolve::tightened_bounds(model)?;
    let mut int_vars: Vec<usize> = (0..n)
        .filter(|&j| matches!(model.vars[j].kind, VarKind::Integer | VarKind::Binary))
        .collect();
    // Branch within the highest-priority class first; stable order keeps
    // determinism.
    int_vars.sort_by_key(|&j| std::cmp::Reverse(model.vars[j].priority));
    let priorities: Vec<i32> = int_vars.iter().map(|&j| model.vars[j].priority).collect();

    let mut stats = SolveStats::default();
    let mut incumbent: Option<(Vec<f64>, f64)> = None;

    // Depth-first search with a stack: dives to integer feasibility quickly,
    // which gives an incumbent for pruning; with the mostly-integral LPs of
    // the reconstruction model this explores very few nodes.
    let mut stack = vec![Node {
        bounds: root_bounds,
        parent_bound: f64::NEG_INFINITY,
        depth: 0,
    }];

    while let Some(node) = stack.pop() {
        if stats.nodes >= cfg.node_limit {
            return match incumbent {
                Some((values, objective)) => {
                    finish(model, values, objective, Status::Feasible, stats)
                }
                None => Err(SolveError::NodeLimit),
            };
        }
        stats.nodes += 1;
        obs::inc("ilp.bb.nodes");

        // Prune on the parent bound before paying for the LP.
        if let Some((_, inc_obj)) = &incumbent {
            if node.parent_bound >= *inc_obj - 1e-9 {
                obs::inc("ilp.bb.pruned");
                continue;
            }
        }

        let lp = LpProblem {
            n,
            objective: objective.clone(),
            rows: rows.clone(),
            bounds: node.bounds.clone(),
        };
        let outcome = solve_lp(&lp)?;
        let (x, bound, iters) = match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return Err(SolveError::Unbounded),
            LpOutcome::Optimal {
                x,
                objective,
                iterations,
            } => (x, objective, iterations),
        };
        stats.lp_iterations += iters;

        if let Some((_, inc_obj)) = &incumbent {
            if bound >= *inc_obj - 1e-9 {
                obs::inc("ilp.bb.pruned");
                continue;
            }
        }

        // Find a fractional integer variable.
        let frac = select_branching(&x, &int_vars, &priorities, cfg.branching);
        match frac {
            None => {
                // Integer feasible: new incumbent.
                let mut values = x;
                for &j in &int_vars {
                    values[j] = values[j].round();
                }
                match &incumbent {
                    Some((_, inc_obj)) if bound >= *inc_obj => {}
                    _ => {
                        obs::inc("ilp.bb.incumbents");
                        incumbent = Some((values, bound));
                    }
                }
            }
            Some(j) => {
                let v = x[j];
                let floor = v.floor();
                let (lb, ub) = node.bounds[j];
                // Down branch (explored first: pushed last).
                let mut down = node.bounds.clone();
                down[j] = (lb, floor.min(ub));
                let mut up = node.bounds.clone();
                up[j] = ((floor + 1.0).max(lb), ub);
                stack.push(Node {
                    bounds: up,
                    parent_bound: bound,
                    depth: node.depth + 1,
                });
                stack.push(Node {
                    bounds: down,
                    parent_bound: bound,
                    depth: node.depth + 1,
                });
            }
        }
    }

    match incumbent {
        Some((values, objective)) => finish(model, values, objective, Status::Optimal, stats),
        None => Err(SolveError::Infeasible),
    }
}

fn select_branching(
    x: &[f64],
    int_vars: &[usize],
    priorities: &[i32],
    rule: Branching,
) -> Option<usize> {
    match rule {
        Branching::FirstFractional => int_vars
            .iter()
            .copied()
            .find(|&j| (x[j] - x[j].round()).abs() > FEAS_TOL * 10.0),
        Branching::MostFractional => {
            // `int_vars` is sorted by descending priority: take the most
            // fractional variable within the first priority class that has
            // any fractional variable.
            let mut best = None;
            let mut best_score = FEAS_TOL * 10.0;
            let mut class: Option<i32> = None;
            for (i, &j) in int_vars.iter().enumerate() {
                if let Some(c) = class {
                    if priorities[i] < c && best.is_some() {
                        break;
                    }
                }
                let f = x[j] - x[j].floor();
                let score = f.min(1.0 - f);
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                    class = Some(priorities[i]);
                }
            }
            best
        }
    }
}

fn finish(
    model: &Model,
    values: Vec<f64>,
    objective: f64,
    status: Status,
    stats: SolveStats,
) -> Result<Solution, SolveError> {
    let sol = Solution {
        values,
        objective,
        status,
        stats,
    };
    if let Some(constraint) = sol.verify(model, 1e-5) {
        return Err(SolveError::VerificationFailed {
            constraint,
            violation: f64::NAN,
        });
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use crate::{Cmp, Model, SolveError, Status};

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, weights 3,4,2, capacity 6 => a + c (17) vs b+c (20)
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let c = m.bin_var("c");
        m.constraint(
            m.expr().term(3.0, a).term(4.0, b).term(2.0, c),
            Cmp::Le,
            6.0,
        );
        m.minimize(m.expr().term(-10.0, a).term(-13.0, b).term(-7.0, c));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_eq!(
            (sol.int_value(a), sol.int_value(b), sol.int_value(c)),
            (0, 1, 1)
        );
        assert!((sol.objective() + 20.0).abs() < 1e-6);
    }

    #[test]
    fn pure_feasibility_problem() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 9);
        let y = m.int_var("y", 0, 9);
        m.constraint(m.expr().term(1.0, x).term(1.0, y), Cmp::Eq, 7.0);
        m.constraint(m.expr().term(1.0, x).term(-1.0, y), Cmp::Ge, 2.0);
        let sol = m.solve().unwrap();
        let (xv, yv) = (sol.int_value(x), sol.int_value(y));
        assert_eq!(xv + yv, 7);
        assert!(xv - yv >= 2);
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x == 3 has no integer solution but a fractional one.
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        m.constraint(m.expr().term(2.0, x), Cmp::Eq, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn lp_relaxation_gap_forces_branching() {
        // max x + y s.t. 2x + 2y <= 3, binary => one of them only.
        let mut m = Model::new();
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        m.constraint(m.expr().term(2.0, x).term(2.0, y), Cmp::Le, 3.0);
        m.minimize(m.expr().term(-1.0, x).term(-1.0, y));
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x) + sol.int_value(y), 1);
        assert!(sol.stats().nodes >= 2, "branching should have occurred");
    }

    #[test]
    fn negative_integer_domains() {
        // min x s.t. x >= -7.5, integer in [-10, 0] => x = -7
        let mut m = Model::new();
        let x = m.int_var("x", -10, 0);
        m.constraint(m.expr().term(1.0, x), Cmp::Ge, -7.5);
        m.minimize(m.expr().term(1.0, x));
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -7);
    }

    #[test]
    fn assignment_problem_3x3() {
        // Classic assignment: cost matrix, each row/col exactly once.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.bin_var(&format!("x{i}{j}")));
            }
            x.push(row);
        }
        #[allow(clippy::needless_range_loop)] // i indexes rows and columns
        for i in 0..3 {
            m.constraint(m.expr().sum(x[i].iter().copied()), Cmp::Eq, 1.0);
            m.constraint(m.expr().sum((0..3).map(|k| x[k][i])), Cmp::Eq, 1.0);
        }
        let mut obj = m.expr();
        for i in 0..3 {
            for j in 0..3 {
                obj = obj.term(costs[i][j], x[i][j]);
            }
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        // Optimal assignment: (0,1)=2, (1,2)... check objective = 2+7+3 = 12
        // vs alternatives; brute force says min is 2 (0,1) + 7 (1,2) + 3 (2,0) = 12.
        assert!((sol.objective() - 12.0).abs() < 1e-6, "{}", sol.objective());
    }

    #[test]
    fn node_limit_trips() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.bin_var(&format!("b{i}"))).collect();
        // Equality over halves forces deep search with limit 1.
        m.constraint(m.expr().sum(vars.iter().copied()), Cmp::Eq, 6.0);
        m.minimize(m.expr().term(0.5, vars[0]));
        let err = m.solve_with_node_limit(0).unwrap_err();
        assert_eq!(err, SolveError::NodeLimit);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // The paper's nullifier pattern: NE + NW == 1; constraints
        //   cs <= ck + b*NE and b*NW + cs >= ck  must pick a consistent side.
        let b = 100.0;
        let mut m = Model::new();
        let cs = m.int_var("cs", 0, 5);
        let ck = m.int_var("ck", 0, 5);
        let ne = m.bin_var("ne");
        let nw = m.bin_var("nw");
        m.constraint(m.expr().term(1.0, ne).term(1.0, nw), Cmp::Eq, 1.0);
        // cs <= ck + b*NE  (eastbound unless nullified)
        m.constraint(
            m.expr().term(1.0, cs).term(-1.0, ck).term(-b, ne),
            Cmp::Le,
            0.0,
        );
        // cs >= ck - b*NW  (westbound unless nullified)
        m.constraint(
            m.expr().term(1.0, cs).term(-1.0, ck).term(b, nw),
            Cmp::Ge,
            0.0,
        );
        // Pin cs = 4, ck = 1: only the westbound constraint can hold, so the
        // eastbound one must be nullified: NE = 1, NW = 0.
        m.constraint(m.expr().term(1.0, cs), Cmp::Eq, 4.0);
        m.constraint(m.expr().term(1.0, ck), Cmp::Eq, 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(ne), 1);
        assert_eq!(sol.int_value(nw), 0);
    }
}
