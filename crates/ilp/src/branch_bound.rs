//! Branch & bound over the LP relaxations.
//!
//! The search is organized as a **deterministic sequencer** plus optional
//! **speculative workers**:
//!
//! * The sequencer owns the frontier and consumes nodes in a fixed order —
//!   depth-first (most recent child first) until the first incumbent, then
//!   best-bound (lowest parent LP bound, deepest, earliest-created) — and is
//!   the only place that records metrics or mutates search state. Every
//!   decision it makes is a pure function of the model and the consumed node
//!   results.
//! * Workers race ahead and *pre-evaluate* frontier nodes. Node evaluation
//!   is a pure function of `(engine, node bounds, parent basis)`, so a
//!   precomputed bundle is byte-identical to what the sequencer would have
//!   computed inline; worker count and scheduling can change only how much
//!   wall-clock the sequencer spends waiting, never the answer or the
//!   metrics stream.
//!
//! Each node is evaluated in up to two stages:
//!
//! * **Stage A (warm)** — dual simplex from the parent's optimal basis
//!   ([`RevisedEngine::solve_dual_from`]). After a branch tightens one
//!   variable bound the parent basis stays dual feasible, so a few dual
//!   pivots either prove the child infeasible or produce an objective bound.
//!   A bound at least `PRUNE_MARGIN` above the incumbent prunes the node
//!   without ever running stage B.
//! * **Stage B (canonical)** — a cold two-phase primal solve. Its `x` drives
//!   branching and incumbents for *every* surviving node, in warm and cold
//!   configurations alike, which is what makes warm-started and cold runs
//!   produce identical solutions: the warm stage only ever removes nodes
//!   whose canonical bound would have pruned them anyway.
//!
//! Child nodes run sparse bound propagation (interval arithmetic plus the
//! one-hot / link-row indicator inference of [`crate::presolve`]) before
//! entering the frontier, so provably-dead subtrees never cost an LP.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use coremap_obs as obs;

use crate::model::{Model, VarKind};
use crate::presolve::{self, IndicatorStructure, SparseRow};
use crate::revised::{Basis, LpStats, RevisedEngine};
use crate::simplex::{solve_lp_with_bland_switch, LpOutcome, LpProblem, LpRow, FEAS_TOL};
use crate::solution::{Solution, SolveStats, Status};
use crate::SolveError;

/// A warm bound must clear the incumbent by this much before it prunes a
/// node on its own. Within the margin the canonical stage-B solve decides,
/// so warm-started runs prune exactly the nodes a cold run would.
const PRUNE_MARGIN: f64 = 1e-6;

/// Default Dantzig→Bland anti-cycling switch (simplex pivots per LP solve).
const DEFAULT_BLAND_SWITCH: usize = 2_000;

/// LP engine driving the node relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Sparse revised simplex; children warm-start with the dual simplex
    /// from their parent's optimal basis (default).
    #[default]
    RevisedWarm,
    /// Sparse revised simplex, cold two-phase solve at every node.
    RevisedCold,
    /// Dense-tableau cold solve at every node (the pre-optimization
    /// baseline, kept for differential tests and benchmarks).
    DenseTableau,
}

/// Branch-and-bound configuration.
#[derive(Debug, Clone)]
pub struct BbConfig {
    /// Maximum nodes to explore before giving up.
    pub node_limit: usize,
    /// Branching rule.
    pub branching: Branching,
    /// LP engine for the node relaxations.
    pub engine: LpEngine,
    /// Worker threads (`>= 2` enables speculative node evaluation; `0` and
    /// `1` both mean serial). Results and metrics are byte-identical at any
    /// worker count. Ignored by [`LpEngine::DenseTableau`].
    pub workers: usize,
    /// Simplex pivots per LP solve before Bland's anti-cycling rule
    /// engages. The counter is per solve: a warm-started child never
    /// inherits its parent's pivot count. Exposed for cycling regression
    /// tests; leave at the default otherwise.
    pub bland_switch: usize,
}

impl Default for BbConfig {
    fn default() -> Self {
        Self {
            node_limit: 200_000,
            branching: Branching::MostFractional,
            engine: LpEngine::default(),
            workers: 1,
            bland_switch: DEFAULT_BLAND_SWITCH,
        }
    }
}

/// Variable selection rule for branching (ablated in the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// Branch on the integer variable whose LP value is closest to 0.5
    /// fractionality.
    MostFractional,
    /// Branch on the first fractional integer variable by index.
    FirstFractional,
}

/// Immutable per-solve context shared by the sequencer and the workers.
struct SearchCtx<'a> {
    model: &'a Model,
    n: usize,
    /// Dense objective (fixed summation order for exact incumbent values).
    objective: Vec<f64>,
    rows: Vec<LpRow>,
    sparse_rows: Vec<SparseRow>,
    kinds: Vec<VarKind>,
    structure: IndicatorStructure,
    /// `None` only for [`LpEngine::DenseTableau`].
    revised: Option<RevisedEngine>,
    engine: LpEngine,
    /// Integer variables in branching order (descending priority, stable).
    int_vars: Vec<usize>,
    priorities: Vec<i32>,
}

/// A frontier node. Everything an evaluation needs is fixed at creation,
/// which is what makes worker pre-evaluation pure.
struct NodeData {
    seq: u64,
    bounds: Vec<(f64, f64)>,
    /// Canonical LP bound of the parent (best-bound ordering, cheap prune).
    parent_bound: f64,
    depth: usize,
    /// Parent's optimal basis ([`LpEngine::RevisedWarm`] only).
    parent_basis: Option<Arc<Basis>>,
}

/// Stage-A (warm dual) result inside an [`EvalBundle`].
enum WarmStage {
    /// No parent basis, or warm starts disabled.
    NotAttempted,
    /// The dual solve failed (singular start, iteration limit): fall back
    /// to the cold path as if no basis existed.
    Miss,
    /// Dual-unbounded ray: the child is infeasible.
    Infeasible(LpStats),
    /// Re-optimized: objective bound for the subtree.
    Bound(f64, LpStats),
}

/// Canonical cold-solve result.
struct ColdEval {
    outcome: LpOutcome,
    basis: Option<Basis>,
    stats: LpStats,
}

/// A node evaluation: warm stage plus, unless the warm stage already
/// settled the node at the evaluation-time cutoff, the canonical cold
/// stage. The cutoff only ever decreases, so a bundle whose cold stage was
/// skipped is still settled at consumption time.
struct EvalBundle {
    warm: WarmStage,
    cold: Option<ColdEval>,
}

/// Speculation state shared between the sequencer and the workers.
struct SpecState {
    inner: Mutex<SpecInner>,
    cv: Condvar,
}

struct SpecInner {
    /// Frontier nodes available for pre-evaluation.
    queue: BTreeMap<u64, Arc<NodeData>>,
    /// Nodes a worker is currently evaluating.
    claimed: BTreeSet<u64>,
    /// Finished pre-evaluations, keyed by node sequence number.
    results: BTreeMap<u64, Result<EvalBundle, SolveError>>,
    /// Nodes the sequencer has consumed or pruned; late worker results for
    /// them are dropped.
    retired: BTreeSet<u64>,
    /// Current incumbent objective (`+inf` before the first incumbent).
    cutoff: f64,
    shutdown: bool,
}

impl SpecState {
    fn new() -> Self {
        Self {
            inner: Mutex::new(SpecInner {
                queue: BTreeMap::new(),
                claimed: BTreeSet::new(),
                results: BTreeMap::new(),
                retired: BTreeSet::new(),
                cutoff: f64::INFINITY,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: `SpecInner` is valid after any unwind (workers
    /// never leave it mid-update), so a poisoned mutex is recoverable.
    fn lock(&self) -> MutexGuard<'_, SpecInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: MutexGuard<'a, SpecInner>) -> MutexGuard<'a, SpecInner> {
        self.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }
}

/// Wakes every worker with the shutdown flag on scope exit, including
/// error and panic unwinds, so `thread::scope` can always join.
struct ShutdownGuard<'a>(&'a SpecState);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.lock().shutdown = true;
        self.0.cv.notify_all();
    }
}

/// The frontier, indexed both by creation order (depth-first phase) and by
/// `(parent bound, depth, creation order)` (best-bound phase).
#[derive(Default)]
struct Frontier {
    by_seq: BTreeMap<u64, Arc<NodeData>>,
    by_bound: BTreeSet<(u64, u64, u64)>,
}

/// Order-preserving map from `f64` to `u64` (total order, `-inf` first).
fn f64_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn bound_key(n: &NodeData) -> (u64, u64, u64) {
    // Lowest bound first; deeper first among equal bounds (finishes a dive
    // and finds incumbents sooner); earliest-created breaks remaining ties.
    (f64_key(n.parent_bound), u64::MAX - n.depth as u64, n.seq)
}

impl Frontier {
    fn push(&mut self, node: Arc<NodeData>) {
        self.by_bound.insert(bound_key(&node));
        self.by_seq.insert(node.seq, node);
    }

    /// Depth-first (newest node) before the first incumbent, best-bound
    /// after: the dive finds a first incumbent quickly, best-bound then
    /// closes the gap with the fewest node evaluations.
    fn pop(&mut self, have_incumbent: bool) -> Option<Arc<NodeData>> {
        let node = if have_incumbent {
            let &(_, _, seq) = self.by_bound.first()?;
            self.by_seq.remove(&seq)?
        } else {
            let (_, node) = self.by_seq.pop_last()?;
            node
        };
        self.by_bound.remove(&bound_key(&node));
        Some(node)
    }
}

/// Solves `model` by LP-based branch & bound.
pub(crate) fn solve(model: &Model, cfg: &BbConfig) -> Result<Solution, SolveError> {
    let n = model.var_count();
    let mut objective = vec![0.0; n];
    for &(v, c) in &model.objective {
        objective[v.index()] = c;
    }
    let rows: Vec<LpRow> = model
        .constraints
        .iter()
        .map(|c| LpRow {
            coeffs: c.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            cmp: c.cmp,
            rhs: c.rhs,
        })
        .collect();
    // Root preprocessing: interval + indicator bound propagation shrinks
    // domains (and can prove infeasibility) before any LP is solved.
    let root_bounds: Vec<(f64, f64)> = presolve::tightened_bounds(model)?;
    let sparse_rows = presolve::model_rows(model);
    let kinds: Vec<VarKind> = model.vars.iter().map(|v| v.kind).collect();
    let structure = IndicatorStructure::detect(&sparse_rows, &kinds, n);
    let mut int_vars: Vec<usize> = (0..n)
        .filter(|&j| matches!(model.vars[j].kind, VarKind::Integer | VarKind::Binary))
        .collect();
    // Branch within the highest-priority class first; stable order keeps
    // determinism.
    int_vars.sort_by_key(|&j| std::cmp::Reverse(model.vars[j].priority));
    let priorities: Vec<i32> = int_vars.iter().map(|&j| model.vars[j].priority).collect();
    let revised = match cfg.engine {
        LpEngine::DenseTableau => None,
        _ => Some(RevisedEngine::from_parts(n, &objective, &rows)),
    };
    let ctx = SearchCtx {
        model,
        n,
        objective,
        rows,
        sparse_rows,
        kinds,
        structure,
        revised,
        engine: cfg.engine,
        int_vars,
        priorities,
    };

    let speculative = cfg.workers >= 2 && cfg.engine != LpEngine::DenseTableau;
    if !speculative {
        return sequencer(&ctx, cfg, root_bounds, None);
    }
    let spec = SpecState::new();
    std::thread::scope(|scope| {
        let _guard = ShutdownGuard(&spec);
        for _ in 0..cfg.workers - 1 {
            scope.spawn(|| worker_loop(&ctx, &spec, cfg.bland_switch));
        }
        sequencer(&ctx, cfg, root_bounds, Some(&spec))
    })
}

/// The deterministic main loop: pops nodes in a fixed order, consumes their
/// evaluations (precomputed or inline) and is the only thread that records
/// metrics or mutates search state.
fn sequencer(
    ctx: &SearchCtx<'_>,
    cfg: &BbConfig,
    root_bounds: Vec<(f64, f64)>,
    spec: Option<&SpecState>,
) -> Result<Solution, SolveError> {
    let mut stats = SolveStats::default();
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut frontier = Frontier::default();
    let mut next_seq = 0u64;
    push_node(
        &mut frontier,
        spec,
        &mut next_seq,
        root_bounds,
        f64::NEG_INFINITY,
        0,
        None,
    );

    while let Some(node) = frontier.pop(incumbent.is_some()) {
        if stats.nodes >= cfg.node_limit {
            return match incumbent {
                Some((values, objective)) => {
                    finish(ctx.model, values, objective, Status::Feasible, stats)
                }
                None => Err(SolveError::NodeLimit),
            };
        }
        stats.nodes += 1;
        obs::inc("ilp.bb.nodes");

        // Prune on the parent's canonical bound before paying for any LP.
        if let Some((_, inc_obj)) = &incumbent {
            if node.parent_bound >= *inc_obj - 1e-9 {
                obs::inc("ilp.bb.pruned");
                retire(spec, node.seq);
                continue;
            }
        }

        let cutoff = incumbent.as_ref().map_or(f64::INFINITY, |&(_, o)| o);
        let bundle = obtain(ctx, spec, &node, cutoff, cfg.bland_switch)?;

        match bundle.warm {
            WarmStage::NotAttempted | WarmStage::Miss => {}
            WarmStage::Infeasible(st) => {
                record_lp(&mut stats, &st);
                obs::inc("ilp.bb.warm_start_hits");
                continue;
            }
            WarmStage::Bound(za, st) => {
                record_lp(&mut stats, &st);
                obs::inc("ilp.bb.warm_start_hits");
                if za >= cutoff + PRUNE_MARGIN {
                    obs::inc("ilp.bb.pruned");
                    continue;
                }
            }
        }

        // The warm stage either settled the node above or guarantees a cold
        // stage is present; `None` here is unreachable, handled without
        // panicking to honor the library's no-panic policy.
        let Some(cold) = bundle.cold else { continue };
        if ctx.engine == LpEngine::DenseTableau {
            // The dense engine records its own pivot metrics.
            stats.lp_iterations += cold.stats.pivots;
        } else {
            record_lp(&mut stats, &cold.stats);
        }
        let (x, bound) = match cold.outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return Err(SolveError::Unbounded),
            LpOutcome::Optimal { x, objective, .. } => (x, objective),
        };

        if let Some((_, inc_obj)) = &incumbent {
            if bound >= *inc_obj - 1e-9 {
                obs::inc("ilp.bb.pruned");
                continue;
            }
        }

        match select_branching(&x, &ctx.int_vars, &ctx.priorities, cfg.branching) {
            None => {
                // Integer feasible: round and recompute the objective
                // exactly over the rounded point (fixed summation order).
                let mut values = x;
                for &j in &ctx.int_vars {
                    values[j] = values[j].round();
                }
                let exact: f64 = values.iter().zip(&ctx.objective).map(|(v, c)| v * c).sum();
                let improves = incumbent.as_ref().is_none_or(|&(_, inc)| exact < inc);
                if improves {
                    obs::inc("ilp.bb.incumbents");
                    incumbent = Some((values, exact));
                    if let Some(spec) = spec {
                        spec.lock().cutoff = exact;
                    }
                }
            }
            Some(j) => {
                let v = x[j];
                let floor = v.floor();
                let (lb, ub) = node.bounds[j];
                let basis = cold.basis.map(Arc::new);
                let mut down = node.bounds.clone();
                down[j] = (lb, floor.min(ub));
                let mut up = node.bounds.clone();
                up[j] = ((floor + 1.0).max(lb), ub);
                // Up pushed first so the depth-first phase explores the
                // down branch first, matching the serial dive order.
                for child in [up, down] {
                    if let Some(tightened) = tighten_child(ctx, child) {
                        push_node(
                            &mut frontier,
                            spec,
                            &mut next_seq,
                            tightened,
                            bound,
                            node.depth + 1,
                            basis.clone(),
                        );
                    }
                }
            }
        }
    }

    match incumbent {
        Some((values, objective)) => finish(ctx.model, values, objective, Status::Optimal, stats),
        None => Err(SolveError::Infeasible),
    }
}

/// Node-level presolve: branch-tightened child bounds run interval +
/// indicator propagation; provably infeasible children are dropped before
/// they ever reach the frontier. Returns the tightened bounds.
fn tighten_child(ctx: &SearchCtx<'_>, mut bounds: Vec<(f64, f64)>) -> Option<Vec<(f64, f64)>> {
    let fixed_before = presolve::count_fixed(&bounds);
    let mut tightenings = 0u64;
    let res = presolve::tighten_quiet(
        &ctx.sparse_rows,
        &ctx.kinds,
        &ctx.structure,
        &mut bounds,
        &mut tightenings,
    );
    obs::add("ilp.presolve.tightenings", tightenings);
    match res {
        Ok(()) => {
            obs::add(
                "ilp.presolve.vars_fixed",
                presolve::count_fixed(&bounds).saturating_sub(fixed_before) as u64,
            );
            Some(bounds)
        }
        Err(_) => None,
    }
}

fn push_node(
    frontier: &mut Frontier,
    spec: Option<&SpecState>,
    next_seq: &mut u64,
    bounds: Vec<(f64, f64)>,
    parent_bound: f64,
    depth: usize,
    parent_basis: Option<Arc<Basis>>,
) {
    let node = Arc::new(NodeData {
        seq: *next_seq,
        bounds,
        parent_bound,
        depth,
        parent_basis,
    });
    *next_seq += 1;
    if let Some(spec) = spec {
        let mut g = spec.lock();
        g.queue.insert(node.seq, Arc::clone(&node));
        drop(g);
        spec.cv.notify_all();
    }
    frontier.push(node);
}

/// Drops a node from the speculation state without consuming a result.
fn retire(spec: Option<&SpecState>, seq: u64) {
    if let Some(spec) = spec {
        let mut g = spec.lock();
        g.queue.remove(&seq);
        g.results.remove(&seq);
        g.retired.insert(seq);
    }
}

/// Fetches the node's evaluation: a worker's precomputed bundle when one
/// exists (waiting for it if in flight), the sequencer's own inline
/// evaluation otherwise. Either way the bundle is the same pure function of
/// the node, so worker count never changes what the sequencer consumes.
fn obtain(
    ctx: &SearchCtx<'_>,
    spec: Option<&SpecState>,
    node: &NodeData,
    cutoff: f64,
    bland_switch: usize,
) -> Result<EvalBundle, SolveError> {
    let Some(spec) = spec else {
        return evaluate(ctx, node, cutoff, bland_switch);
    };
    let mut g = spec.lock();
    g.queue.remove(&node.seq);
    loop {
        if let Some(r) = g.results.remove(&node.seq) {
            g.retired.insert(node.seq);
            return r;
        }
        if !g.claimed.contains(&node.seq) {
            g.retired.insert(node.seq);
            drop(g);
            return evaluate(ctx, node, cutoff, bland_switch);
        }
        g = spec.wait(g);
    }
}

/// Evaluates one node: warm dual stage (when a parent basis exists), then
/// the canonical cold stage unless the warm stage already settled the node
/// at `cutoff`. Pure: no metrics, no shared state.
fn evaluate(
    ctx: &SearchCtx<'_>,
    node: &NodeData,
    cutoff: f64,
    bland_switch: usize,
) -> Result<EvalBundle, SolveError> {
    let mut warm = WarmStage::NotAttempted;
    // Stage A runs only in the warm configuration; `RevisedCold` is the
    // cold-resolve ablation arm and must not touch the parent basis.
    if ctx.engine != LpEngine::RevisedWarm {
        let cold = cold_eval(ctx, node, bland_switch)?;
        return Ok(EvalBundle {
            warm,
            cold: Some(cold),
        });
    }
    if let (Some(engine), Some(pb)) = (&ctx.revised, &node.parent_basis) {
        match engine.solve_dual_from(&node.bounds, pb, bland_switch) {
            Err(_) => warm = WarmStage::Miss,
            Ok(out) => match out.outcome {
                LpOutcome::Infeasible => {
                    return Ok(EvalBundle {
                        warm: WarmStage::Infeasible(out.stats),
                        cold: None,
                    });
                }
                LpOutcome::Optimal { objective: za, .. } => {
                    if za >= cutoff + PRUNE_MARGIN {
                        return Ok(EvalBundle {
                            warm: WarmStage::Bound(za, out.stats),
                            cold: None,
                        });
                    }
                    warm = WarmStage::Bound(za, out.stats);
                }
                // The dual simplex never terminates unbounded; treat a
                // malformed outcome as a miss rather than panicking.
                LpOutcome::Unbounded => warm = WarmStage::Miss,
            },
        }
    }
    let cold = cold_eval(ctx, node, bland_switch)?;
    Ok(EvalBundle {
        warm,
        cold: Some(cold),
    })
}

/// Stage B: the canonical cold solve of the node's LP relaxation. Every
/// branching and incumbent decision flows from this result alone.
fn cold_eval(
    ctx: &SearchCtx<'_>,
    node: &NodeData,
    bland_switch: usize,
) -> Result<ColdEval, SolveError> {
    match &ctx.revised {
        Some(engine) => {
            let out = engine.solve_primal(&node.bounds, bland_switch)?;
            Ok(ColdEval {
                outcome: out.outcome,
                basis: out.basis,
                stats: out.stats,
            })
        }
        None => {
            let lp = LpProblem {
                n: ctx.n,
                objective: ctx.objective.clone(),
                rows: ctx.rows.clone(),
                bounds: node.bounds.clone(),
            };
            let outcome = solve_lp_with_bland_switch(&lp, bland_switch)?;
            let pivots = match &outcome {
                LpOutcome::Optimal { iterations, .. } => *iterations,
                _ => 0,
            };
            Ok(ColdEval {
                outcome,
                basis: None,
                stats: LpStats {
                    pivots,
                    refactorizations: 0,
                    bland_engaged: false,
                },
            })
        }
    }
}

/// Speculative worker: repeatedly claims a frontier node, evaluates it with
/// the cutoff snapshotted at claim time (the cutoff only decreases, so a
/// skipped cold stage stays valid) and posts the bundle for the sequencer.
fn worker_loop(ctx: &SearchCtx<'_>, spec: &SpecState, bland_switch: usize) {
    let mut g = spec.lock();
    loop {
        if g.shutdown {
            return;
        }
        // Claim the node the sequencer will want soonest: newest during
        // the depth-first phase, best-bound once an incumbent exists.
        let candidate = if g.cutoff.is_finite() {
            g.queue
                .values()
                .filter(|n| !g.claimed.contains(&n.seq))
                .min_by_key(|n| bound_key(n))
                .map(Arc::clone)
        } else {
            g.queue
                .values()
                .rev()
                .find(|n| !g.claimed.contains(&n.seq))
                .map(Arc::clone)
        };
        let Some(node) = candidate else {
            g = spec.wait(g);
            continue;
        };
        g.claimed.insert(node.seq);
        let cutoff = g.cutoff;
        drop(g);
        let bundle = evaluate(ctx, &node, cutoff, bland_switch);
        g = spec.lock();
        g.claimed.remove(&node.seq);
        if !g.retired.contains(&node.seq) {
            g.results.insert(node.seq, bundle);
        }
        drop(g);
        spec.cv.notify_all();
        g = spec.lock();
    }
}

/// Folds one LP solve's statistics into the search stats and the metrics
/// registry (revised engine only; the dense engine self-records).
fn record_lp(stats: &mut SolveStats, lp: &LpStats) {
    stats.lp_iterations += lp.pivots;
    obs::add("ilp.simplex.pivots", lp.pivots as u64);
    obs::add("ilp.simplex.refactorizations", lp.refactorizations as u64);
    if lp.bland_engaged {
        obs::inc("ilp.simplex.bland_switches");
    }
}

fn select_branching(
    x: &[f64],
    int_vars: &[usize],
    priorities: &[i32],
    rule: Branching,
) -> Option<usize> {
    match rule {
        Branching::FirstFractional => int_vars
            .iter()
            .copied()
            .find(|&j| (x[j] - x[j].round()).abs() > FEAS_TOL * 10.0),
        Branching::MostFractional => {
            // `int_vars` is sorted by descending priority: take the most
            // fractional variable within the first priority class that has
            // any fractional variable.
            let mut best = None;
            let mut best_score = FEAS_TOL * 10.0;
            let mut class: Option<i32> = None;
            for (i, &j) in int_vars.iter().enumerate() {
                if let Some(c) = class {
                    if priorities[i] < c && best.is_some() {
                        break;
                    }
                }
                let f = x[j] - x[j].floor();
                let score = f.min(1.0 - f);
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                    class = Some(priorities[i]);
                }
            }
            best
        }
    }
}

fn finish(
    model: &Model,
    values: Vec<f64>,
    objective: f64,
    status: Status,
    stats: SolveStats,
) -> Result<Solution, SolveError> {
    let sol = Solution {
        values,
        objective,
        status,
        stats,
    };
    if let Some(constraint) = sol.verify(model, 1e-5) {
        return Err(SolveError::VerificationFailed {
            constraint,
            violation: f64::NAN,
        });
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::{BbConfig, LpEngine};
    use crate::{Cmp, Model, SolveError, Status};

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, weights 3,4,2, capacity 6 => a + c (17) vs b+c (20)
        let mut m = Model::new();
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let c = m.bin_var("c");
        m.constraint(
            m.expr().term(3.0, a).term(4.0, b).term(2.0, c),
            Cmp::Le,
            6.0,
        );
        m.minimize(m.expr().term(-10.0, a).term(-13.0, b).term(-7.0, c));
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert_eq!(
            (sol.int_value(a), sol.int_value(b), sol.int_value(c)),
            (0, 1, 1)
        );
        assert!((sol.objective() + 20.0).abs() < 1e-6);
    }

    #[test]
    fn pure_feasibility_problem() {
        let mut m = Model::new();
        let x = m.int_var("x", 0, 9);
        let y = m.int_var("y", 0, 9);
        m.constraint(m.expr().term(1.0, x).term(1.0, y), Cmp::Eq, 7.0);
        m.constraint(m.expr().term(1.0, x).term(-1.0, y), Cmp::Ge, 2.0);
        let sol = m.solve().unwrap();
        let (xv, yv) = (sol.int_value(x), sol.int_value(y));
        assert_eq!(xv + yv, 7);
        assert!(xv - yv >= 2);
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x == 3 has no integer solution but a fractional one.
        let mut m = Model::new();
        let x = m.int_var("x", 0, 5);
        m.constraint(m.expr().term(2.0, x), Cmp::Eq, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn lp_relaxation_gap_forces_branching() {
        // max x + y s.t. 2x + 2y <= 3, binary => one of them only.
        let mut m = Model::new();
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        m.constraint(m.expr().term(2.0, x).term(2.0, y), Cmp::Le, 3.0);
        m.minimize(m.expr().term(-1.0, x).term(-1.0, y));
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x) + sol.int_value(y), 1);
        assert!(sol.stats().nodes >= 2, "branching should have occurred");
    }

    #[test]
    fn negative_integer_domains() {
        // min x s.t. x >= -7.5, integer in [-10, 0] => x = -7
        let mut m = Model::new();
        let x = m.int_var("x", -10, 0);
        m.constraint(m.expr().term(1.0, x), Cmp::Ge, -7.5);
        m.minimize(m.expr().term(1.0, x));
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -7);
    }

    #[test]
    fn assignment_problem_3x3() {
        // Classic assignment: cost matrix, each row/col exactly once.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.bin_var(&format!("x{i}{j}")));
            }
            x.push(row);
        }
        #[allow(clippy::needless_range_loop)] // i indexes rows and columns
        for i in 0..3 {
            m.constraint(m.expr().sum(x[i].iter().copied()), Cmp::Eq, 1.0);
            m.constraint(m.expr().sum((0..3).map(|k| x[k][i])), Cmp::Eq, 1.0);
        }
        let mut obj = m.expr();
        for i in 0..3 {
            for j in 0..3 {
                obj = obj.term(costs[i][j], x[i][j]);
            }
        }
        m.minimize(obj);
        let sol = m.solve().unwrap();
        // Optimal assignment: (0,1)=2, (1,2)... check objective = 2+7+3 = 12
        // vs alternatives; brute force says min is 2 (0,1) + 7 (1,2) + 3 (2,0) = 12.
        assert!((sol.objective() - 12.0).abs() < 1e-6, "{}", sol.objective());
    }

    #[test]
    fn node_limit_trips() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.bin_var(&format!("b{i}"))).collect();
        // Equality over halves forces deep search with limit 1.
        m.constraint(m.expr().sum(vars.iter().copied()), Cmp::Eq, 6.0);
        m.minimize(m.expr().term(0.5, vars[0]));
        let err = m.solve_with_node_limit(0).unwrap_err();
        assert_eq!(err, SolveError::NodeLimit);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // The paper's nullifier pattern: NE + NW == 1; constraints
        //   cs <= ck + b*NE and b*NW + cs >= ck  must pick a consistent side.
        let b = 100.0;
        let mut m = Model::new();
        let cs = m.int_var("cs", 0, 5);
        let ck = m.int_var("ck", 0, 5);
        let ne = m.bin_var("ne");
        let nw = m.bin_var("nw");
        m.constraint(m.expr().term(1.0, ne).term(1.0, nw), Cmp::Eq, 1.0);
        // cs <= ck + b*NE  (eastbound unless nullified)
        m.constraint(
            m.expr().term(1.0, cs).term(-1.0, ck).term(-b, ne),
            Cmp::Le,
            0.0,
        );
        // cs >= ck - b*NW  (westbound unless nullified)
        m.constraint(
            m.expr().term(1.0, cs).term(-1.0, ck).term(b, nw),
            Cmp::Ge,
            0.0,
        );
        // Pin cs = 4, ck = 1: only the westbound constraint can hold, so the
        // eastbound one must be nullified: NE = 1, NW = 0.
        m.constraint(m.expr().term(1.0, cs), Cmp::Eq, 4.0);
        m.constraint(m.expr().term(1.0, ck), Cmp::Eq, 1.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(ne), 1);
        assert_eq!(sol.int_value(nw), 0);
    }

    /// A model with enough LP-relaxation gap to force a real tree:
    /// maximize a weighted sum of binaries under two odd-capacity covering
    /// rows (every LP relaxation lands on half-integral vertices).
    fn branching_model(k: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> = (0..2 * k).map(|i| m.bin_var(&format!("b{i}"))).collect();
        let mut obj = m.expr();
        for (i, &v) in vars.iter().enumerate() {
            obj = obj.term(-(1.0 + (i % 3) as f64 * 0.1), v);
        }
        m.minimize(obj);
        let all = vars
            .iter()
            .fold(m.expr(), |e, &v| e.term(2.0, v))
            .constant_free();
        m.constraint(all, Cmp::Le, 2.0 * k as f64 + 1.0);
        let half = vars
            .iter()
            .take(k + 1)
            .fold(m.expr(), |e, &v| e.term(2.0, v))
            .constant_free();
        m.constraint(half, Cmp::Le, k as f64 + 1.0);
        m
    }

    /// All engine configurations produce identical solutions: warm-started
    /// and parallel searches consume canonical stage-B results only, so the
    /// answer is a pure function of the model.
    #[test]
    fn engines_and_worker_counts_agree() {
        let m = branching_model(5);
        let cold = m
            .solve_with_config(&BbConfig {
                engine: LpEngine::RevisedCold,
                ..BbConfig::default()
            })
            .unwrap();
        for (engine, workers) in [
            (LpEngine::RevisedWarm, 1),
            (LpEngine::RevisedWarm, 4),
            (LpEngine::RevisedCold, 8),
        ] {
            let sol = m
                .solve_with_config(&BbConfig {
                    engine,
                    workers,
                    ..BbConfig::default()
                })
                .unwrap();
            let bits = |s: &crate::Solution| -> Vec<u64> {
                s.values.iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(
                bits(&sol),
                bits(&cold),
                "{engine:?} x{workers} diverged from cold serial"
            );
            assert_eq!(sol.objective().to_bits(), cold.objective().to_bits());
            assert_eq!(sol.status(), cold.status());
        }
    }

    /// The anti-cycling pivot counter resets per LP solve: a tree whose
    /// *total* pivot count crosses the Bland switch must never engage it as
    /// long as each individual node solve stays below the threshold. A
    /// carried-over counter would trip on a later node and record a switch.
    #[test]
    fn bland_counter_resets_per_node_resolve() {
        let reg = std::sync::Arc::new(coremap_obs::Registry::new());
        let total_pivots;
        let nodes;
        {
            let _g = coremap_obs::install(reg.clone());
            let sol = branching_model(5).solve().unwrap();
            nodes = sol.stats().nodes;
            total_pivots = reg.counter_value("ilp.simplex.pivots");
            assert_eq!(reg.counter_value("ilp.simplex.bland_switches"), 0);
        }
        assert!(nodes >= 3, "model must branch ({nodes} nodes)");
        // Re-solve with the switch set between the largest plausible
        // single-solve pivot count and the total. 64 is far above any one
        // solve of this tiny model (each LP has <= 12 columns); the total
        // is far above it.
        let switch = 64;
        assert!(
            total_pivots > switch,
            "total pivots {total_pivots} must exceed the switch {switch}"
        );
        let reg2 = std::sync::Arc::new(coremap_obs::Registry::new());
        {
            let _g = coremap_obs::install(reg2.clone());
            let sol = branching_model(5)
                .solve_with_config(&BbConfig {
                    bland_switch: switch as usize,
                    ..BbConfig::default()
                })
                .unwrap();
            assert_eq!(sol.status(), Status::Optimal);
        }
        assert_eq!(
            reg2.counter_value("ilp.simplex.bland_switches"),
            0,
            "per-solve counter must not accumulate across node re-solves"
        );
    }

    /// Degenerate LP (assignment polytope, massively tied ratio tests) with
    /// Bland engaged from the first pivot still reaches the optimum.
    #[test]
    fn degenerate_model_with_immediate_bland_terminates() {
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.bin_var(&format!("x{i}{j}")));
            }
            x.push(row);
        }
        #[allow(clippy::needless_range_loop)] // i indexes rows and columns
        for i in 0..3 {
            m.constraint(m.expr().sum(x[i].iter().copied()), Cmp::Eq, 1.0);
            m.constraint(m.expr().sum((0..3).map(|k| x[k][i])), Cmp::Eq, 1.0);
        }
        let mut obj = m.expr();
        for i in 0..3 {
            for j in 0..3 {
                obj = obj.term(costs[i][j], x[i][j]);
            }
        }
        m.minimize(obj);
        let sol = m
            .solve_with_config(&BbConfig {
                bland_switch: 0,
                ..BbConfig::default()
            })
            .unwrap();
        assert!((sol.objective() - 12.0).abs() < 1e-6);
    }

    /// Warm-start hits are recorded whenever a child re-solves from its
    /// parent's basis.
    #[test]
    fn warm_start_hits_recorded() {
        let reg = std::sync::Arc::new(coremap_obs::Registry::new());
        {
            let _g = coremap_obs::install(reg.clone());
            branching_model(5).solve().unwrap();
        }
        assert!(
            reg.counter_value("ilp.bb.warm_start_hits") > 0,
            "warm starts must register on a branching model"
        );
        assert!(reg.counter_value("ilp.bb.nodes") >= 3);
        assert!(reg.counter_value("ilp.simplex.refactorizations") > 0);
    }

    /// Metrics are identical at any worker count: only the sequencer
    /// records, and it consumes identical evaluations in identical order.
    #[test]
    fn metrics_identical_across_worker_counts() {
        let mut exports = Vec::new();
        for workers in [1usize, 4] {
            let reg = std::sync::Arc::new(coremap_obs::Registry::new());
            {
                let _g = coremap_obs::install(reg.clone());
                branching_model(6)
                    .solve_with_config(&BbConfig {
                        workers,
                        ..BbConfig::default()
                    })
                    .unwrap();
            }
            exports.push(reg.to_json(false));
        }
        assert_eq!(
            exports[0], exports[1],
            "metrics must not depend on worker count"
        );
    }
}
