//! Pins the ring-discipline appendix of `results/ablate_ring.txt`.
//!
//! The appendix is the deterministic part of the ablation output
//! (hypothesis-selection verdicts over the builtin zoo on a ring trace);
//! the timing columns above it are regenerated per run and cannot be
//! pinned. If the zoo, the ring solver or the elimination messages
//! change, regenerate the file with
//! `cargo run -p coremap-bench --bin ablate_ring_choice`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

#[test]
fn ring_discipline_appendix_matches_results_file() {
    let report = coremap_bench::ring_discipline_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/ablate_ring.txt");
    let file = std::fs::read_to_string(path).expect("results/ablate_ring.txt exists");
    assert!(
        file.ends_with(&report),
        "results/ablate_ring.txt appendix is stale; expected it to end with:\n{report}"
    );
}
