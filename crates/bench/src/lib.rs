//! Shared harness code for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). The helpers here handle
//! argument parsing, fleet-wide mapping with a worker pool, and the
//! attacker-side placement logic that picks sender/receiver cores from a
//! *recovered* map (never from ground truth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use coremap_core::{CoreMap, CoreMapper};
use coremap_fleet::{CloudFleet, CloudInstance, CpuModel, FleetRunner};
use coremap_mesh::{Direction, OsCoreId};
use coremap_thermal::power::ThermalNoise;
use coremap_thermal::{ThermalParams, ThermalSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Instances to map per CPU model (paper scale: 100 / 100 / 100 / 10).
    pub instances: Option<usize>,
    /// Payload bits per covert-channel measurement (paper scale: 10_000).
    pub bits: usize,
    /// Fleet / experiment seed.
    pub seed: u64,
    /// Worker threads for fleet mapping.
    pub workers: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            instances: None,
            bits: 2_000,
            seed: 2022,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl Options {
    /// Parses `--instances N`, `--bits N`, `--seed N`, `--workers N` and
    /// `--paper` (paper-scale defaults: all instances, 10 kbit payloads).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut take = |name: &str| -> usize {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} requires a numeric argument"))
            };
            match a.as_str() {
                "--instances" => opts.instances = Some(take("--instances")),
                "--bits" => opts.bits = take("--bits"),
                "--seed" => opts.seed = take("--seed") as u64,
                "--workers" => opts.workers = take("--workers"),
                "--paper" => {
                    opts.instances = None;
                    opts.bits = 10_000;
                }
                other => panic!(
                    "unknown argument {other}; supported: --instances N --bits N --seed N --workers N --paper"
                ),
            }
        }
        opts
    }

    /// Number of instances to map for `model`.
    pub fn instances_for(&self, model: CpuModel) -> usize {
        self.instances
            .unwrap_or(model.paper_population())
            .min(model.paper_population())
    }
}

/// Maps `count` instances of `model` with the shared [`FleetRunner`] pool,
/// returning `(instance, recovered map)` pairs in instance order.
///
/// Instances that fail to map are skipped and counted on stderr — on the
/// quiet simulated fleet a non-zero count indicates a pipeline bug, but a
/// single bad instance no longer aborts a whole campaign.
pub fn map_fleet(
    fleet: &CloudFleet,
    model: CpuModel,
    count: usize,
    workers: usize,
) -> Vec<(CloudInstance, CoreMap)> {
    let outcome = FleetRunner::new(workers).map_instances(
        fleet,
        model,
        count,
        &CoreMapper::new(),
        CloudInstance::boot,
    );
    report_skipped(model, &outcome);
    outcome.into_successes()
}

/// Runs only step 1 of the methodology (eviction sets + CHA discovery) for
/// `count` instances — all that Table I needs, much cheaper than the full
/// pipeline. Failing instances are skipped and counted as for
/// [`map_fleet`].
pub fn cha_map_fleet(
    fleet: &CloudFleet,
    model: CpuModel,
    count: usize,
    workers: usize,
) -> Vec<(CloudInstance, coremap_core::cha_map::ChaMapping)> {
    let outcome = FleetRunner::new(workers).run(fleet, model, count, |instance| {
        let mut machine = instance.boot();
        let mut rng = ChaCha8Rng::seed_from_u64(0x6d61_7070);
        let sets = coremap_core::eviction::build_all_sets(&mut machine, &mut rng, 8)?;
        coremap_core::cha_map::discover(&mut machine, &sets, 3)
    });
    report_skipped(model, &outcome);
    outcome.into_successes()
}

fn report_skipped<T, E: std::fmt::Display>(
    model: CpuModel,
    outcome: &coremap_fleet::FleetOutcome<T, E>,
) {
    for (instance, error) in outcome.failures() {
        eprintln!("skipping {model} #{}: {error}", instance.index());
    }
    let skipped = outcome.failure_count();
    if skipped > 0 {
        eprintln!("{model}: {skipped} instance(s) skipped");
    }
}

/// Prints a monospace table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Finds, on a *recovered* map, a sender/receiver core pair `hops` tiles
/// apart along `axis` (vertical = same column, horizontal = same row).
/// Returns `None` if the map has no such pair.
pub fn pick_pair_at(map: &CoreMap, axis: Direction, hops: usize) -> Option<(OsCoreId, OsCoreId)> {
    all_pairs_at(map, axis, hops).into_iter().next()
}

/// All sender/receiver core pairs `hops` tiles apart along `axis` on the
/// recovered map (unordered pairs reported once, `tx < rx`).
pub fn all_pairs_at(map: &CoreMap, axis: Direction, hops: usize) -> Vec<(OsCoreId, OsCoreId)> {
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let mut pairs = Vec::new();
    for &tx in &cores {
        for &rx in &cores {
            if tx >= rx {
                continue;
            }
            let a = map.coord_of_core(tx);
            let b = map.coord_of_core(rx);
            let matches = if axis.is_vertical() {
                a.col == b.col && a.row.abs_diff(b.row) == hops
            } else {
                a.row == b.row && a.col.abs_diff(b.col) == hops
            };
            if matches {
                pairs.push((tx, rx));
            }
        }
    }
    pairs
}

/// Senders surrounding a receiver on the recovered map, nearest (vertical)
/// first — the placement rule of the multi-sender experiment (Sec. V-B).
pub fn surrounding_senders(map: &CoreMap, receiver: OsCoreId, n: usize) -> Vec<OsCoreId> {
    let rc = map.coord_of_core(receiver);
    let mut candidates: Vec<(usize, usize, OsCoreId)> = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .filter(|&c| c != receiver)
        .map(|c| {
            let p = map.coord_of_core(c);
            let vertical_first = if p.col == rc.col { 0 } else { 1 };
            (p.hop_distance(rc), vertical_first, c)
        })
        .collect();
    candidates.sort();
    candidates.into_iter().take(n).map(|(_, _, c)| c).collect()
}

/// Builds the standard cloud-environment thermal simulation for an
/// instance.
pub fn thermal_sim(instance: &CloudInstance, seed: u64) -> ThermalSim {
    let plan = instance.floorplan().clone();
    let tiles = plan.dim().tile_count();
    ThermalSim::new(plan, ThermalParams::default(), seed).with_noise(ThermalNoise::cloud(tiles))
}

/// Deterministic random payload bits.
pub fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_sane() {
        let o = Options::default();
        assert!(o.workers >= 1);
        assert_eq!(o.bits, 2_000);
    }

    #[test]
    fn pick_pair_and_senders_on_recovered_map() {
        let fleet = CloudFleet::with_seed(7);
        let instance = fleet.instance(CpuModel::Platinum8124M, 0).unwrap();
        let mut machine = instance.boot();
        let map = CoreMapper::new().map(&mut machine).unwrap();
        let (tx, rx) = pick_pair_at(&map, Direction::Up, 1).expect("vertical pair");
        assert_eq!(map.hop_distance(tx, rx), 1);
        let senders = surrounding_senders(&map, rx, 4);
        assert_eq!(senders.len(), 4);
        assert!(senders.iter().all(|&s| s != rx));
    }

    #[test]
    fn map_fleet_returns_all_instances() {
        let fleet = CloudFleet::with_seed(3);
        let mapped = map_fleet(&fleet, CpuModel::Gold6354, 2, 2);
        assert_eq!(mapped.len(), 2);
        assert_eq!(mapped[0].0.index(), 0);
        assert_eq!(mapped[1].0.index(), 1);
    }
}
