//! Shared harness code for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). The helpers here handle
//! argument parsing, fleet-wide mapping with a worker pool, and the
//! attacker-side placement logic that picks sender/receiver cores from a
//! *recovered* map (never from ground truth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use coremap_core::{CoreMap, CoreMapper};
use coremap_fleet::{CloudFleet, CloudInstance, CpuModel, FleetRunner};
use coremap_mesh::{Direction, OsCoreId};
use coremap_obs as obs;
use coremap_thermal::power::ThermalNoise;
use coremap_thermal::{ThermalParams, ThermalSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Instances to map per CPU model (paper scale: 100 / 100 / 100 / 10).
    pub instances: Option<usize>,
    /// Payload bits per covert-channel measurement (paper scale: 10_000).
    pub bits: usize,
    /// Fleet / experiment seed.
    pub seed: u64,
    /// Worker threads for fleet mapping.
    pub workers: usize,
    /// Write pipeline metrics as JSON to this file (same
    /// `coremap-metrics/v1` shape as the CLI `--metrics` flag).
    pub metrics: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            instances: None,
            bits: 2_000,
            seed: 2022,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            metrics: None,
        }
    }
}

fn arg_value(args: &mut impl Iterator<Item = String>, name: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("{name} requires an argument"))
}

fn arg_num(args: &mut impl Iterator<Item = String>, name: &str) -> usize {
    arg_value(args, name)
        .parse()
        .unwrap_or_else(|_| panic!("{name} requires a numeric argument"))
}

impl Options {
    /// Parses `--instances N`, `--bits N`, `--seed N`, `--workers N`,
    /// `--metrics FILE` and `--paper` (paper-scale defaults: all
    /// instances, 10 kbit payloads).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--instances" => opts.instances = Some(arg_num(&mut args, "--instances")),
                "--bits" => opts.bits = arg_num(&mut args, "--bits"),
                "--seed" => opts.seed = arg_num(&mut args, "--seed") as u64,
                "--workers" => opts.workers = arg_num(&mut args, "--workers"),
                "--metrics" => opts.metrics = Some(arg_value(&mut args, "--metrics")),
                "--paper" => {
                    opts.instances = None;
                    opts.bits = 10_000;
                }
                other => panic!(
                    "unknown argument {other}; supported: --instances N --bits N --seed N --workers N --metrics FILE --paper"
                ),
            }
        }
        opts
    }

    /// Installs a metrics registry when `--metrics` was given. Hold the
    /// returned sink for the duration of the experiment; dropping it
    /// exports the deterministic snapshot to the requested file.
    pub fn metrics_sink(&self) -> Option<MetricsSink> {
        self.metrics.as_ref().map(|path| MetricsSink::new(path))
    }

    /// Number of instances to map for `model`.
    pub fn instances_for(&self, model: CpuModel) -> usize {
        self.instances
            .unwrap_or(model.paper_population())
            .min(model.paper_population())
    }
}

/// Metrics collection scope for an experiment binary: installs a fresh
/// registry on construction and writes its deterministic JSON snapshot
/// (schema `coremap-metrics/v1`, the same shape the CLI `--metrics` flag
/// produces) to `path` on drop.
pub struct MetricsSink {
    reg: Arc<obs::Registry>,
    guard: Option<obs::InstallGuard>,
    path: String,
}

impl MetricsSink {
    /// Installs a fresh registry for the calling thread; the snapshot is
    /// written to `path` when the sink is dropped.
    pub fn new(path: &str) -> Self {
        let reg = Arc::new(obs::Registry::new());
        let guard = Some(obs::install(reg.clone()));
        Self {
            reg,
            guard,
            path: path.to_owned(),
        }
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        self.guard.take();
        match std::fs::write(&self.path, self.reg.to_json(false)) {
            Ok(()) => eprintln!("metrics written: {}", self.path),
            Err(e) => eprintln!("failed to write metrics {}: {e}", self.path),
        }
    }
}

/// Maps `count` instances of `model` with the shared [`FleetRunner`] pool,
/// returning `(instance, recovered map)` pairs in instance order.
///
/// Instances that fail to map are skipped and counted on stderr — on the
/// quiet simulated fleet a non-zero count indicates a pipeline bug, but a
/// single bad instance no longer aborts a whole campaign.
pub fn map_fleet(
    fleet: &CloudFleet,
    model: CpuModel,
    count: usize,
    workers: usize,
) -> Vec<(CloudInstance, CoreMap)> {
    let outcome = FleetRunner::new(workers).map_instances(
        fleet,
        model,
        count,
        &CoreMapper::new(),
        CloudInstance::boot,
    );
    report_skipped(model, &outcome);
    outcome.into_successes()
}

/// Runs only step 1 of the methodology (eviction sets + CHA discovery) for
/// `count` instances — all that Table I needs, much cheaper than the full
/// pipeline. Failing instances are skipped and counted as for
/// [`map_fleet`].
pub fn cha_map_fleet(
    fleet: &CloudFleet,
    model: CpuModel,
    count: usize,
    workers: usize,
) -> Vec<(CloudInstance, coremap_core::cha_map::ChaMapping)> {
    let outcome = FleetRunner::new(workers).run(fleet, model, count, |instance| {
        let mut machine = instance.boot();
        let mut rng = ChaCha8Rng::seed_from_u64(0x6d61_7070);
        let sets = coremap_core::eviction::build_all_sets(&mut machine, &mut rng, 8)?;
        coremap_core::cha_map::discover(&mut machine, &sets, 3)
    });
    report_skipped(model, &outcome);
    outcome.into_successes()
}

fn report_skipped<T, E: std::fmt::Display>(
    model: CpuModel,
    outcome: &coremap_fleet::FleetOutcome<T, E>,
) {
    for (instance, error) in outcome.failures() {
        eprintln!("skipping {model} #{}: {error}", instance.index());
    }
    let skipped = outcome.failure_count();
    if skipped > 0 {
        eprintln!("{model}: {skipped} instance(s) skipped");
    }
}

/// Prints a monospace table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Finds, on a *recovered* map, a sender/receiver core pair `hops` tiles
/// apart along `axis` (vertical = same column, horizontal = same row).
/// Returns `None` if the map has no such pair.
pub fn pick_pair_at(map: &CoreMap, axis: Direction, hops: usize) -> Option<(OsCoreId, OsCoreId)> {
    all_pairs_at(map, axis, hops).into_iter().next()
}

/// All sender/receiver core pairs `hops` tiles apart along `axis` on the
/// recovered map (unordered pairs reported once, `tx < rx`).
pub fn all_pairs_at(map: &CoreMap, axis: Direction, hops: usize) -> Vec<(OsCoreId, OsCoreId)> {
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let mut pairs = Vec::new();
    for &tx in &cores {
        for &rx in &cores {
            if tx >= rx {
                continue;
            }
            let a = map.coord_of_core(tx);
            let b = map.coord_of_core(rx);
            let matches = if axis.is_vertical() {
                a.col == b.col && a.row.abs_diff(b.row) == hops
            } else {
                a.row == b.row && a.col.abs_diff(b.col) == hops
            };
            if matches {
                pairs.push((tx, rx));
            }
        }
    }
    pairs
}

/// Senders surrounding a receiver on the recovered map, nearest (vertical)
/// first — the placement rule of the multi-sender experiment (Sec. V-B).
pub fn surrounding_senders(map: &CoreMap, receiver: OsCoreId, n: usize) -> Vec<OsCoreId> {
    let rc = map.coord_of_core(receiver);
    let mut candidates: Vec<(usize, usize, OsCoreId)> = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .filter(|&c| c != receiver)
        .map(|c| {
            let p = map.coord_of_core(c);
            let vertical_first = if p.col == rc.col { 0 } else { 1 };
            (p.hop_distance(rc), vertical_first, c)
        })
        .collect();
    candidates.sort();
    candidates.into_iter().take(n).map(|(_, _, c)| c).collect()
}

/// Builds the standard cloud-environment thermal simulation for an
/// instance.
pub fn thermal_sim(instance: &CloudInstance, seed: u64) -> ThermalSim {
    let plan = instance.floorplan().clone();
    let tiles = plan.dim().tile_count();
    ThermalSim::new(plan, ThermalParams::default(), seed).with_noise(ThermalNoise::cloud(tiles))
}

/// Deterministic random payload bits.
pub fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Deterministic ring-discipline report: runs topology hypothesis
/// selection over the builtin zoo against a synthetic trace of the
/// `ring-28` topology and renders the per-hypothesis verdicts. The
/// appendix of `results/ablate_ring.txt` pins this output byte-for-byte
/// (regression test `ablate_ring_regression`), so everything here must
/// stay free of timing and randomness.
pub fn ring_discipline_report() -> String {
    use std::fmt::Write;

    use coremap_core::topology_select;
    use coremap_core::ObservationSet;
    use coremap_mesh::{FloorplanBuilder, Topology};

    let ring = Topology::builtin("ring-28").expect("builtin ring topology");
    let plan = FloorplanBuilder::from_topology(ring.clone())
        .build()
        .expect("ring floorplan builds");
    let obs = ObservationSet::synthetic(&plan);
    let zoo: Vec<Topology> = Topology::builtins().iter().map(|&t| t.clone()).collect();
    let sel = topology_select::select(&obs, &zoo, coremap_core::SolveOptions::default());

    let mut out = String::new();
    let _ = writeln!(out, "== Appendix: ring-discipline regression ==");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "hypothesis selection over the builtin zoo on a synthetic ring-28\n\
         trace ({} directed paths):",
        obs.paths.len()
    );
    for s in &sel.scores {
        match &s.eliminated_by {
            Some(why) => {
                let _ = writeln!(out, "  {:<20} eliminated: {why}", s.name);
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<20} fits (explains {:.0}% of paths)",
                    s.name,
                    s.explained * 100.0
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "winner: {}",
        sel.winner_name().unwrap_or("none (all eliminated)")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_sane() {
        let o = Options::default();
        assert!(o.workers >= 1);
        assert_eq!(o.bits, 2_000);
    }

    #[test]
    fn pick_pair_and_senders_on_recovered_map() {
        let fleet = CloudFleet::with_seed(7);
        let instance = fleet.instance(CpuModel::Platinum8124M, 0).unwrap();
        let mut machine = instance.boot();
        let map = CoreMapper::new().map(&mut machine).unwrap();
        let (tx, rx) = pick_pair_at(&map, Direction::Up, 1).expect("vertical pair");
        assert_eq!(map.hop_distance(tx, rx), 1);
        let senders = surrounding_senders(&map, rx, 4);
        assert_eq!(senders.len(), 4);
        assert!(senders.iter().all(|&s| s != rx));
    }

    #[test]
    fn map_fleet_returns_all_instances() {
        let fleet = CloudFleet::with_seed(3);
        let mapped = map_fleet(&fleet, CpuModel::Gold6354, 2, 2);
        assert_eq!(mapped.len(), 2);
        assert_eq!(mapped[0].0.index(), 0);
        assert_eq!(mapped[1].0.index(), 1);
    }

    #[test]
    fn metrics_sink_exports_campaign_counters() {
        let path = std::env::temp_dir().join("coremap-bench-metrics-sink-test.json");
        let path_str = path.to_str().expect("utf-8 temp path").to_owned();
        {
            let _sink = MetricsSink::new(&path_str);
            let fleet = CloudFleet::with_seed(3);
            let mapped = map_fleet(&fleet, CpuModel::Gold6354, 1, 1);
            assert_eq!(mapped.len(), 1);
        }
        let json = std::fs::read_to_string(&path).expect("sink wrote on drop");
        std::fs::remove_file(&path).ok();
        assert!(
            json.contains("\"schema\": \"coremap-metrics/v1\""),
            "{json}"
        );
        assert!(json.contains("\"core.eviction.samples\""), "{json}");
        assert!(json.contains("\"ilp.simplex.pivots\""), "{json}");
        assert!(json.contains("\"fleet.instances.ok\": 1"), "{json}");
    }
}
