//! **Sec. IV-A** — choice of stress workload.
//!
//! "Among the stress tests in stress-ng, we found the repeated branch
//! misses cause the most heat." This ablation transmits the same payload
//! with each stressor driving the hot half-bits and measures the resulting
//! error rates: hotter workloads widen the received swing and survive
//! higher bit rates.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{all_pairs_at, print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::Direction;
use coremap_thermal::power::StressorKind;
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");
    let (tx, rx) = all_pairs_at(&map, Direction::Up, 1)
        .into_iter()
        .next()
        .expect("vertical pair");

    let bits = opts.bits.min(800);
    let payload = random_bits(bits, opts.seed);
    let rates = [2.0, 4.0, 8.0];

    println!("== Sec. IV-A: stress workload choice ({bits} bits, vertical 1-hop) ==\n");
    let mut rows = Vec::new();
    for stressor in StressorKind::ALL {
        let mut cells = vec![format!(
            "stress-ng --{} ({}% power)",
            stressor.name(),
            (stressor.power_fraction() * 100.0) as u32
        )];
        for &rate in &rates {
            let mut sim = thermal_sim(&instance, opts.seed ^ rate as u64);
            let report = ChannelConfig::new(vec![tx], rx, rate)
                .with_stressor(stressor)
                .transfer(&mut sim, &payload);
            cells.push(format!("{:.3}", report.ber()));
        }
        rows.push(cells);
    }
    print_table(&["stressor", "2 bps", "4 bps", "8 bps"], &rows);
    println!(
        "\nPaper check: branch misses (the hottest workload) give the lowest\n\
         error rates; cooler stressors lose the received swing under the\n\
         1 C sensor quantization."
    );
}
