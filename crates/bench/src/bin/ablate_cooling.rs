//! **Extension** — channel strength vs cooling environment.
//!
//! The covert channel's signal is the lateral heat that escapes the
//! vertical tile-to-heatsink path. Stronger cooling (liquid coldplates)
//! steals that heat before it reaches the neighbour; weak passive cooling
//! amplifies it. A deployment-relevant defence knob the paper's
//! cloud-environment results implicitly fix.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{all_pairs_at, print_table, random_bits, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::Direction;
use coremap_thermal::power::ThermalNoise;
use coremap_thermal::{ChannelConfig, ThermalParams, ThermalSim};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");
    let (tx, rx) = all_pairs_at(&map, Direction::Up, 1)
        .into_iter()
        .next()
        .expect("vertical pair");

    let bits = opts.bits.min(800);
    let payload = random_bits(bits, opts.seed);
    let rates = [1.0, 2.0, 4.0, 8.0];
    let tiles = instance.floorplan().dim().tile_count();

    println!("== Extension: cooling environment vs channel BER ({bits} bits) ==\n");
    let mut rows = Vec::new();
    for (name, params) in [
        ("passive (fanless)", ThermalParams::passive()),
        ("air-cooled (baseline)", ThermalParams::air_cooled()),
        ("liquid-cooled", ThermalParams::liquid_cooled()),
    ] {
        let mut cells = vec![name.to_owned()];
        for &rate in &rates {
            let mut sim = ThermalSim::new(instance.floorplan().clone(), params, opts.seed)
                .with_noise(ThermalNoise::cloud(tiles));
            let report = ChannelConfig::new(vec![tx], rx, rate).transfer(&mut sim, &payload);
            cells.push(format!("{:.3}", report.ber()));
        }
        rows.push(cells);
    }
    print_table(&["cooling", "1 bps", "2 bps", "4 bps", "8 bps"], &rows);
    println!(
        "\nStronger vertical cooling drains the modulated heat before it\n\
         couples laterally: liquid cooling is an (expensive) physical defence,\n\
         passive edge boxes are the most exposed."
    );
}
