//! **Fig. 8a** — strengthening the channel with multiple synchronized
//! senders.
//!
//! Up to eight sender cores surrounding the receiver transmit the identical
//! waveform; the amplified thermal signal lowers the bit error rate at a
//! given rate (the paper reports 2% at 4 bps with four senders).

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, random_bits, surrounding_senders, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::OsCoreId;
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    // Receiver: the core with the most cores within 1 hop on the recovered
    // map (an interior tile), so eight surrounding senders exist.
    let receiver = (0..map.core_count() as u16)
        .map(OsCoreId::new)
        .max_by_key(|&r| {
            (0..map.core_count() as u16)
                .map(OsCoreId::new)
                .filter(|&c| c != r && map.hop_distance(c, r) <= 2)
                .count()
        })
        .expect("cores exist");

    let sender_counts = [1usize, 2, 4, 8];
    let rates = [1.0, 2.0, 4.0, 8.0];
    let payload = random_bits(opts.bits, opts.seed);

    println!(
        "== Fig. 8a: bit error probability with multiple senders ==\n\
         (receiver cpu{} at {}; {} payload bits)\n",
        receiver.index(),
        map.coord_of_core(receiver),
        payload.len()
    );
    let mut rows = Vec::new();
    for &n in &sender_counts {
        let senders = surrounding_senders(&map, receiver, n);
        let mut cells = vec![format!("x{n} senders")];
        for &rate in &rates {
            let mut sim = thermal_sim(&instance, opts.seed ^ (n as u64) << 8 ^ rate as u64);
            let report =
                ChannelConfig::new(senders.clone(), receiver, rate).transfer(&mut sim, &payload);
            cells.push(format!("{:.3}", report.ber()));
        }
        rows.push(cells);
    }
    print_table(
        &["configuration", "1 bps", "2 bps", "4 bps", "8 bps"],
        &rows,
    );
    println!(
        "\nPaper shape check: error decreases monotonically with sender count\n\
         at each rate (Fig. 8a reports 4 bps dropping to ~2% with 4 senders)."
    );
}
