//! **Sec. II-B** — choice of the monitored ring class.
//!
//! The paper monitors the BL (data) ring. The uncore also exposes AD
//! (request) and IV (invalidation) ring counters; this ablation maps the
//! same instance through each usable class and compares campaign size,
//! runtime and accuracy.
//!
//! The structural findings:
//! * **BL** (paper): the dirty-forward ping-pong gives clean directed
//!   paths between every ordered pair of *core* tiles; LLC-only tiles can
//!   only be sources.
//! * **AD**: read-miss streams give directed `core -> home` request paths
//!   — LLC-only tiles become observable *sinks* — but the core-to-core
//!   ping-pong is unusable (its request and snoop legs flow in opposite
//!   directions within one experiment), which is exactly why the paper's
//!   method rides the data ring.
//! * **IV**: invalidations only flow on shared-line upgrades; there is no
//!   controllable directed pattern, so no campaign exists.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use coremap_bench::{print_table, Options};
use coremap_core::{verify, CoreMapper, MapperConfig};
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_uncore::RingClass;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    let truth = instance.floorplan().clone();

    println!("== Sec. II-B ablation: which mesh ring to monitor ==\n");
    let mut rows = Vec::new();
    for (name, ring) in [
        ("BL (data, paper)", RingClass::Bl),
        ("AD (request)", RingClass::Ad),
    ] {
        let mut machine = instance.boot();
        let cfg = MapperConfig {
            ring,
            ..MapperConfig::default()
        };
        let start = Instant::now();
        let map = CoreMapper::with_config(cfg)
            .map(&mut machine)
            .expect("mapping succeeds");
        let elapsed = start.elapsed();
        let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
        rows.push(vec![
            name.to_owned(),
            format!("{:.4}", verify::pairwise_accuracy(&positions, &truth)),
            if verify::matches_relative(&map, &truth) {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
            format!("{}", machine.op_count()),
            format!("{elapsed:.2?}"),
        ]);
    }
    rows.push(vec![
        "IV (invalidation)".to_owned(),
        "-".into(),
        "no directed pattern".into(),
        "-".into(),
        "-".into(),
    ]);
    print_table(
        &[
            "monitored ring",
            "pairwise acc",
            "relative match",
            "machine ops",
            "time",
        ],
        &rows,
    );
    println!(
        "\nBoth usable rings recover the map in the simulator; the paper's BL\n\
         choice is what makes the ping-pong generator's single-directed-path\n\
         assumption hold, and on real silicon the data ring also carries the\n\
         full cache-line payload (64 B vs a header flit), giving far stronger\n\
         occupancy signal per transfer.\n"
    );
    // Ring the *interconnect*, not just ring the *counter class*: the
    // deterministic appendix pins the zoo's ring-discipline behavior.
    print!("{}", coremap_bench::ring_discipline_report());
}
