//! **Fig. 6** — inter-core thermal covert channel measurements.
//!
//! Reproduces the paper's example transmission: one sender modulates a
//! Manchester-encoded bit pattern, and receivers placed 1, 2 and 3 tile
//! hops away in the vertical direction record their (quantized) temperature
//! sensors. The 1-hop receiver decodes the payload; farther receivers see
//! dampened, unstable fluctuations.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::{Direction, OsCoreId};
use coremap_thermal::ChannelConfig;

/// Renders a trace as a unicode sparkline, downsampled to `width` columns.
fn sparkline(samples: &[f64], width: usize) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if samples.is_empty() {
        return String::new();
    }
    let lo = samples.iter().copied().fold(f64::MAX, f64::min);
    let hi = samples.iter().copied().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-9);
    let chunk = (samples.len() / width).max(1);
    samples
        .chunks(chunk)
        .map(|c| {
            let mean = c.iter().sum::<f64>() / c.len() as f64;
            let idx = (((mean - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    // Sender plus receivers 1/2/3 vertical hops away on the recovered map.
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let (sender, receivers) = cores
        .iter()
        .find_map(|&tx| {
            let txc = map.coord_of_core(tx);
            let rx: Vec<OsCoreId> = (1..=3)
                .filter_map(|hops| {
                    cores.iter().copied().find(|&r| {
                        let rc = map.coord_of_core(r);
                        rc.col == txc.col && rc.row.abs_diff(txc.row) == hops
                    })
                })
                .collect();
            (rx.len() == 3).then_some((tx, rx))
        })
        .expect("a column with 1/2/3-hop receivers exists");
    let _ = Direction::Up;

    // The paper's example pattern (Fig. 6 sends 1 0 1 0 0 0 0 1 1).
    let payload = vec![true, false, true, false, false, false, false, true, true];
    let rate = 1.0;

    println!("== Fig. 6: thermal covert channel example transmission ==\n");
    println!(
        "sender cpu{} at {}, bit rate {rate} bps, Manchester + preamble",
        sender.index(),
        map.coord_of_core(sender)
    );
    println!(
        "sent data: {}\n",
        payload
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>()
    );

    for (hops, &rx) in receivers.iter().enumerate() {
        let mut sim = thermal_sim(&instance, opts.seed + hops as u64);
        let report = ChannelConfig::new(vec![sender], rx, rate).transfer(&mut sim, &payload);
        let lo = report.samples.iter().copied().fold(f64::MAX, f64::min);
        let hi = report.samples.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "{}-hop sink cpu{} at {} [{:.0}..{:.0} C]:",
            hops + 1,
            rx.index(),
            map.coord_of_core(rx),
            lo,
            hi
        );
        println!("  temp   {}", sparkline(&report.samples, 72));
        println!(
            "  decoded {}   ({} bit errors)",
            report
                .decoded
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>(),
            report.errors
        );
        println!();
    }
    println!(
        "Expected shape (paper Fig. 6): the 1-hop sink decodes the payload\n\
         with dampened fluctuations; 2- and 3-hop sinks become unstable."
    );
}
