//! **Sec. I motivation** — planning a mesh-contention side channel from the
//! recovered map.
//!
//! The paper motivates core localization with "location-based attacks,
//! such as traffic contention side channel [Paccagnella et al.]": an
//! attacker who knows the physical map can place two of its own cores so
//! their traffic shares mesh links with a victim flow and observe the
//! interference. This planner quantifies the advantage: for a victim flow
//! chosen on the die, compare the link overlap achieved by map-guided
//! attacker placement against blind (consecutive-OS-ID) placement.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::route::{route, shared_links};
use coremap_mesh::OsCoreId;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");
    let dim = map.dim();
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();

    println!("== Sec. I: contention-attack placement from the recovered map ==\n");
    let mut rows = Vec::new();
    // A few victim flows spread across the die.
    for (vi, &(va, vb)) in [(0u16, 23u16), (5, 18), (11, 2)].iter().enumerate() {
        let victim = route(
            map.coord_of_core(OsCoreId::new(va)),
            map.coord_of_core(OsCoreId::new(vb)),
            dim,
        );

        // Map-guided: search all attacker pairs for maximum link overlap.
        let mut best = 0usize;
        let mut best_pair = (cores[0], cores[1]);
        for &a in &cores {
            for &b in &cores {
                if a == b || a.index() as u16 == va || b.index() as u16 == vb {
                    continue;
                }
                let flow = route(map.coord_of_core(a), map.coord_of_core(b), dim);
                let overlap = shared_links(&victim, &flow);
                if overlap > best {
                    best = overlap;
                    best_pair = (a, b);
                }
            }
        }

        // Blind: consecutive OS IDs far from the victim's IDs.
        let blind_a = OsCoreId::new((va + 7) % map.core_count() as u16);
        let blind_b = OsCoreId::new((va + 8) % map.core_count() as u16);
        let blind_flow = route(map.coord_of_core(blind_a), map.coord_of_core(blind_b), dim);
        let blind = shared_links(&victim, &blind_flow);

        rows.push(vec![
            format!(
                "victim #{vi}: cpu{va}->cpu{vb} ({} links)",
                victim.links().len()
            ),
            format!(
                "cpu{}->cpu{} sharing {best} links",
                best_pair.0.index(),
                best_pair.1.index()
            ),
            format!("{blind} links"),
        ]);
    }
    print_table(
        &["victim flow", "map-guided attacker flow", "blind overlap"],
        &rows,
    );
    println!(
        "\nWith the physical map, the attacker always finds a flow sharing\n\
         most of the victim's path; blind placement usually shares none —\n\
         the enabling step for ring/mesh contention side channels that the\n\
         paper's introduction highlights."
    );
}
