//! **Sec. V-D** — core location mapping verification through thermal
//! transmission between all core pairs.
//!
//! For every ordered core pair, a short transmission measures the BER; if
//! the recovered map is correct, each core's lowest-error partner is one of
//! its map-identified 1-hop neighbours (except cores without a vertical
//! neighbour, which the paper notes as the expected exceptions).

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::OsCoreId;
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let payload = random_bits(opts.bits.min(64), opts.seed);
    let rate = 2.0;

    println!(
        "== Sec. V-D: map verification via all-pairs thermal BER ==\n\
         ({} cores, {} bits per pair at {rate} bps; this sweeps {} transfers)\n",
        cores.len(),
        payload.len(),
        cores.len() * (cores.len() - 1)
    );

    let mut confirmations = 0usize;
    let mut exceptions = Vec::new();
    let mut rows = Vec::new();
    for &rx in &cores {
        // Measure BER from every other core to rx.
        let mut best: Option<(f64, OsCoreId)> = None;
        for &tx in &cores {
            if tx == rx {
                continue;
            }
            let mut sim = thermal_sim(
                &instance,
                opts.seed ^ (tx.index() as u64) << 8 ^ rx.index() as u64,
            );
            let report = ChannelConfig::new(vec![tx], rx, rate).transfer(&mut sim, &payload);
            let ber = report.ber();
            if best.is_none_or(|(b, _)| ber < b) {
                best = Some((ber, tx));
            }
        }
        let (best_ber, best_tx) = best.expect("at least one sender");
        let adjacent = map.hop_distance(best_tx, rx) == 1;
        let has_vertical_neighbor = !map.vertical_neighbor_cores(rx).is_empty();
        if adjacent {
            confirmations += 1;
        } else if !has_vertical_neighbor {
            exceptions.push(rx);
        }
        rows.push(vec![
            format!("cpu{}", rx.index()),
            format!("cpu{}", best_tx.index()),
            format!("{best_ber:.3}"),
            map.hop_distance(best_tx, rx).to_string(),
            if adjacent { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    print_table(
        &[
            "receiver",
            "best sender",
            "BER",
            "map hops",
            "map-adjacent?",
        ],
        &rows,
    );
    println!(
        "\n{confirmations}/{} receivers confirm the map (best thermal partner is a\n\
         1-hop neighbour); {} exceptions without a vertical neighbour (the\n\
         paper observes the same exception class, e.g. CHA 1 in its Fig. 4a).",
        rows.len(),
        exceptions.len()
    );
}
