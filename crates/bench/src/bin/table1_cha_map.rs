//! **Table I** — OS core ID ↔ CHA ID mapping results.
//!
//! Runs step 1 of the methodology (slice eviction sets + zero-traffic
//! co-location discovery) on the whole fleet and groups the instances by
//! their measured `core -> CHA` vector, reproducing the paper's Table I:
//! one uniform mapping each for the 8124M and 8175M (the stride-4 grouped
//! pattern), and seven variants for the 8259CL driven by which CHA IDs the
//! LLC-only tiles occupy.

use std::collections::BTreeMap;

use coremap_bench::{cha_map_fleet, print_table, Options};
use coremap_fleet::{CloudFleet, CpuModel};

/// The paper's expected mapping rows, for the side-by-side check.
fn paper_rows(model: CpuModel) -> Vec<(Vec<u16>, usize)> {
    match model {
        CpuModel::Platinum8124M => vec![(
            vec![0, 4, 8, 12, 16, 2, 6, 10, 14, 1, 5, 9, 13, 17, 3, 7, 11, 15],
            100,
        )],
        CpuModel::Platinum8175M => vec![(
            vec![
                0, 4, 8, 12, 16, 20, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15, 19,
                23,
            ],
            100,
        )],
        CpuModel::Platinum8259CL => vec![
            (
                vec![
                    0, 4, 8, 12, 16, 20, 24, 2, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 7, 11, 15,
                    19, 23,
                ],
                62,
            ),
            (
                vec![
                    0, 4, 8, 12, 16, 20, 24, 6, 10, 14, 18, 22, 1, 5, 9, 13, 17, 21, 3, 7, 11, 15,
                    19, 23,
                ],
                33,
            ),
            // Five singleton cases (LLC-only pairs (5,25), (3,23), (16,2),
            // (24,3), (16,3)); counts only, vectors derived by the same
            // stride-4 rule.
        ],
        CpuModel::Gold6354 => Vec::new(),
    }
}

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);

    println!("== Table I: OS core ID <-> CHA ID mapping results ==\n");
    for model in [
        CpuModel::Platinum8124M,
        CpuModel::Platinum8175M,
        CpuModel::Platinum8259CL,
    ] {
        let count = opts.instances_for(model);
        let mapped = cha_map_fleet(&fleet, model, count, opts.workers);

        let mut groups: BTreeMap<Vec<u16>, usize> = BTreeMap::new();
        for (_, mapping) in &mapped {
            let key: Vec<u16> = mapping
                .core_to_cha
                .iter()
                .map(|c| c.index() as u16)
                .collect();
            *groups.entry(key).or_default() += 1;
        }
        let mut rows: Vec<(Vec<u16>, usize)> = groups.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        println!("-- {model} ({count} instances) --");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(mapping, n)| {
                vec![
                    n.to_string(),
                    mapping
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                ]
            })
            .collect();
        print_table(&["# insts", "CHA IDs in OS core order"], &table);

        // Compare against the paper's published rows (scaled populations
        // only line up exactly at --paper scale).
        for (expected, paper_count) in paper_rows(model) {
            let measured = rows.iter().find(|(m, _)| *m == expected);
            match measured {
                Some((_, n)) => println!(
                    "   paper row ({paper_count} insts) reproduced with {n} insts{}",
                    if count == model.paper_population() && *n == paper_count {
                        " [exact]"
                    } else {
                        ""
                    }
                ),
                None => println!("   WARNING: paper row ({paper_count} insts) not observed"),
            }
        }
        println!();
    }
}
