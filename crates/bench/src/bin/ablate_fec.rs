//! **Extension** — forward error correction on marginal channels.
//!
//! The paper reports raw error probabilities "without any additional error
//! correction scheme" (Sec. V). This extension measures how much coding
//! buys: a 2-hop vertical channel (unusable raw, Fig. 7) and a fast 1-hop
//! channel, each with repetition and Hamming(7,4) codes, reporting post-FEC
//! error rate and goodput.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{all_pairs_at, print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::Direction;
use coremap_thermal::fec::{coded_transfer, Code, Hamming74, Interleaved, Repetition};
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    let bits = opts.bits.min(600);
    let payload = random_bits(bits, opts.seed);
    let cases: [(&str, usize, f64); 2] = [("vertical 1-hop", 1, 8.0), ("vertical 2-hop", 2, 2.0)];

    println!("== Extension: FEC on marginal thermal channels ({bits} payload bits) ==\n");
    let mut rows = Vec::new();
    for (label, hops, rate) in cases {
        let (tx, rx) = all_pairs_at(&map, Direction::Up, hops)
            .into_iter()
            .next()
            .expect("pair exists");
        let channel = ChannelConfig::new(vec![tx], rx, rate);

        // Raw (no code).
        let mut sim = thermal_sim(&instance, opts.seed);
        let raw = channel.transfer(&mut sim, &payload);
        rows.push(vec![
            label.to_owned(),
            format!("{rate}"),
            "none".into(),
            format!("{:.3}", raw.ber()),
            format!("{:.2}", raw.goodput_bps()),
        ]);

        let rep = Interleaved::new(Repetition::new(3), 24);
        let mut sim = thermal_sim(&instance, opts.seed + 1);
        let (ber, goodput) = coded_transfer(&rep, &channel, &mut sim, &payload);
        rows.push(vec![
            label.to_owned(),
            format!("{rate}"),
            "rep x3 + ilv".into(),
            format!("{ber:.3}"),
            format!("{goodput:.2}"),
        ]);

        let ham = Interleaved::new(Hamming74::new(), 24);
        let mut sim = thermal_sim(&instance, opts.seed + 2);
        let (ber, goodput) = coded_transfer(&ham, &channel, &mut sim, &payload);
        rows.push(vec![
            label.to_owned(),
            format!("{rate}"),
            format!("Hamming(7,4)+ilv r={:.2}", ham.rate()),
            format!("{ber:.3}"),
            format!("{goodput:.2}"),
        ]);
    }
    print_table(
        &["channel", "raw bps", "code", "post-FEC BER", "goodput bps"],
        &rows,
    );
    println!(
        "\nCoding rescues channels the raw evaluation writes off: the 2-hop\n\
         pair drops from tens of percent raw BER toward usability, at a\n\
         proportional goodput cost."
    );
}
