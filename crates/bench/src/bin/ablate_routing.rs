//! **Sec. II assumption** — sensitivity to the routing discipline.
//!
//! The method's ILP constraints encode the Xeon's documented
//! vertical-first dimension-order routing ("a packet always travels through
//! the vertical channels first", Sec. II). This study boots a hypothetical
//! machine that routes horizontally first and runs the unmodified mapper
//! against it: the mismatched constraints must fail *loudly* (infeasible
//! ILP or ambiguity error) or produce a measurably wrong map — never a
//! silently plausible one.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, Options};
use coremap_core::{verify, CoreMapper};
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::RoutingDiscipline;
use coremap_uncore::{MachineConfig, XeonMachine};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8175M, 0)
        .expect("instance 0 exists");
    let truth = instance.floorplan().clone();

    println!("== Sensitivity: routing-discipline assumption ==\n");
    let mut rows = Vec::new();
    for (name, routing) in [
        (
            "vertical-first (real Xeon)",
            RoutingDiscipline::VerticalFirst,
        ),
        (
            "horizontal-first (hypothetical)",
            RoutingDiscipline::HorizontalFirst,
        ),
    ] {
        let mut machine = XeonMachine::new(
            truth.clone(),
            MachineConfig {
                routing,
                ..MachineConfig::default()
            },
        );
        let outcome = match CoreMapper::new().map(&mut machine) {
            Ok(map) => {
                let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
                format!(
                    "map produced, pairwise acc {:.3}, relative match {}",
                    verify::pairwise_accuracy(&positions, &truth),
                    verify::matches_relative(&map, &truth)
                )
            }
            Err(e) => format!("failed loudly: {e}"),
        };
        rows.push(vec![name.to_owned(), outcome]);
    }
    print_table(&["machine routing", "unmodified mapper outcome"], &rows);
    println!(
        "\nThe method is sound only under its routing assumption; on a
horizontal-first mesh the alignment/bounding-box constraints contradict
each other and the pipeline reports the inconsistency instead of
emitting a wrong map."
    );
}
