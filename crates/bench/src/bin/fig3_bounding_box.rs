//! **Fig. 3** — bounding-box constraints of the ILP.
//!
//! Builds the Sec. II-C model for one small observation set and dumps the
//! generated constraints, making the vertical bounding boxes (Eq. 1), the
//! NE/NW-guarded horizontal boxes (Eqs. 2–3) and the indicator machinery
//! inspectable — the executable version of the paper's Fig. 3.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::Options;
use coremap_core::ilp_model::reconstruct;
use coremap_core::traffic::ObservationSet;
use coremap_fleet::render::render_floorplan;
use coremap_mesh::{DieTemplate, FloorplanBuilder, TileCoord};

fn main() {
    let _ = Options::from_args();
    // A compact 3x2 block: small enough that the whole constraint system is
    // readable.
    let t = DieTemplate::SkylakeXcc;
    let keep: Vec<TileCoord> = (2..5)
        .flat_map(|r| (0..2).map(move |c| TileCoord::new(r, c)))
        .collect();
    let disable: Vec<TileCoord> = t
        .core_capable_positions()
        .iter()
        .copied()
        .filter(|p| !keep.contains(p))
        .collect();
    let plan = FloorplanBuilder::new(t)
        .disable_all(disable)
        .build()
        .expect("plan builds");

    println!("== Fig. 3: the reconstruction ILP on a small example ==\n");
    println!("{}", render_floorplan(&plan));

    let obs = ObservationSet::synthetic(&plan);
    println!(
        "{} path observations over {} tiles\n",
        obs.paths.len(),
        obs.n_cha
    );
    // Show a couple of representative observations.
    for p in obs.paths.iter().take(4) {
        println!(
            "path CHA{} -> CHA{}: vertical observers {:?}, horizontal observers {:?}",
            p.source.index(),
            p.sink.index(),
            p.vertical
                .iter()
                .map(|(c, d)| format!("CHA{}:{d:?}", c.index()))
                .collect::<Vec<_>>(),
            p.horizontal.iter().map(|c| c.index()).collect::<Vec<_>>()
        );
    }

    let rec = reconstruct(&obs, plan.dim()).expect("solvable");
    println!("\nrecovered positions (per CHA):");
    for (i, pos) in rec.positions.iter().enumerate() {
        println!("  CHA{i} -> {pos}");
    }
    println!(
        "\nILP solved in {} branch-and-bound nodes / {} simplex pivots;\n\
         objective (tightest-map weight) {}",
        rec.stats.nodes, rec.stats.lp_iterations, rec.objective
    );
    println!(
        "\nConstraint families instantiated (Sec. II-C): alignment classes\n\
         (vertical observers share the source column, horizontal observers\n\
         the sink row), vertical bounding boxes with truthful up/down\n\
         direction, horizontal boxes guarded by NE/NW nullifier binaries\n\
         (one direction enforced, the mirror orientation anchored WLOG),\n\
         one-hot position encodings and row/column occupancy indicators\n\
         whose 2^index weights make the solver prefer the tightest map."
    );
}
