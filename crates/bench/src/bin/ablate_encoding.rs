//! **Ablation** — Manchester vs. NRZ encoding.
//!
//! The paper adopts Manchester encoding "to minimize the thermal bias
//! caused by a monotonic bit pattern" (Sec. IV-A). This ablation transmits
//! both a balanced random payload and a strongly biased one with each
//! encoding, showing why the unbalanced NRZ channel collapses under the
//! slow thermal drift while Manchester does not.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{pick_pair_at, print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::Direction;
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");
    let (tx, rx) = pick_pair_at(&map, Direction::Up, 1).expect("vertical 1-hop pair");

    let bits = opts.bits.min(1_000);
    let random = random_bits(bits, opts.seed);
    // A biased payload: long runs of ones (90%), the worst case for an
    // unbalanced encoding.
    let biased: Vec<bool> = (0..bits).map(|i| i % 10 != 0).collect();

    println!("== Ablation: Manchester vs NRZ encoding ({bits} bits, 2 bps) ==\n");
    let mut rows = Vec::new();
    for (payload_name, payload) in [("random", &random), ("90% ones", &biased)] {
        for nrz in [false, true] {
            let mut sim = thermal_sim(&instance, opts.seed ^ nrz as u64);
            let mut cfg = ChannelConfig::new(vec![tx], rx, 2.0);
            cfg.nrz = nrz;
            let report = cfg.transfer(&mut sim, payload);
            rows.push(vec![
                if nrz { "NRZ" } else { "Manchester" }.to_owned(),
                payload_name.to_owned(),
                format!("{:.3}", report.ber()),
            ]);
        }
    }
    print_table(&["encoding", "payload", "BER"], &rows);
    println!(
        "\nManchester keeps a 50% duty cycle for any payload, so the receiver\n\
         compares two half-bits at the same drift level; NRZ loses its\n\
         threshold under biased payloads."
    );
}
