//! **Robustness** — mapping accuracy vs. injected fault rate.
//!
//! Sweeps a [`FaultPlan`] from fault-free to 8× the reference fault rate
//! and maps the same die twice per point: once with the pre-hardening
//! pipeline ([`RobustnessConfig::off`]) and once with the fault-tolerant
//! profile ([`RobustnessConfig::hardened`]). The sweep quantifies what the
//! hardening layer buys: the baseline pipeline dies on the first injected
//! fault, the hardened one degrades gracefully (exact → relative →
//! partial).
//!
//! Writes a machine-readable report (`coremap-bench-robustness/v1`) to
//! `results/BENCH_robustness.json` (override with `--out`); the CI
//! robustness smoke job archives it as an artifact.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::print_table;
use coremap_core::backend::{FaultPlan, FaultyBackend};
use coremap_core::{verify, CoreMapper, MapFidelity, MapperConfig, RobustnessConfig};
use coremap_mesh::{DieTemplate, FloorplanBuilder};
use coremap_uncore::{MachineConfig, XeonMachine};
use serde::Serialize;

/// Reference fault rates (the regression gate of the hardening layer):
/// one MSR failure per ~10k accesses, one dropped counter read per 1k,
/// ±2 events of jitter.
const BASE_MSR_FAIL: f64 = 1e-4;
const BASE_COUNTER_DROP: f64 = 1e-3;
const BASE_JITTER: u64 = 2;

/// Fault-rate multipliers swept over the base plan.
const SCALES: [f64; 6] = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    trials: usize,
    seed: u64,
    base_plan: BasePlan,
    sweep: Vec<SweepPoint>,
}

#[derive(Debug, Serialize)]
struct BasePlan {
    msr_fail_prob: f64,
    counter_drop_prob: f64,
    counter_jitter: u64,
}

#[derive(Debug, Serialize)]
struct SweepPoint {
    scale: f64,
    msr_fail_prob: f64,
    counter_drop_prob: f64,
    counter_jitter: u64,
    baseline: ArmStats,
    hardened: ArmStats,
}

#[derive(Debug, Default, Serialize)]
struct ArmStats {
    succeeded: usize,
    relative_correct: usize,
    exact_fidelity: usize,
    mean_accuracy: f64,
    mean_machine_ops: f64,
    mean_injected_faults: f64,
}

struct Args {
    trials: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        trials: 3,
        seed: 2022,
        out: "results/BENCH_robustness.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires an argument"))
        };
        match flag.as_str() {
            "--trials" => a.trials = value("--trials").parse().expect("--trials: number"),
            "--seed" => a.seed = value("--seed").parse().expect("--seed: number"),
            "--out" => a.out = value("--out"),
            other => panic!("unknown argument {other}; supported: --trials N --seed N --out FILE"),
        }
    }
    assert!(a.trials >= 1, "--trials must be at least 1");
    a
}

fn run_arm(robustness: RobustnessConfig, plan: &FaultPlan, stats: &mut ArmStats) {
    let floorplan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("template floorplan");
    let truth = floorplan.clone();
    let machine = XeonMachine::new(floorplan, MachineConfig::default());
    let mut faulty = FaultyBackend::new(machine, plan.clone());
    let mapper = CoreMapper::with_config(MapperConfig {
        robustness,
        ..MapperConfig::default()
    });
    let result = mapper.map_with_diagnostics(&mut faulty);
    stats.mean_injected_faults += faulty.injected_faults() as f64;
    if let Ok((map, diag)) = result {
        stats.succeeded += 1;
        stats.mean_machine_ops += diag.machine_ops as f64;
        if diag.quality.fidelity == MapFidelity::Exact {
            stats.exact_fidelity += 1;
        }
        if verify::matches_relative(&map, &truth) {
            stats.relative_correct += 1;
        }
        let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
        stats.mean_accuracy += verify::pairwise_accuracy(&positions, &truth);
    }
}

fn finish(stats: &mut ArmStats, trials: usize) {
    stats.mean_injected_faults /= trials as f64;
    if stats.succeeded > 0 {
        stats.mean_machine_ops /= stats.succeeded as f64;
        stats.mean_accuracy /= stats.succeeded as f64;
    }
}

fn main() {
    let args = parse_args();
    println!("== Robustness: map accuracy vs injected fault rate ==\n");

    let mut sweep = Vec::new();
    let mut rows = Vec::new();
    for scale in SCALES {
        let plan_at = |seed: u64| {
            FaultPlan::none(seed)
                .with_msr_fail_prob(BASE_MSR_FAIL * scale)
                .with_counter_drop_prob(BASE_COUNTER_DROP * scale)
                .with_counter_jitter((BASE_JITTER as f64 * scale).round() as u64)
        };
        let mut baseline = ArmStats::default();
        let mut hardened = ArmStats::default();
        for trial in 0..args.trials {
            let plan = plan_at(args.seed.wrapping_add(trial as u64));
            run_arm(RobustnessConfig::off(), &plan, &mut baseline);
            run_arm(RobustnessConfig::hardened(), &plan, &mut hardened);
        }
        finish(&mut baseline, args.trials);
        finish(&mut hardened, args.trials);

        let shown = plan_at(args.seed);
        rows.push(vec![
            format!("{scale}x"),
            format!("{}/{}", baseline.succeeded, args.trials),
            format!("{}/{}", baseline.relative_correct, args.trials),
            format!("{}/{}", hardened.succeeded, args.trials),
            format!("{}/{}", hardened.relative_correct, args.trials),
            format!("{:.4}", hardened.mean_accuracy),
            format!("{:.1}", hardened.mean_injected_faults),
        ]);
        sweep.push(SweepPoint {
            scale,
            msr_fail_prob: shown.msr_fail_prob,
            counter_drop_prob: shown.counter_drop_prob,
            counter_jitter: shown.counter_jitter,
            baseline,
            hardened,
        });
    }

    print_table(
        &[
            "fault scale",
            "base ok",
            "base rel",
            "hard ok",
            "hard rel",
            "hard acc",
            "faults",
        ],
        &rows,
    );
    println!(
        "\nThe baseline (retry/resample/degradation off) aborts on the first\n\
         injected fault; the hardened profile keeps recovering the relative\n\
         map until faults corrupt a majority of observations."
    );

    let report = Report {
        schema: "coremap-bench-robustness/v1",
        trials: args.trials,
        seed: args.seed,
        base_plan: BasePlan {
            msr_fail_prob: BASE_MSR_FAIL,
            counter_drop_prob: BASE_COUNTER_DROP,
            counter_jitter: BASE_JITTER,
        },
        sweep,
    };
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("\nreport written: {}", args.out);
}
