//! **Fig. 1** — the core tile grid on a Xeon CPU die.
//!
//! Renders the Skylake/Cascade Lake XCC die template (28 core tiles, two
//! IMC tiles) and the Ice Lake template, with the per-tile channel legend
//! of the paper's figure.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::Options;
use coremap_fleet::render::render_floorplan;
use coremap_mesh::{DieTemplate, FloorplanBuilder};

fn main() {
    let _ = Options::from_args();
    println!("== Fig. 1: core tile grid on a Xeon CPU die ==\n");
    for template in [DieTemplate::SkylakeXcc, DieTemplate::IceLakeXcc] {
        let plan = FloorplanBuilder::new(template)
            .build()
            .expect("full die builds");
        println!(
            "{template:?}: {} grid, {} core-capable tiles, {} IMC tiles",
            template.dim(),
            template.core_capable_count(),
            template.imc_positions().len()
        );
        println!("{}", render_floorplan(&plan));
    }
    println!(
        "Each core tile couples a processor core with a slice of the shared\n\
         LLC behind a Cache-Home Agent (CHA); every tile is a mesh stop with\n\
         four ingress data channels (up / down / left / right) whose\n\
         occupancy the uncore PMON counts. Packets route vertically first,\n\
         then horizontally (dimension-order routing), and the tiles of every\n\
         odd column are flipped horizontally — which is why the observed\n\
         left/right channel labels carry no direction information."
    );
}
