//! Diagnostic: end-to-end mapping time per CPU model (not a paper figure).

use coremap_bench::map_fleet;
use coremap_fleet::{CloudFleet, CpuModel};
use std::time::Instant;

fn main() {
    let fleet = CloudFleet::with_seed(2022);
    for model in CpuModel::ALL {
        let t = Instant::now();
        let mapped = map_fleet(&fleet, model, 2, 1);
        println!(
            "{model}: {:?} for {} instances (serial)",
            t.elapsed(),
            mapped.len()
        );
    }
}
