//! Diagnostic: end-to-end mapping time per CPU model (not a paper figure).
//!
//! With `--metrics FILE` the run also exports the pipeline's deterministic
//! counters (eviction samples, CHA tests, simplex pivots, ...) in the same
//! `coremap-metrics/v1` JSON shape as `core-map fleet --metrics`.

use coremap_bench::{map_fleet, Options};
use coremap_fleet::{CloudFleet, CpuModel};
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let _metrics = opts.metrics_sink();
    let fleet = CloudFleet::with_seed(opts.seed);
    let count = opts.instances.unwrap_or(2);
    for model in CpuModel::ALL {
        let t = Instant::now();
        let mapped = map_fleet(&fleet, model, count.min(model.paper_population()), 1);
        println!(
            "{model}: {:?} for {} instances (serial)",
            t.elapsed(),
            mapped.len()
        );
    }
}
