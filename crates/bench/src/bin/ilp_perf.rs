//! **ILP solver performance** — the revised-simplex/warm-start/parallel
//! branch & bound against the legacy dense tableau.
//!
//! Solves the reference 28-core SkylakeXcc reconstruction instance
//! end-to-end under four engine configurations — dense cold tableau (the
//! pre-rewrite solver), sparse revised simplex solved cold at every node,
//! warm-started dual simplex, and warm + speculative parallel subtree
//! search — and reports per-configuration p50/p99 latency, node throughput
//! and warm-start hit rate, plus the speedups over the dense baseline.
//!
//! The reference workload is the paper's *literal* per-tile/per-path
//! formulation (Sec. II-C) over a stride-subsampled observation set: the
//! class-merged formulation plus the indicator-aware presolve fix the
//! placement almost entirely before the search starts (root-integral LP,
//! one node — see `--merged`), so the literal formulation is where the
//! branch & bound, warm starts and the sparse engine actually work.
//!
//! The run doubles as a regression gate: it asserts that all four
//! configurations return the identical placement byte-for-byte and that
//! the warm-started engine actually hits parent bases
//! (`ilp.bb.warm_start_hits > 0`). The CI `BENCH_ilp` smoke job runs it
//! with `--samples 3`.
//!
//! Writes a machine-readable report (`coremap-bench-ilp/v1`) to
//! `results/BENCH_ilp.json` (override with `--out`).

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Instant;

use coremap_bench::print_table;
use coremap_core::ilp_model::{reconstruct_full_with_bb, reconstruct_with_bb, Reconstruction};
use coremap_core::traffic::ObservationSet;
use coremap_ilp::{BbConfig, LpEngine};
use coremap_mesh::{DieTemplate, FloorplanBuilder};
use coremap_obs as obs;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    samples: usize,
    instance: InstanceInfo,
    configs: Vec<ConfigStats>,
    /// p50 speedup of each non-dense configuration over `dense_cold`.
    speedup_vs_dense: Vec<(String, f64)>,
    /// All configurations returned bit-identical placements and objectives.
    solutions_identical: bool,
}

#[derive(Debug, Serialize)]
struct InstanceInfo {
    template: String,
    formulation: &'static str,
    cores: usize,
    chas: usize,
    grid_rows: usize,
    grid_cols: usize,
    observation_stride: usize,
    observations: usize,
}

#[derive(Debug, Serialize)]
struct ConfigStats {
    name: String,
    engine: String,
    workers: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    nodes: u64,
    nodes_per_sec: f64,
    warm_start_hits: u64,
    warm_start_hit_rate: f64,
    pivots: u64,
    refactorizations: u64,
}

struct Args {
    samples: usize,
    stride: usize,
    merged: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        samples: 10,
        stride: 7,
        merged: false,
        out: "results/BENCH_ilp.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires an argument"))
        };
        match flag.as_str() {
            "--samples" => a.samples = value("--samples").parse().expect("--samples: number"),
            "--stride" => a.stride = value("--stride").parse().expect("--stride: number"),
            "--merged" => a.merged = true,
            "--out" => a.out = value("--out"),
            other => panic!(
                "unknown argument {other}; supported: --samples N --stride N --merged --out FILE"
            ),
        }
    }
    assert!(a.samples >= 1, "--samples must be at least 1");
    assert!(a.stride >= 1, "--stride must be at least 1");
    a
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Fingerprints a placement exactly (tile coordinates + objective bits).
fn fingerprint(rec: &Reconstruction) -> (Vec<(usize, usize)>, u64) {
    let coords = rec
        .positions
        .iter()
        .map(|p| (p.row, p.col))
        .collect::<Vec<_>>();
    (coords, rec.objective.to_bits())
}

fn main() {
    let args = parse_args();
    println!("== ILP engine matrix on the reference 28-core instance ==\n");

    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("template floorplan");
    // The complete synthetic observation set over-constrains the ILP so
    // hard its LP relaxation is integral at the root. The reference B&B
    // workload keeps every `stride`-th path — the observation-budget
    // regime of the paper's ablation — which leaves genuine ambiguity for
    // the search to resolve.
    let mut observations = ObservationSet::synthetic(&plan);
    if args.stride > 1 {
        let paths = std::mem::take(&mut observations.paths);
        observations.paths = paths.into_iter().step_by(args.stride).collect();
    }
    let dim = plan.dim();
    let solver = if args.merged {
        reconstruct_with_bb
    } else {
        reconstruct_full_with_bb
    };
    let instance = InstanceInfo {
        template: "SkylakeXcc".to_owned(),
        formulation: if args.merged {
            "class-merged"
        } else {
            "paper-literal"
        },
        cores: plan.core_count(),
        chas: plan.cha_count(),
        grid_rows: dim.rows,
        grid_cols: dim.cols,
        observation_stride: args.stride,
        observations: observations.paths.len(),
    };

    let matrix = [
        ("dense_cold", LpEngine::DenseTableau, 1usize),
        ("revised_cold", LpEngine::RevisedCold, 1),
        ("warm_serial", LpEngine::RevisedWarm, 1),
        ("warm_parallel4", LpEngine::RevisedWarm, 4),
    ];

    let mut configs = Vec::new();
    let mut reference: Option<(Vec<(usize, usize)>, u64)> = None;
    let mut solutions_identical = true;
    for (name, engine, workers) in matrix {
        let cfg = BbConfig {
            engine,
            workers,
            ..BbConfig::default()
        };
        // Warm-up solve, outside the timed window.
        let rec = solver(&observations, dim, &cfg).expect("solves");
        match &reference {
            None => reference = Some(fingerprint(&rec)),
            Some(r) => solutions_identical &= *r == fingerprint(&rec),
        }

        let reg = Arc::new(obs::Registry::new());
        let mut latencies_us = Vec::with_capacity(args.samples);
        let mut total_nodes = 0u64;
        {
            let _guard = obs::install(reg.clone());
            for _ in 0..args.samples {
                let start = Instant::now();
                let rec = solver(&observations, dim, &cfg).expect("solves");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                total_nodes += rec.stats.nodes as u64;
            }
        }
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        let total_us: f64 = latencies_us.iter().sum();
        let nodes = reg.counter_value("ilp.bb.nodes");
        let hits = reg.counter_value("ilp.bb.warm_start_hits");
        assert_eq!(
            nodes, total_nodes,
            "{name}: obs node counter must match SolveStats"
        );
        configs.push(ConfigStats {
            name: name.to_owned(),
            engine: format!("{engine:?}"),
            workers,
            p50_us: percentile(&latencies_us, 0.50),
            p99_us: percentile(&latencies_us, 0.99),
            mean_us: total_us / args.samples as f64,
            nodes,
            nodes_per_sec: nodes as f64 / (total_us / 1e6),
            warm_start_hits: hits,
            warm_start_hit_rate: if nodes > 0 {
                hits as f64 / nodes as f64
            } else {
                0.0
            },
            pivots: reg.counter_value("ilp.simplex.pivots"),
            refactorizations: reg.counter_value("ilp.simplex.refactorizations"),
        });
    }

    let dense_p50 = configs[0].p50_us;
    let speedup_vs_dense: Vec<(String, f64)> = configs[1..]
        .iter()
        .map(|c| (c.name.clone(), dense_p50 / c.p50_us))
        .collect();

    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|c| {
            let speedup = speedup_vs_dense
                .iter()
                .find(|(n, _)| *n == c.name)
                .map_or("1.00x".to_owned(), |(_, s)| format!("{s:.2}x"));
            vec![
                c.name.clone(),
                format!("{:.0}", c.p50_us),
                format!("{:.0}", c.p99_us),
                format!("{}", c.nodes),
                format!("{:.0}", c.nodes_per_sec),
                format!("{:.2}", c.warm_start_hit_rate),
                speedup,
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "p50 us",
            "p99 us",
            "nodes",
            "nodes/s",
            "warm hit rate",
            "vs dense",
        ],
        &rows,
    );

    // Regression gates: the rewrite's contract is byte-identical solutions
    // and a warm-start machinery that actually fires.
    assert!(
        solutions_identical,
        "engine configurations returned different placements"
    );
    let warm = configs
        .iter()
        .find(|c| c.name == "warm_serial")
        .expect("warm arm");
    assert!(
        warm.warm_start_hits > 0,
        "warm-started engine never hit a parent basis"
    );

    let report = Report {
        schema: "coremap-bench-ilp/v1",
        samples: args.samples,
        instance,
        configs,
        speedup_vs_dense,
        solutions_identical,
    };
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("\nreport written: {}", args.out);
}
