//! **Fig. 2** — a partially observed inter-tile traffic pattern.
//!
//! Reconstructs the paper's example: traffic between two tiles crosses a
//! run of *disabled* tiles whose PMONs are off, so the vertical leg of the
//! route is invisible and only the horizontal ingress at the sink is
//! observed — hence tile A and D's relative rows cannot be read off a
//! single path and must come from combining observations (the job of the
//! ILP).

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::Options;
use coremap_core::traffic::ObservationSet;
use coremap_fleet::render::render_floorplan;
use coremap_mesh::{ChaId, DieTemplate, FloorplanBuilder, TileCoord};

fn main() {
    let _ = Options::from_args();
    // A column of disabled tiles between two active ones, as in Fig. 2:
    // keep tiles at (0,1) [A-like] and (3,3) [D-like] plus helpers E,F in
    // another column; disable the tiles between them.
    let t = DieTemplate::SkylakeXcc;
    let keep = [
        TileCoord::new(0, 1), // A (source)
        TileCoord::new(3, 3), // D (sink)
        TileCoord::new(0, 4), // E (helper)
        TileCoord::new(3, 4), // F (helper)
    ];
    let disable: Vec<TileCoord> = t
        .core_capable_positions()
        .iter()
        .copied()
        .filter(|p| !keep.contains(p))
        .collect();
    let plan = FloorplanBuilder::new(t)
        .disable_all(disable)
        .build()
        .expect("plan builds");

    println!("== Fig. 2: partial observation through disabled tiles ==\n");
    println!("{}", render_floorplan(&plan));

    let obs = ObservationSet::synthetic(&plan);
    let label = |cha: ChaId| format!("CHA{} at {}", cha.index(), plan.coord_of_cha(cha));
    for p in &obs.paths {
        println!("path {} -> {}:", label(p.source), label(p.sink));
        if p.vertical.is_empty() && p.horizontal.len() == 1 {
            println!(
                "  only horizontal ingress at the sink observed — the vertical\n\
                 \x20 leg crossed disabled tiles invisibly (the Fig. 2 situation)"
            );
        } else {
            for &(k, d) in &p.vertical {
                println!("  vertical ingress ({d:?}) at {}", label(k));
            }
            for &k in &p.horizontal {
                println!("  horizontal ingress at {}", label(k));
            }
        }
    }
    println!(
        "\nThe A->D and D->A paths reveal only a column difference; the\n\
         helper-tile paths (E/F column) supply the row relations, exactly as\n\
         the paper's Fig. 2 narrative combines them."
    );
}
