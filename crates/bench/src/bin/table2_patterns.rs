//! **Table II** — observed core-location pattern statistics.
//!
//! Runs the *complete* three-step pipeline (eviction sets, CHA mapping,
//! all-pairs traffic observation, ILP reconstruction) on every fleet
//! instance, groups the recovered maps by canonical pattern, and reports
//! the top-4 frequencies plus the number of unique patterns — the paper's
//! Table II. Every recovered map is additionally verified against the
//! hidden ground truth (relative match, Sec. II-D semantics).

use coremap_bench::{map_fleet, print_table, Options};
use coremap_core::verify;
use coremap_fleet::stats::PatternStats;
use coremap_fleet::{CloudFleet, CpuModel};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);

    println!("== Table II: observed core location pattern statistics ==\n");
    let paper: [(CpuModel, [usize; 4], usize); 3] = [
        (CpuModel::Platinum8124M, [53, 18, 5, 5], 14),
        (CpuModel::Platinum8175M, [52, 7, 7, 6], 26),
        (CpuModel::Platinum8259CL, [19, 5, 4, 4], 53),
    ];

    let mut rows = Vec::new();
    for &(model, paper_top, paper_unique) in &paper {
        let count = opts.instances_for(model);
        eprintln!("mapping {count} instances of {model}...");
        let mapped = map_fleet(&fleet, model, count, opts.workers);

        let mut stats = PatternStats::new();
        let mut verified_rel = 0usize;
        let mut verified_exact = 0usize;
        let mut accuracy_sum = 0.0f64;
        for (instance, map) in &mapped {
            stats.record(map);
            let truth = instance.floorplan();
            if verify::matches_relative(map, truth) {
                verified_rel += 1;
            }
            if verify::matches_exactly(map, truth) {
                verified_exact += 1;
            }
            let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
            accuracy_sum += verify::pairwise_accuracy(&positions, truth);
        }

        let top = stats.top_counts(4);
        let fmt_top = |t: &[usize]| t.iter().map(usize::to_string).collect::<Vec<_>>().join("/");
        rows.push(vec![
            model.to_string(),
            count.to_string(),
            fmt_top(&top),
            fmt_top(&paper_top),
            stats.unique_patterns().to_string(),
            paper_unique.to_string(),
            format!("{verified_rel}/{count}"),
            format!("{verified_exact}/{count}"),
            format!("{:.4}", accuracy_sum / count as f64),
        ]);
    }
    print_table(
        &[
            "CPU model",
            "insts",
            "top-4 (measured)",
            "top-4 (paper)",
            "unique",
            "paper",
            "rel-verified",
            "exact-verified",
            "pairwise acc",
        ],
        &rows,
    );
    println!(
        "\nNote: measured pattern statistics reflect the generated fleet; at\n\
         --paper scale (100 instances per model) they reproduce the paper's\n\
         counts exactly when every instance is mapped correctly."
    );
}
