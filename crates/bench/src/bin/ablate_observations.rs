//! **Ablation** — observation budget vs. reconstruction accuracy.
//!
//! The all-pairs traffic campaign is the expensive part of the mapping
//! pipeline. This ablation subsamples the ordered core pairs at increasing
//! strides and reports how reconstruction quality degrades, using the
//! pairwise relative-placement accuracy metric.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, Options};
use coremap_core::{verify, CoreMapper, MapperConfig};
use coremap_fleet::{CloudFleet, CpuModel};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8175M, 0)
        .expect("instance 0 exists");

    println!("== Ablation: traffic-observation budget vs map accuracy ==\n");
    let mut rows = Vec::new();
    for stride in [1usize, 4, 16, 32, 64, 128] {
        let mut machine = instance.boot();
        let cfg = MapperConfig {
            pair_stride: stride,
            ..MapperConfig::default()
        };
        let start = std::time::Instant::now();
        let result = CoreMapper::with_config(cfg).map(&mut machine);
        let elapsed = start.elapsed();
        match result {
            Ok(map) => {
                let truth = instance.floorplan();
                let positions: Vec<_> = truth.chas().map(|c| map.coord_of_cha(c)).collect();
                let acc = verify::pairwise_accuracy(&positions, truth);
                let rel = verify::matches_relative(&map, truth);
                rows.push(vec![
                    stride.to_string(),
                    format!("{:.0}%", 100.0 / stride as f64),
                    format!("{acc:.4}"),
                    if rel { "yes" } else { "no" }.to_owned(),
                    format!("{elapsed:.2?}"),
                ]);
            }
            Err(e) => rows.push(vec![
                stride.to_string(),
                format!("{:.0}%", 100.0 / stride as f64),
                "-".into(),
                format!("failed: {e}"),
                format!("{elapsed:.2?}"),
            ]),
        }
    }
    print_table(
        &[
            "pair stride",
            "pairs used",
            "pairwise acc",
            "relative match",
            "time",
        ],
        &rows,
    );
    println!(
        "\nAll-pairs observation (stride 1) recovers the exact relative map;\n\
         subsampling degrades gracefully until the ILP is under-constrained."
    );
}
