//! **Fig. 4** — the three most frequently observed core location mappings
//! on the Xeon Platinum 8259CL.
//!
//! Maps the 8259CL fleet, ranks the recovered patterns by frequency, and
//! renders the top three as OS-core/CHA grids (the paper's Fig. 4 format),
//! alongside the hidden ground-truth floorplan of a representative
//! instance for comparison.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{map_fleet, Options};
use coremap_fleet::render::render_floorplan;
use coremap_fleet::stats::PatternStats;
use coremap_fleet::{CloudFleet, CpuModel};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let model = CpuModel::Platinum8259CL;
    let count = opts.instances_for(model);
    eprintln!("mapping {count} instances of {model}...");
    let mapped = map_fleet(&fleet, model, count, opts.workers);

    let stats: PatternStats = mapped.iter().map(|(_, m)| m).collect();
    println!("== Fig. 4: most frequent core location mappings, {model} ==\n");
    for (rank, (pattern, n)) in stats.top_patterns(3).into_iter().enumerate() {
        let (instance, map) = mapped
            .iter()
            .find(|(_, m)| m.canonical_pattern() == pattern)
            .expect("pattern came from this set");
        println!("-- Pattern #{} ({n} of {count} instances) --", rank + 1);
        println!("recovered map (tiles: os_core/cha):");
        println!("{}", map.render());
        println!("ground truth of instance #{}:", instance.index());
        println!("{}", render_floorplan(instance.floorplan()));
    }
    println!(
        "The recovered CHA IDs are numbered in column-major order skipping\n\
         disabled tiles, as the paper observes in Sec. III-B (maps may be\n\
         horizontally mirrored: the east/west orientation is unobservable)."
    );
}
