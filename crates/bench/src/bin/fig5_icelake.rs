//! **Fig. 5** — core location mapping of the third-generation (Ice Lake)
//! Xeon Gold 6354.
//!
//! Maps the OCI Ice Lake fleet (10 instances in the paper) and renders one
//! recovered map on the 6x8 tile grid; also reports the number of unique
//! patterns found, matching Sec. III-B ("out of the evaluated 10 CPU
//! instances, we found 6 unique core mapping patterns").

use coremap_bench::{map_fleet, Options};
use coremap_core::verify;
use coremap_fleet::render::render_floorplan;
use coremap_fleet::stats::PatternStats;
use coremap_fleet::{CloudFleet, CpuModel};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let model = CpuModel::Gold6354;
    let count = opts.instances_for(model);
    eprintln!(
        "mapping {count} instances of {model} (Ice Lake reconstruction is the largest ILP)..."
    );
    let mapped = map_fleet(&fleet, model, count, opts.workers);

    println!("== Fig. 5: core location mapping example, {model} ==\n");
    let (instance, map) = &mapped[0];
    println!("recovered map of instance #0 (tiles: os_core/cha):");
    println!("{}", map.render());
    println!("ground truth:");
    println!("{}", render_floorplan(instance.floorplan()));

    let stats: PatternStats = mapped.iter().map(|(_, m)| m).collect();
    let verified = mapped
        .iter()
        .filter(|(i, m)| verify::matches_relative(m, i.floorplan()))
        .count();
    let mean_acc: f64 = mapped
        .iter()
        .map(|(i, m)| {
            let truth = i.floorplan();
            let positions: Vec<_> = truth.chas().map(|c| m.coord_of_cha(c)).collect();
            verify::pairwise_accuracy(&positions, truth)
        })
        .sum::<f64>()
        / count as f64;
    println!(
        "unique patterns across {count} instances: {} (paper: 6 of 10)",
        stats.unique_patterns()
    );
    println!(
        "ground-truth: {verified}/{count} exact relative matches, mean pairwise accuracy {mean_acc:.4}"
    );
    println!(
        "\nThe sparse Ice Lake die leaves a few LLC-only edge tiles without any\n\
         vertical observation (their whole column holds no other CHA), so their\n\
         row is genuinely unrecoverable — the Sec. II-D partial-observability\n\
         case; all observable relations are recovered (accuracy above).\n\
         Note the Ice Lake CHA numbering (row-major) differs from the Skylake\n\
         generation's column-major rule — the paper's motivation for an\n\
         autonomous method over per-generation pattern rules."
    );
}
