//! **Fig. 7** — bit transfer rate vs. bit error probability for different
//! sender-receiver hop counts.
//!
//! (a) horizontal 1-hop pairs, (b) vertical 1-hop pairs, plus vertical
//! 2-hop and 3-hop pairs, swept over bit rates. Sender/receiver cores are
//! chosen from the *recovered* map. Expected shape (paper): vertical 1-hop
//! beats horizontal 1-hop (tile aspect ratio); >=2 hops is unusable; error
//! rises with rate; ~1 bps on 1-hop is near error-free.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{all_pairs_at, print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::Direction;
use coremap_thermal::ChannelConfig;

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    let configs: [(&str, Direction, usize); 4] = [
        ("horizontal 1-hop (Fig. 7a)", Direction::Right, 1),
        ("vertical 1-hop (Fig. 7b)", Direction::Up, 1),
        ("vertical 2-hop", Direction::Up, 2),
        ("vertical 3-hop", Direction::Up, 3),
    ];
    let rates = [1.0, 2.0, 4.0, 8.0];
    let payload = random_bits(opts.bits, opts.seed);

    println!(
        "== Fig. 7: bit rate vs bit error probability by hop count ==\n\
         ({} payload bits per measurement; use --paper for 10 kbit)\n",
        payload.len()
    );
    let mut rows = Vec::new();
    for (label, axis, hops) in configs {
        let pairs = all_pairs_at(&map, axis, hops);
        if pairs.is_empty() {
            println!("(no {label} pair on this map)");
            continue;
        }
        // Average over up to three distinct pair placements to smooth out
        // local noise-burst variance (the paper's 10 kbit runs average
        // implicitly over a long measurement instead).
        let sample: Vec<_> = pairs
            .iter()
            .step_by((pairs.len() / 3).max(1))
            .take(3)
            .copied()
            .collect();
        let mut cells = vec![label.to_owned()];
        for &rate in &rates {
            let mut ber_sum = 0.0;
            for (i, &(tx, rx)) in sample.iter().enumerate() {
                let mut sim = thermal_sim(&instance, opts.seed ^ ((rate as u64) << 8) ^ i as u64);
                let report = ChannelConfig::new(vec![tx], rx, rate).transfer(&mut sim, &payload);
                ber_sum += report.ber();
            }
            cells.push(format!("{:.3}", ber_sum / sample.len() as f64));
        }
        rows.push(cells);
    }
    print_table(
        &["sender-receiver pair", "1 bps", "2 bps", "4 bps", "8 bps"],
        &rows,
    );
    println!(
        "\nPaper shape check: vertical 1-hop < horizontal 1-hop error at every\n\
         rate; 1 bps on 1-hop near zero; 2/3-hop pairs unusable (BER toward 0.5)."
    );
}
