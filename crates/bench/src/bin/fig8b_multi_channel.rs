//! **Fig. 8b** — aggregated throughput from multiple concurrent channels.
//!
//! Disjoint vertically-adjacent sender/receiver pairs, spread across the
//! die using the recovered map, transmit simultaneously. The paper's
//! headline: up to 15 bps aggregate at <1% BER with the x8 setting, 3x the
//! previously reported capacity.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{print_table, random_bits, thermal_sim, Options};
use coremap_core::CoreMapper;
use coremap_fleet::{CloudFleet, CpuModel};
use coremap_mesh::OsCoreId;
use coremap_thermal::{run_multi_channel, ChannelConfig};

/// Greedily selects up to `n` disjoint vertical 1-hop pairs, preferring
/// pairs far from already-selected ones (less mutual interference).
fn disjoint_vertical_pairs(map: &coremap_core::CoreMap, n: usize) -> Vec<(OsCoreId, OsCoreId)> {
    let cores: Vec<OsCoreId> = (0..map.core_count() as u16).map(OsCoreId::new).collect();
    let mut pairs: Vec<(OsCoreId, OsCoreId)> = Vec::new();
    let mut used: Vec<OsCoreId> = Vec::new();
    // Candidate pairs sorted by isolation from previous picks each round.
    while pairs.len() < n {
        let mut best: Option<(usize, (OsCoreId, OsCoreId))> = None;
        for &tx in &cores {
            for &rx in &cores {
                if tx == rx || used.contains(&tx) || used.contains(&rx) {
                    continue;
                }
                let a = map.coord_of_core(tx);
                let b = map.coord_of_core(rx);
                if a.col != b.col || a.row.abs_diff(b.row) != 1 {
                    continue;
                }
                let isolation = used
                    .iter()
                    .map(|&u| map.coord_of_core(u).hop_distance(a))
                    .min()
                    .unwrap_or(usize::MAX);
                if best.as_ref().is_none_or(|&(s, _)| isolation > s) {
                    best = Some((isolation, (tx, rx)));
                }
            }
        }
        match best {
            Some((_, (tx, rx))) => {
                used.extend([tx, rx]);
                pairs.push((tx, rx));
            }
            None => break,
        }
    }
    pairs
}

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);
    let instance = fleet
        .instance(CpuModel::Platinum8259CL, 0)
        .expect("instance 0 exists");
    eprintln!("mapping instance (root phase)...");
    let mut machine = instance.boot();
    let map = CoreMapper::new()
        .map(&mut machine)
        .expect("mapping succeeds");

    let channel_counts = [1usize, 2, 4, 8];
    let rates = [0.5, 1.0, 2.0, 5.0];
    let bits = opts.bits.min(2_000);

    println!(
        "== Fig. 8b: aggregated throughput of concurrent channels ==\n\
         ({bits} payload bits per channel per measurement)\n"
    );
    let mut rows = Vec::new();
    let mut best_reliable = 0.0f64;
    for &nch in &channel_counts {
        let pairs = disjoint_vertical_pairs(&map, nch);
        if pairs.len() < nch {
            println!("(only {} disjoint vertical pairs available)", pairs.len());
        }
        for &rate in &rates {
            let channels: Vec<ChannelConfig> = pairs
                .iter()
                .map(|&(tx, rx)| ChannelConfig::new(vec![tx], rx, rate))
                .collect();
            let payloads: Vec<Vec<bool>> = (0..channels.len())
                .map(|i| random_bits(bits, opts.seed + i as u64))
                .collect();
            let mut sim = thermal_sim(&instance, opts.seed ^ (nch as u64) << 16 ^ rate as u64);
            let report = run_multi_channel(&mut sim, &channels, &payloads);
            let agg_rate = report.aggregate_rate_bps();
            let agg_ber = report.aggregate_ber();
            if agg_ber < 0.01 {
                best_reliable = best_reliable.max(agg_rate);
            }
            rows.push(vec![
                format!("x{}", channels.len()),
                format!("{rate}"),
                format!("{agg_rate:.1}"),
                format!("{agg_ber:.4}"),
            ]);
        }
    }
    print_table(
        &["channels", "per-ch bps", "aggregate bps", "aggregate BER"],
        &rows,
    );
    println!(
        "\nBest aggregate throughput at <1% BER: {best_reliable:.1} bps\n\
         (paper: 15 bps with the x8 setting, 3x the 5 bps single-channel\n\
         capacity of prior work [Bartolini et al.])."
    );
}
