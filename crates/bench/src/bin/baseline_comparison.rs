//! **Sec. VI** — comparison against the related-work baselines.
//!
//! The paper positions its autonomous method against two alternatives:
//! McCalpin's pattern generalization (works only for models whose patterns
//! were already catalogued) and Horro et al.'s latency-based mapping (two
//! DRAM controllers are not enough anchors on Xeon). This experiment
//! quantifies both claims: train the pattern dictionary on half of each
//! fleet, predict the other half, and run the latency mapper on fresh
//! instances — against the autonomous pipeline's accuracy.

// Tool code: aborting on a broken invariant is acceptable here (see audit policy);
// panic-discipline applies to the library crates.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_bench::{map_fleet, print_table, Options};
use coremap_core::verify;
use coremap_fleet::baseline::{prediction_accuracy, LatencyMapper, PatternDictionary};
use coremap_fleet::{CloudFleet, CpuModel};

fn main() {
    let opts = Options::from_args();
    let fleet = CloudFleet::with_seed(opts.seed);

    println!("== Sec. VI: autonomous method vs related-work baselines ==\n");
    let mut rows = Vec::new();
    for model in CpuModel::ALL {
        let count = opts.instances_for(model).max(4);
        eprintln!("mapping {count} instances of {model}...");
        let mapped = map_fleet(&fleet, model, count, opts.workers);

        // Autonomous pipeline accuracy (against hidden truth).
        let auto_acc: f64 = mapped
            .iter()
            .map(|(i, m)| {
                let truth = i.floorplan();
                let positions: Vec<_> = truth.chas().map(|c| m.coord_of_cha(c)).collect();
                verify::pairwise_accuracy(&positions, truth)
            })
            .sum::<f64>()
            / count as f64;

        // McCalpin-style dictionary: train on the first half, predict the
        // second half from its (measured) ID mapping alone.
        let split = count / 2;
        let mut dict = PatternDictionary::new();
        for (_, map) in &mapped[..split] {
            dict.train(map);
        }
        let mut dict_acc_sum = 0.0;
        let mut dict_misses = 0usize;
        for (_, map) in &mapped[split..] {
            let key: Vec<u16> = map.core_to_cha().iter().map(|c| c.index() as u16).collect();
            match dict.predict(&key) {
                Some(predicted) => dict_acc_sum += prediction_accuracy(predicted, map),
                None => dict_misses += 1,
            }
        }
        let tested = count - split;
        let dict_acc = if tested > dict_misses {
            dict_acc_sum / tested as f64
        } else {
            0.0
        };

        // Latency baseline on one fresh instance (deterministic).
        let mut machine = fleet.instance(model, 0).expect("instance 0").boot();
        let latency_acc = LatencyMapper::accuracy(&mut machine);

        rows.push(vec![
            model.to_string(),
            format!("{auto_acc:.3}"),
            format!("{dict_acc:.3}"),
            format!("{dict_misses}/{tested}"),
            format!("{latency_acc:.3}"),
        ]);
    }
    print_table(
        &[
            "CPU model",
            "autonomous acc",
            "dictionary acc",
            "dict misses",
            "latency acc",
        ],
        &rows,
    );
    println!(
        "\nPaper's Sec. VI claims, reproduced:\n\
         - pattern generalization cannot follow per-instance defect diversity\n\
           (dictionary accuracy tracks the dominant-pattern share) and knows\n\
           nothing about unseen ID-mapping keys;\n\
         - latency mapping with two IMC anchors leaves most of the grid in\n\
           iso-distance ambiguity, far below the autonomous method."
    );
}
