//! Criterion benchmarks of the substrate kernels: mesh routing, machine
//! cache operations and the RC thermal step.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_mesh::{route::route, DieTemplate, FloorplanBuilder, GridDim, OsCoreId, TileCoord};
use coremap_thermal::{RcGrid, ThermalParams};
use coremap_uncore::{MachineConfig, PhysAddr, XeonMachine};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn routing(c: &mut Criterion) {
    let dim = GridDim::new(6, 8);
    let coords: Vec<TileCoord> = dim.iter_row_major().collect();
    let pairs = (coords.len() * coords.len()) as u64;
    let mut group = c.benchmark_group("mesh");
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("route_all_pairs_6x8", |b| {
        b.iter(|| {
            for &s in &coords {
                for &d in &coords {
                    black_box(route(s, d, dim));
                }
            }
        })
    });
    group.finish();
}

fn machine_ops(c: &mut Criterion) {
    let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("full die");
    let mut machine = XeonMachine::new(plan, MachineConfig::default());
    let writer = OsCoreId::new(0);
    let reader = OsCoreId::new(17);
    let mut group = c.benchmark_group("machine");
    group.throughput(Throughput::Elements(2));
    group.bench_function("ping_pong_iteration", |b| {
        let pa = PhysAddr::new(0x8000);
        machine.write_line(writer, pa);
        b.iter(|| {
            machine.read_line(reader, pa);
            machine.write_line(writer, pa);
        })
    });
    group.finish();
}

fn thermal_step(c: &mut Criterion) {
    let dim = GridDim::new(5, 6);
    let params = ThermalParams::default();
    let mut grid = RcGrid::new(dim, params);
    let powers = vec![params.idle_power; dim.tile_count()];
    let mut group = c.benchmark_group("thermal");
    group.throughput(Throughput::Elements(dim.tile_count() as u64));
    group.bench_function("rc_step_5x6", |b| b.iter(|| grid.step(black_box(&powers))));
    group.finish();
}

criterion_group!(benches, routing, machine_ops, thermal_step);
criterion_main!(benches);
