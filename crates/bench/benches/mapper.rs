//! Criterion benchmarks of the mapping pipeline and its stages.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::{cha_map, eviction, ilp_model, traffic, CoreMapper};
use coremap_fleet::{CloudFleet, CpuModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn pipeline_per_model(c: &mut Criterion) {
    let fleet = CloudFleet::with_seed(2022);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for model in [
        CpuModel::Platinum8124M,
        CpuModel::Platinum8175M,
        CpuModel::Platinum8259CL,
    ] {
        let instance = fleet.instance(model, 0).expect("instance 0");
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                let mut machine = instance.boot();
                black_box(CoreMapper::new().map(&mut machine).expect("maps"))
            })
        });
    }
    group.finish();
}

fn pipeline_stages(c: &mut Criterion) {
    let fleet = CloudFleet::with_seed(2022);
    let instance = fleet
        .instance(CpuModel::Platinum8124M, 0)
        .expect("instance 0");
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);

    group.bench_function("eviction_sets", |b| {
        b.iter(|| {
            let mut machine = instance.boot();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            black_box(eviction::build_all_sets(&mut machine, &mut rng, 8).expect("sets"))
        })
    });

    // Prepared state for the later stages.
    let mut machine = instance.boot();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let sets = eviction::build_all_sets(&mut machine, &mut rng, 8).expect("sets");
    group.bench_function("cha_discovery", |b| {
        b.iter(|| black_box(cha_map::discover(&mut machine, &sets, 3).expect("mapping")))
    });
    let mapping = cha_map::discover(&mut machine, &sets, 3).expect("mapping");
    group.bench_function("traffic_observation", |b| {
        b.iter(|| {
            black_box(traffic::observe_all(&mut machine, &mapping, &sets, 16, 1).expect("observes"))
        })
    });
    let observations = traffic::observe_all(&mut machine, &mapping, &sets, 16, 1).expect("obs");
    let dim = machine.grid_dim();
    group.bench_function("ilp_reconstruction", |b| {
        b.iter(|| black_box(ilp_model::reconstruct(&observations, dim).expect("reconstructs")))
    });
    group.finish();
}

criterion_group!(benches, pipeline_per_model, pipeline_stages);
criterion_main!(benches);
