//! Criterion benchmarks of the MILP solver and the reconstruction
//! formulations, including the branching-rule ablation called out in
//! DESIGN.md.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::ilp_model::{reconstruct, reconstruct_full};
use coremap_core::traffic::ObservationSet;
use coremap_ilp::{Branching, Cmp, Model};
use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder, TileCoord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn full_die_plan() -> Floorplan {
    FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("full die")
}

fn dense_block_plan() -> Floorplan {
    let t = DieTemplate::SkylakeXcc;
    let keep: Vec<TileCoord> = (2..5)
        .flat_map(|r| (0..2).map(move |c| TileCoord::new(r, c)))
        .collect();
    let disable = t
        .core_capable_positions()
        .into_iter()
        .filter(|p| !keep.contains(p));
    FloorplanBuilder::new(t)
        .disable_all(disable)
        .build()
        .expect("block die")
}

fn reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct");
    group.sample_size(10);
    let plan = full_die_plan();
    let obs = ObservationSet::synthetic(&plan);
    group.bench_function("merged_full_die", |b| {
        b.iter(|| black_box(reconstruct(&obs, plan.dim()).expect("solves")))
    });
    let block = dense_block_plan();
    let block_obs = ObservationSet::synthetic(&block);
    group.bench_function("merged_dense_block", |b| {
        b.iter(|| black_box(reconstruct(&block_obs, block.dim()).expect("solves")))
    });
    group.bench_function("paper_literal_dense_block", |b| {
        b.iter(|| black_box(reconstruct_full(&block_obs, block.dim()).expect("solves")))
    });
    group.finish();
}

/// A knapsack-flavoured MILP family for the branching-rule ablation.
fn ablation_model(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|i| m.bin_var(&format!("b{i}"))).collect();
    let mut cap = m.expr();
    let mut obj = m.expr();
    for (i, &v) in vars.iter().enumerate() {
        let w = 3 + (i * 7) % 11;
        let p = 2 + (i * 5) % 13;
        cap = cap.term(w as f64, v);
        obj = obj.term(-(p as f64), v);
    }
    m.constraint(cap, Cmp::Le, (3 * n) as f64);
    m.minimize(obj);
    m
}

fn branching_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("branching_rule");
    group.sample_size(10);
    let model = ablation_model(24);
    group.bench_function("most_fractional", |b| {
        b.iter(|| {
            black_box(
                model
                    .solve_with_branching(Branching::MostFractional)
                    .expect("solves"),
            )
        })
    });
    group.bench_function("first_fractional", |b| {
        b.iter(|| {
            black_box(
                model
                    .solve_with_branching(Branching::FirstFractional)
                    .expect("solves"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, reconstruction, branching_rules);
criterion_main!(benches);
