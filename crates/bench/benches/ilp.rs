//! Criterion benchmarks of the MILP solver and the reconstruction
//! formulations: the engine matrix (dense tableau vs revised simplex,
//! cold vs warm-started, serial vs parallel branch & bound) plus the
//! branching-rule ablation called out in DESIGN.md.

// Test/bench harness: unwraps abort the harness, which is the desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coremap_core::ilp_model::{reconstruct, reconstruct_full, reconstruct_full_with_bb};
use coremap_core::traffic::ObservationSet;
use coremap_ilp::{BbConfig, Branching, Cmp, LpEngine, Model};
use coremap_mesh::{DieTemplate, Floorplan, FloorplanBuilder, TileCoord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn full_die_plan() -> Floorplan {
    FloorplanBuilder::new(DieTemplate::SkylakeXcc)
        .build()
        .expect("full die")
}

fn dense_block_plan() -> Floorplan {
    let t = DieTemplate::SkylakeXcc;
    let keep: Vec<TileCoord> = (2..5)
        .flat_map(|r| (0..2).map(move |c| TileCoord::new(r, c)))
        .collect();
    let disable = t
        .core_capable_positions()
        .iter()
        .copied()
        .filter(|p| !keep.contains(p));
    FloorplanBuilder::new(t)
        .disable_all(disable)
        .build()
        .expect("block die")
}

fn reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct");
    group.sample_size(10);
    let plan = full_die_plan();
    let obs = ObservationSet::synthetic(&plan);
    group.bench_function("merged_full_die", |b| {
        b.iter(|| black_box(reconstruct(&obs, plan.dim()).expect("solves")))
    });
    let block = dense_block_plan();
    let block_obs = ObservationSet::synthetic(&block);
    group.bench_function("merged_dense_block", |b| {
        b.iter(|| black_box(reconstruct(&block_obs, block.dim()).expect("solves")))
    });
    group.bench_function("paper_literal_dense_block", |b| {
        b.iter(|| black_box(reconstruct_full(&block_obs, block.dim()).expect("solves")))
    });
    group.finish();
}

/// The LP-engine matrix on the reference reconstruction instance: the
/// legacy dense tableau, the sparse revised simplex solved cold at every
/// node, the warm-started dual simplex, and the warm engine with
/// speculative parallel subtree search. All four return byte-identical
/// placements; only the wall-clock differs.
///
/// Uses the paper-literal formulation over a stride-7 subsampled
/// observation set — the same reference workload as the `ilp_perf` bench
/// binary. The class-merged formulation plus the indicator presolve is
/// root-integral on the full synthetic set, so it would measure a single
/// LP solve instead of the branch & bound.
fn engine_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_engine");
    group.sample_size(10);
    let plan = full_die_plan();
    let mut obs = ObservationSet::synthetic(&plan);
    let paths = std::mem::take(&mut obs.paths);
    obs.paths = paths.into_iter().step_by(7).collect();
    let dim = plan.dim();
    let configs = [
        ("dense_cold", LpEngine::DenseTableau, 1),
        ("revised_cold", LpEngine::RevisedCold, 1),
        ("warm_serial", LpEngine::RevisedWarm, 1),
        ("warm_parallel4", LpEngine::RevisedWarm, 4),
    ];
    for (name, engine, workers) in configs {
        let cfg = BbConfig {
            engine,
            workers,
            ..BbConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(reconstruct_full_with_bb(&obs, dim, &cfg).expect("solves")))
        });
    }
    group.finish();
}

/// A knapsack-flavoured MILP family for the branching-rule ablation.
fn ablation_model(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|i| m.bin_var(&format!("b{i}"))).collect();
    let mut cap = m.expr();
    let mut obj = m.expr();
    for (i, &v) in vars.iter().enumerate() {
        let w = 3 + (i * 7) % 11;
        let p = 2 + (i * 5) % 13;
        cap = cap.term(w as f64, v);
        obj = obj.term(-(p as f64), v);
    }
    m.constraint(cap, Cmp::Le, (3 * n) as f64);
    m.minimize(obj);
    m
}

fn branching_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("branching_rule");
    group.sample_size(10);
    let model = ablation_model(24);
    group.bench_function("most_fractional", |b| {
        b.iter(|| {
            black_box(
                model
                    .solve_with_branching(Branching::MostFractional)
                    .expect("solves"),
            )
        })
    });
    group.bench_function("first_fractional", |b| {
        b.iter(|| {
            black_box(
                model
                    .solve_with_branching(Branching::FirstFractional)
                    .expect("solves"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, reconstruction, engine_matrix, branching_rules);
criterion_main!(benches);
