//! Dimension-order routing on the Xeon mesh and the ingress events it
//! produces.
//!
//! The Xeon mesh uses a simple dimension-order routing discipline: a packet
//! "always travels through the vertical (up or down) channels first and then
//! proceeds to the target using the horizontal (left or right) channels"
//! (paper Sec. II). The uncore PMON of each CHA counts the cycles each
//! *ingress* data channel is occupied, so a monitoring tool observes, per
//! tile, *which direction traffic arrived from* — but only at tiles whose
//! CHA is active, and never which egress channel was used.
//!
//! Two physical quirks matter for reconstruction:
//!
//! * **Ingress-only visibility.** Each event in a [`Route`] is an ingress at
//!   the receiving tile; the source tile itself records nothing.
//! * **Odd-column flip.** "The core tiles in every odd column are flipped
//!   horizontally on the Xeon tile grid" (Sec. II-C.4), so the *label* under
//!   which a horizontal ingress is counted alternates between `left` and
//!   `right` along the travel path. The [`IngressEvent::observed_label`]
//!   field models this: it is what a PMON reader sees, and it carries no
//!   reliable information about the true travel direction. Vertical labels
//!   are truthful.

use serde::{Deserialize, Serialize};

use crate::{Direction, GridDim, TileCoord};

/// Routing discipline of the interconnect. The Xeon mesh routes vertically
/// first ([`RoutingDiscipline::VerticalFirst`], paper Sec. II); the other
/// variants describe the hypothesis space topology selection searches: the
/// horizontal-first counterfactual (`ablate_routing_assumption`), a fixed
/// Hamiltonian-cycle ring with polarity (the *Lord of the Ring(s)*
/// interconnect family), and SNC-style quadrant-local routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingDiscipline {
    /// Y then X — the documented Xeon behaviour.
    #[default]
    VerticalFirst,
    /// X then Y — a hypothetical mesh the method's constraints do not
    /// describe.
    HorizontalFirst,
    /// Packets walk a fixed Hamiltonian cycle over the grid; `clockwise`
    /// picks the traversal polarity. Requires an even tile count.
    Ring {
        /// Walk the canonical cycle forward (`true`) or backward.
        clockwise: bool,
    },
    /// Dimension-order routing confined to quadrants: same-quadrant traffic
    /// routes Y-then-X; cross-quadrant traffic first routes Y-then-X to the
    /// gateway tile obtained by clamping the source coordinates into the
    /// sink's quadrant, then on to the sink.
    QuadrantLocal,
}

/// A single ingress event: a packet arrived at `tile` moving in
/// `true_direction`, counted by the PMON under `observed_label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IngressEvent {
    /// The tile receiving the packet.
    pub tile: TileCoord,
    /// The actual travel direction of the packet (ground truth).
    pub true_direction: Direction,
    /// The channel label the tile's PMON counts this ingress under. Equal to
    /// `true_direction` for vertical channels; mirrored on odd-column tiles
    /// for horizontal channels.
    pub observed_label: Direction,
}

impl IngressEvent {
    fn new(tile: TileCoord, true_direction: Direction) -> Self {
        let observed_label = if true_direction.is_horizontal() && tile.col % 2 == 1 {
            true_direction.mirror_horizontal()
        } else {
            true_direction
        };
        Self {
            tile,
            true_direction,
            observed_label,
        }
    }
}

/// The full event trace of one routed transfer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    source: TileCoord,
    sink: TileCoord,
    events: Vec<IngressEvent>,
}

impl Route {
    /// Source tile of the transfer.
    pub fn source(&self) -> TileCoord {
        self.source
    }

    /// Sink tile of the transfer.
    pub fn sink(&self) -> TileCoord {
        self.sink
    }

    /// All ingress events in travel order (vertical segment first).
    pub fn events(&self) -> &[IngressEvent] {
        &self.events
    }

    /// Number of mesh links traversed.
    pub fn hop_count(&self) -> usize {
        self.events.len()
    }
}

/// Traces the dimension-order (vertical first, then horizontal) route of a
/// packet from `source` to `sink` on a `dim` grid.
///
/// Returns the ingress events at every tile the packet *arrives at*: the
/// tiles of the source column strictly between source and turn point, the
/// turn tile itself, the tiles of the sink row strictly between turn point
/// and sink, and the sink. A zero-length route (source == sink) has no
/// events.
///
/// # Panics
///
/// Panics if `source` or `sink` lie outside `dim`.
///
/// ```
/// use coremap_mesh::{route::route, Direction, GridDim, TileCoord};
///
/// let dim = GridDim::new(5, 6);
/// let r = route(TileCoord::new(4, 0), TileCoord::new(2, 2), dim);
/// // Vertical first: up through (3,0) and (2,0), then right through (2,1)
/// // and (2,2).
/// let dirs: Vec<Direction> = r.events().iter().map(|e| e.true_direction).collect();
/// assert_eq!(
///     dirs,
///     vec![Direction::Up, Direction::Up, Direction::Right, Direction::Right]
/// );
/// assert_eq!(r.hop_count(), 4);
/// ```
pub fn route(source: TileCoord, sink: TileCoord, dim: GridDim) -> Route {
    route_with(source, sink, dim, RoutingDiscipline::VerticalFirst)
}

/// Emits the ingress events of a vertical segment from `source_row` to
/// `sink_row` along `col`, in travel order. Empty when the rows coincide.
fn push_vertical(events: &mut Vec<IngressEvent>, source_row: usize, sink_row: usize, col: usize) {
    if sink_row == source_row {
        return;
    }
    let dir = if sink_row < source_row {
        Direction::Up
    } else {
        Direction::Down
    };
    let rows: Box<dyn Iterator<Item = usize>> = if sink_row < source_row {
        Box::new((sink_row..source_row).rev())
    } else {
        Box::new(source_row + 1..=sink_row)
    };
    for row in rows {
        events.push(IngressEvent::new(TileCoord::new(row, col), dir));
    }
}

/// Emits the ingress events of a horizontal segment from `source_col` to
/// `sink_col` along `row`, in travel order. Empty when the columns coincide.
fn push_horizontal(events: &mut Vec<IngressEvent>, source_col: usize, sink_col: usize, row: usize) {
    if sink_col == source_col {
        return;
    }
    let dir = if sink_col < source_col {
        Direction::Left
    } else {
        Direction::Right
    };
    let cols: Box<dyn Iterator<Item = usize>> = if sink_col < source_col {
        Box::new((sink_col..source_col).rev())
    } else {
        Box::new(source_col + 1..=sink_col)
    };
    for col in cols {
        events.push(IngressEvent::new(TileCoord::new(row, col), dir));
    }
}

/// The canonical Hamiltonian cycle [`RoutingDiscipline::Ring`] packets walk
/// on a `dim` grid, as a list of tiles in cycle order (the edge from the
/// last tile back to the first closes the ring). Consecutive tiles are
/// always grid-adjacent.
///
/// Construction (even column count): down column 0, serpentine over rows
/// `1..rows` of the remaining columns, then back to the origin along row 0.
/// Grids with an even row count use the transposed construction.
///
/// # Panics
///
/// Panics if the tile count is odd — no Hamiltonian cycle exists on an
/// odd-by-odd grid graph. [`Topology`](crate::Topology) validation rejects
/// such ring topologies up front.
pub fn ring_cycle(dim: GridDim) -> Vec<TileCoord> {
    assert!(
        dim.tile_count().is_multiple_of(2)
            && (dim.rows.min(dim.cols) >= 2 || dim.tile_count() <= 2),
        "no Hamiltonian cycle on a {dim} grid"
    );
    if dim.cols.is_multiple_of(2) {
        ring_cycle_cols_even(dim.rows, dim.cols)
            .map(|(r, c)| TileCoord::new(r, c))
            .collect()
    } else {
        // Even row count: transpose the construction.
        ring_cycle_cols_even(dim.cols, dim.rows)
            .map(|(r, c)| TileCoord::new(c, r))
            .collect()
    }
}

/// Cycle construction for an even number of columns, yielding `(row, col)`
/// pairs: column 0 top to bottom, serpentine over rows `1..rows` of columns
/// `1..cols` (odd columns upward, even downward), then (0, cols-1) and row 0
/// right to left back toward the origin.
fn ring_cycle_cols_even(rows: usize, cols: usize) -> impl Iterator<Item = (usize, usize)> {
    let down_col0 = (0..rows).map(|r| (r, 0));
    let serpentine = (1..cols).flat_map(move |c| {
        let span: Box<dyn Iterator<Item = usize>> = if c % 2 == 1 {
            Box::new((1..rows).rev())
        } else {
            Box::new(1..rows)
        };
        span.map(move |r| (r, c))
    });
    let top_right = std::iter::once((0, cols - 1));
    let back_along_row0 = (1..cols.saturating_sub(1)).rev().map(|c| (0, c));
    down_col0
        .chain(serpentine)
        .chain(top_right)
        .chain(back_along_row0)
}

/// The direction of the single-hop step from `a` to an adjacent tile `b`.
fn step_direction(a: TileCoord, b: TileCoord) -> Direction {
    if b.row < a.row {
        Direction::Up
    } else if b.row > a.row {
        Direction::Down
    } else if b.col < a.col {
        Direction::Left
    } else {
        Direction::Right
    }
}

/// Emits the ingress events of a ring walk from `source` to `sink`.
fn push_ring(
    events: &mut Vec<IngressEvent>,
    source: TileCoord,
    sink: TileCoord,
    dim: GridDim,
    clockwise: bool,
) {
    if source == sink {
        return;
    }
    let cycle = ring_cycle(dim);
    let n = cycle.len();
    #[allow(clippy::expect_used)]
    let start = cycle
        .iter()
        .position(|&c| c == source)
        // audit: allow(panic-safety): infallible — ring_cycle covers every grid tile and route_with asserted both endpoints are in-grid
        .expect("source on ring cycle");
    let mut idx = start;
    let mut prev = source;
    loop {
        idx = if clockwise {
            (idx + 1) % n
        } else {
            (idx + n - 1) % n
        };
        let next = cycle[idx];
        events.push(IngressEvent::new(next, step_direction(prev, next)));
        if next == sink {
            return;
        }
        prev = next;
    }
}

/// The gateway tile cross-quadrant traffic passes through under
/// [`RoutingDiscipline::QuadrantLocal`]: the source coordinates clamped into
/// the sink's quadrant. Equal to `source` for same-quadrant traffic, and
/// always on a minimal (Manhattan-preserving) path.
fn quadrant_gateway(source: TileCoord, sink: TileCoord, dim: GridDim) -> TileCoord {
    let clamp = |v: usize, lo: usize, hi: usize| v.max(lo).min(hi);
    let (row_lo, row_hi) = if sink.row < dim.rows.div_ceil(2) {
        (0, dim.rows.div_ceil(2) - 1)
    } else {
        (dim.rows.div_ceil(2), dim.rows - 1)
    };
    let (col_lo, col_hi) = if sink.col < dim.cols.div_ceil(2) {
        (0, dim.cols.div_ceil(2) - 1)
    } else {
        (dim.cols.div_ceil(2), dim.cols - 1)
    };
    TileCoord::new(
        clamp(source.row, row_lo, row_hi),
        clamp(source.col, col_lo, col_hi),
    )
}

/// Traces a route under an explicit discipline; see [`route`].
///
/// # Panics
///
/// Panics if `source` or `sink` lie outside `dim`, or if a
/// [`RoutingDiscipline::Ring`] is requested on a grid with an odd tile
/// count.
pub fn route_with(
    source: TileCoord,
    sink: TileCoord,
    dim: GridDim,
    discipline: RoutingDiscipline,
) -> Route {
    assert!(dim.contains(source), "source {source} outside grid {dim}");
    assert!(dim.contains(sink), "sink {sink} outside grid {dim}");

    let mut events = Vec::with_capacity(source.hop_distance(sink));
    match discipline {
        RoutingDiscipline::VerticalFirst => {
            // Vertical segment along the source column, then horizontal
            // along the sink row.
            push_vertical(&mut events, source.row, sink.row, source.col);
            push_horizontal(&mut events, source.col, sink.col, sink.row);
        }
        RoutingDiscipline::HorizontalFirst => {
            // Horizontal segment along the source row first, then vertical
            // along the sink column.
            push_horizontal(&mut events, source.col, sink.col, source.row);
            push_vertical(&mut events, source.row, sink.row, sink.col);
        }
        RoutingDiscipline::Ring { clockwise } => {
            push_ring(&mut events, source, sink, dim, clockwise);
        }
        RoutingDiscipline::QuadrantLocal => {
            let gateway = quadrant_gateway(source, sink, dim);
            push_vertical(&mut events, source.row, gateway.row, source.col);
            push_horizontal(&mut events, source.col, gateway.col, gateway.row);
            push_vertical(&mut events, gateway.row, sink.row, gateway.col);
            push_horizontal(&mut events, gateway.col, sink.col, sink.row);
        }
    }

    Route {
        source,
        sink,
        events,
    }
}

/// A directed mesh link: the edge entered by an ingress event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Tile the packet leaves.
    pub from: TileCoord,
    /// Tile the packet enters.
    pub to: TileCoord,
}

impl Route {
    /// The directed links this route occupies, in travel order.
    pub fn links(&self) -> Vec<Link> {
        let mut prev = self.source;
        self.events
            .iter()
            .map(|e| {
                let l = Link {
                    from: prev,
                    to: e.tile,
                };
                prev = e.tile;
                l
            })
            .collect()
    }
}

/// Number of directed links two routes share — the contention overlap that
/// ring/mesh interference side channels exploit ([Paccagnella et al.,
/// USENIX Security'21], the location-based attack class the paper's intro
/// motivates).
pub fn shared_links(a: &Route, b: &Route) -> usize {
    use std::collections::BTreeSet;
    let la: BTreeSet<Link> = a.links().into_iter().collect();
    b.links().iter().filter(|l| la.contains(l)).count()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    const DIM: GridDim = GridDim { rows: 5, cols: 6 };

    fn dirs(r: &Route) -> Vec<Direction> {
        r.events().iter().map(|e| e.true_direction).collect()
    }

    fn tiles(r: &Route) -> Vec<TileCoord> {
        r.events().iter().map(|e| e.tile).collect()
    }

    #[test]
    fn self_route_is_empty() {
        let r = route(TileCoord::new(2, 2), TileCoord::new(2, 2), DIM);
        assert!(r.events().is_empty());
        assert_eq!(r.hop_count(), 0);
    }

    #[test]
    fn vertical_only_down() {
        let r = route(TileCoord::new(0, 3), TileCoord::new(3, 3), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(1, 3),
                TileCoord::new(2, 3),
                TileCoord::new(3, 3)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Down));
    }

    #[test]
    fn vertical_only_up() {
        let r = route(TileCoord::new(4, 1), TileCoord::new(1, 1), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(3, 1),
                TileCoord::new(2, 1),
                TileCoord::new(1, 1)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Up));
    }

    #[test]
    fn horizontal_only_right() {
        let r = route(TileCoord::new(2, 0), TileCoord::new(2, 3), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(2, 1),
                TileCoord::new(2, 2),
                TileCoord::new(2, 3)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Right));
    }

    #[test]
    fn horizontal_only_left() {
        let r = route(TileCoord::new(0, 5), TileCoord::new(0, 2), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(0, 4),
                TileCoord::new(0, 3),
                TileCoord::new(0, 2)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Left));
    }

    #[test]
    fn l_shape_vertical_first() {
        // From (4,0) to (0,5): all vertical hops happen in the source column
        // before any horizontal hop in the sink row.
        let r = route(TileCoord::new(4, 0), TileCoord::new(0, 5), DIM);
        assert_eq!(r.hop_count(), 9);
        let ds = dirs(&r);
        let first_horizontal = ds.iter().position(|d| d.is_horizontal()).unwrap();
        assert!(ds[..first_horizontal].iter().all(|d| d.is_vertical()));
        assert!(ds[first_horizontal..].iter().all(|d| d.is_horizontal()));
        // Vertical hops stay in the source column, horizontal in sink row.
        for e in &r.events()[..first_horizontal] {
            assert_eq!(e.tile.col, 0);
        }
        for e in &r.events()[first_horizontal..] {
            assert_eq!(e.tile.row, 0);
        }
    }

    #[test]
    fn turn_tile_receives_vertical_ingress() {
        // Turn tile (sink row, source column) is the last vertical receiver.
        let r = route(TileCoord::new(3, 1), TileCoord::new(1, 4), DIM);
        let turn = TileCoord::new(1, 1);
        let ev = r.events().iter().find(|e| e.tile == turn).unwrap();
        assert_eq!(ev.true_direction, Direction::Up);
    }

    #[test]
    fn hop_count_equals_manhattan_distance() {
        for src in DIM.iter_row_major() {
            for dst in DIM.iter_row_major() {
                let r = route(src, dst, DIM);
                assert_eq!(r.hop_count(), src.hop_distance(dst), "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn odd_column_flips_horizontal_label_only() {
        let r = route(TileCoord::new(0, 0), TileCoord::new(0, 3), DIM);
        for e in r.events() {
            assert_eq!(e.true_direction, Direction::Right);
            if e.tile.col % 2 == 1 {
                assert_eq!(e.observed_label, Direction::Left);
            } else {
                assert_eq!(e.observed_label, Direction::Right);
            }
        }
    }

    #[test]
    fn vertical_labels_are_truthful_everywhere() {
        let r = route(TileCoord::new(0, 1), TileCoord::new(4, 1), DIM);
        for e in r.events() {
            assert_eq!(e.observed_label, e.true_direction);
        }
    }

    #[test]
    fn observed_horizontal_labels_alternate_along_path() {
        // Eastbound along a row: labels must alternate R,L,R,L,... starting
        // from the first receiving column's parity — the reason the true
        // horizontal direction is unrecoverable from labels alone.
        let r = route(TileCoord::new(2, 0), TileCoord::new(2, 5), DIM);
        let labels: Vec<Direction> = r.events().iter().map(|e| e.observed_label).collect();
        assert_eq!(
            labels,
            vec![
                Direction::Left,  // col 1 (odd, flipped)
                Direction::Right, // col 2
                Direction::Left,  // col 3
                Direction::Right, // col 4
                Direction::Left,  // col 5
            ]
        );
        // Westbound over the same tiles yields the same *set* of labels per
        // parity class, demonstrating the ambiguity.
        let back = route(TileCoord::new(2, 5), TileCoord::new(2, 0), DIM);
        let back_labels: Vec<Direction> = back.events().iter().map(|e| e.observed_label).collect();
        assert_eq!(
            back_labels,
            vec![
                Direction::Left,  // col 4 (even, truthful)
                Direction::Right, // col 3 (odd, flipped)
                Direction::Left,  // col 2
                Direction::Right, // col 1
                Direction::Left,  // col 0
            ]
        );
    }

    #[test]
    fn horizontal_first_reverses_segment_order() {
        let r = route_with(
            TileCoord::new(4, 0),
            TileCoord::new(2, 2),
            DIM,
            RoutingDiscipline::HorizontalFirst,
        );
        let ds = dirs(&r);
        let first_vertical = ds.iter().position(|d| d.is_vertical()).unwrap();
        assert!(ds[..first_vertical].iter().all(|d| d.is_horizontal()));
        assert!(ds[first_vertical..].iter().all(|d| d.is_vertical()));
        // Horizontal hops stay in the source row, vertical in sink column.
        for e in &r.events()[..first_vertical] {
            assert_eq!(e.tile.row, 4);
        }
        for e in &r.events()[first_vertical..] {
            assert_eq!(e.tile.col, 2);
        }
        assert_eq!(r.hop_count(), 4);
        assert_eq!(r.events().last().unwrap().tile, TileCoord::new(2, 2));
    }

    #[test]
    fn disciplines_agree_on_straight_paths() {
        for (src, dst) in [
            (TileCoord::new(0, 0), TileCoord::new(0, 4)),
            (TileCoord::new(4, 2), TileCoord::new(1, 2)),
        ] {
            let yx = route(src, dst, DIM);
            let xy = route_with(src, dst, DIM, RoutingDiscipline::HorizontalFirst);
            assert_eq!(yx, xy);
        }
    }

    #[test]
    fn links_follow_the_event_trace() {
        let r = route(TileCoord::new(2, 0), TileCoord::new(0, 1), DIM);
        let links = r.links();
        assert_eq!(links.len(), r.hop_count());
        assert_eq!(links[0].from, TileCoord::new(2, 0));
        assert_eq!(links.last().unwrap().to, TileCoord::new(0, 1));
        // Consecutive links chain.
        for w in links.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn shared_links_counts_common_directed_edges() {
        // Two southbound flows down the same column share the overlap of
        // their vertical segments.
        let a = route(TileCoord::new(0, 2), TileCoord::new(4, 2), DIM);
        let b = route(TileCoord::new(1, 2), TileCoord::new(3, 2), DIM);
        assert_eq!(shared_links(&a, &b), 2); // links 1->2 and 2->3
                                             // Opposite directions share nothing (links are directed).
        let c = route(TileCoord::new(4, 2), TileCoord::new(0, 2), DIM);
        assert_eq!(shared_links(&a, &c), 0);
        // Disjoint columns share nothing.
        let d = route(TileCoord::new(0, 5), TileCoord::new(4, 5), DIM);
        assert_eq!(shared_links(&a, &d), 0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn route_panics_outside_grid() {
        let _ = route(TileCoord::new(9, 9), TileCoord::new(0, 0), DIM);
    }

    #[test]
    fn ring_cycle_visits_every_tile_once_and_closes() {
        for dim in [
            GridDim::new(5, 6),
            GridDim::new(6, 8),
            GridDim::new(4, 7),
            GridDim::new(2, 2),
            GridDim::new(3, 4),
        ] {
            let cycle = ring_cycle(dim);
            assert_eq!(cycle.len(), dim.tile_count(), "{dim}");
            let mut dedup = cycle.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), dim.tile_count(), "{dim}");
            // Consecutive tiles (and the closing edge) are grid-adjacent.
            for i in 0..cycle.len() {
                let a = cycle[i];
                let b = cycle[(i + 1) % cycle.len()];
                assert_eq!(a.hop_distance(b), 1, "{dim}: {a} -> {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "Hamiltonian")]
    fn ring_cycle_panics_on_odd_grid() {
        let _ = ring_cycle(GridDim::new(3, 3));
    }

    #[test]
    fn ring_route_walks_the_cycle_to_the_sink() {
        let dim = GridDim::new(4, 4);
        let cycle = ring_cycle(dim);
        let (src, dst) = (cycle[1], cycle[5]);
        let r = route_with(src, dst, dim, RoutingDiscipline::Ring { clockwise: true });
        assert_eq!(r.hop_count(), 4);
        assert_eq!(tiles(&r), cycle[2..=5].to_vec());
        // Counter-clockwise reaches the same sink the long way round.
        let back = route_with(src, dst, dim, RoutingDiscipline::Ring { clockwise: false });
        assert_eq!(back.hop_count(), cycle.len() - 4);
        assert_eq!(back.events().last().unwrap().tile, dst);
    }

    #[test]
    fn ring_events_are_contiguous_single_hops() {
        let dim = GridDim::new(4, 7);
        let cycle = ring_cycle(dim);
        let r = route_with(
            cycle[3],
            cycle[20],
            dim,
            RoutingDiscipline::Ring { clockwise: true },
        );
        let mut prev = cycle[3];
        for e in r.events() {
            assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
            prev = e.tile;
        }
        assert_eq!(prev, cycle[20]);
    }

    #[test]
    fn quadrant_local_same_quadrant_is_vertical_first() {
        // 5x6 grid: quadrant split at rows >= 3, cols >= 3. Both endpoints
        // in the upper-left quadrant.
        let (src, dst) = (TileCoord::new(2, 0), TileCoord::new(0, 2));
        let ql = route_with(src, dst, DIM, RoutingDiscipline::QuadrantLocal);
        let vf = route(src, dst, DIM);
        assert_eq!(ql, vf);
    }

    #[test]
    fn quadrant_local_crosses_through_the_gateway() {
        // (4,0) lower-left -> (0,5) upper-right: the gateway clamps the
        // source into the sink's quadrant at (2,3).
        let r = route_with(
            TileCoord::new(4, 0),
            TileCoord::new(0, 5),
            DIM,
            RoutingDiscipline::QuadrantLocal,
        );
        // Manhattan-preserving: the clamp point lies on a minimal path.
        assert_eq!(r.hop_count(), 9);
        assert!(tiles(&r).contains(&TileCoord::new(2, 3)));
        assert_eq!(r.events().last().unwrap().tile, TileCoord::new(0, 5));
        // Differs from plain vertical-first: the turn happens inside the
        // sink quadrant, not in the source column all the way up.
        let vf = route(TileCoord::new(4, 0), TileCoord::new(0, 5), DIM);
        assert_ne!(r, vf);
    }
}

#[cfg(test)]
mod proptests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use proptest::prelude::*;

    fn coord_strategy(dim: GridDim) -> impl Strategy<Value = TileCoord> {
        (0..dim.rows, 0..dim.cols).prop_map(|(r, c)| TileCoord::new(r, c))
    }

    proptest! {
        #[test]
        fn route_ends_at_sink(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            if src == dst {
                prop_assert!(r.events().is_empty());
            } else {
                prop_assert_eq!(r.events().last().unwrap().tile, dst);
            }
        }

        #[test]
        fn route_is_contiguous(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            let mut prev = src;
            for e in r.events() {
                // Each event's tile is one step from the previous position in
                // the event's true direction.
                prop_assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
                prev = e.tile;
            }
        }

        #[test]
        fn vertical_receivers_share_source_column_horizontal_share_sink_row(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            for e in r.events() {
                if e.true_direction.is_vertical() {
                    prop_assert_eq!(e.tile.col, src.col);
                } else {
                    prop_assert_eq!(e.tile.row, dst.row);
                }
            }
        }

        #[test]
        fn horizontal_first_routes_are_contiguous_and_complete(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route_with(src, dst, dim, RoutingDiscipline::HorizontalFirst);
            prop_assert_eq!(r.hop_count(), src.hop_distance(dst));
            let mut prev = src;
            for e in r.events() {
                prop_assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
                prev = e.tile;
            }
            if src != dst {
                prop_assert_eq!(r.events().last().unwrap().tile, dst);
            }
            // Mirror property: horizontal receivers share the source row,
            // vertical receivers the sink column.
            for e in r.events() {
                if e.true_direction.is_horizontal() {
                    prop_assert_eq!(e.tile.row, src.row);
                } else {
                    prop_assert_eq!(e.tile.col, dst.col);
                }
            }
        }

        #[test]
        fn hop_count_is_symmetric_under_coordinate_flip(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            // Flipping both coordinates through the grid centre preserves
            // hop counts under every discipline: the mirror ambiguity the
            // reconstruction cannot resolve from occupancy alone.
            let dim = GridDim::new(6, 8);
            let flip = |c: TileCoord| TileCoord::new(dim.rows - 1 - c.row, dim.cols - 1 - c.col);
            for discipline in [
                RoutingDiscipline::VerticalFirst,
                RoutingDiscipline::HorizontalFirst,
                RoutingDiscipline::Ring { clockwise: true },
                RoutingDiscipline::QuadrantLocal,
            ] {
                let fwd = route_with(src, dst, dim, discipline);
                // The flipped pair routes under the flipped polarity for
                // rings (the cycle itself is not centre-symmetric, but arc
                // lengths are preserved when polarity flips with it).
                let flipped_discipline = match discipline {
                    RoutingDiscipline::Ring { clockwise } =>
                        RoutingDiscipline::Ring { clockwise: !clockwise },
                    d => d,
                };
                let rev = route_with(flip(src), flip(dst), dim, flipped_discipline);
                if !matches!(discipline, RoutingDiscipline::Ring { .. }) {
                    prop_assert_eq!(fwd.hop_count(), rev.hop_count(),
                        "{:?} {} -> {}", discipline, src, dst);
                }
                // Hop counts are invariant under swapping endpoints AND
                // polarity/flip for all disciplines.
                let swap = route_with(dst, src, dim, flipped_discipline);
                prop_assert_eq!(fwd.hop_count(), swap.hop_count(),
                    "{:?} swap {} -> {}", discipline, src, dst);
            }
        }

        #[test]
        fn shared_links_is_commutative(
            (a_src, a_dst, b_src, b_dst) in (
                coord_strategy(GridDim{rows:5, cols:6}),
                coord_strategy(GridDim{rows:5, cols:6}),
                coord_strategy(GridDim{rows:5, cols:6}),
                coord_strategy(GridDim{rows:5, cols:6}))
        ) {
            let dim = GridDim::new(5, 6);
            for discipline in [
                RoutingDiscipline::VerticalFirst,
                RoutingDiscipline::HorizontalFirst,
                RoutingDiscipline::Ring { clockwise: true },
                RoutingDiscipline::QuadrantLocal,
            ] {
                let a = route_with(a_src, a_dst, dim, discipline);
                let b = route_with(b_src, b_dst, dim, discipline);
                prop_assert_eq!(shared_links(&a, &b), shared_links(&b, &a));
            }
        }

        #[test]
        fn ring_wrap_around_distances(
            (src, dst) in (coord_strategy(GridDim{rows:4, cols:7}),
                           coord_strategy(GridDim{rows:4, cols:7}))
        ) {
            let dim = GridDim::new(4, 7);
            let n = dim.tile_count();
            let cw = route_with(src, dst, dim, RoutingDiscipline::Ring { clockwise: true });
            let ccw = route_with(src, dst, dim, RoutingDiscipline::Ring { clockwise: false });
            let cw_back = route_with(dst, src, dim, RoutingDiscipline::Ring { clockwise: true });
            if src == dst {
                prop_assert_eq!(cw.hop_count(), 0);
                prop_assert_eq!(ccw.hop_count(), 0);
            } else {
                // Going all the way around: forward plus return arc is the
                // full cycle, and reversing polarity equals swapping
                // endpoints.
                prop_assert_eq!(cw.hop_count() + cw_back.hop_count(), n);
                prop_assert_eq!(ccw.hop_count(), cw_back.hop_count());
                prop_assert_eq!(cw.events().last().unwrap().tile, dst);
                prop_assert_eq!(ccw.events().last().unwrap().tile, dst);
            }
        }

        #[test]
        fn quadrant_routes_preserve_manhattan_distance(
            (src, dst) in (coord_strategy(GridDim{rows:5, cols:6}),
                           coord_strategy(GridDim{rows:5, cols:6}))
        ) {
            let dim = GridDim::new(5, 6);
            let r = route_with(src, dst, dim, RoutingDiscipline::QuadrantLocal);
            prop_assert_eq!(r.hop_count(), src.hop_distance(dst));
            let mut prev = src;
            for e in r.events() {
                prop_assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
                prev = e.tile;
            }
        }

        #[test]
        fn vertical_receivers_lie_in_row_bounding_box(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            for e in r.events().iter().filter(|e| e.true_direction.is_vertical()) {
                // Paper Eq. (1): for up channels R_s > R_k >= R_e (and the
                // mirrored version for down channels).
                match e.true_direction {
                    Direction::Up => {
                        prop_assert!(src.row > e.tile.row && e.tile.row >= dst.row);
                    }
                    Direction::Down => {
                        prop_assert!(src.row < e.tile.row && e.tile.row <= dst.row);
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
