//! Dimension-order routing on the Xeon mesh and the ingress events it
//! produces.
//!
//! The Xeon mesh uses a simple dimension-order routing discipline: a packet
//! "always travels through the vertical (up or down) channels first and then
//! proceeds to the target using the horizontal (left or right) channels"
//! (paper Sec. II). The uncore PMON of each CHA counts the cycles each
//! *ingress* data channel is occupied, so a monitoring tool observes, per
//! tile, *which direction traffic arrived from* — but only at tiles whose
//! CHA is active, and never which egress channel was used.
//!
//! Two physical quirks matter for reconstruction:
//!
//! * **Ingress-only visibility.** Each event in a [`Route`] is an ingress at
//!   the receiving tile; the source tile itself records nothing.
//! * **Odd-column flip.** "The core tiles in every odd column are flipped
//!   horizontally on the Xeon tile grid" (Sec. II-C.4), so the *label* under
//!   which a horizontal ingress is counted alternates between `left` and
//!   `right` along the travel path. The [`IngressEvent::observed_label`]
//!   field models this: it is what a PMON reader sees, and it carries no
//!   reliable information about the true travel direction. Vertical labels
//!   are truthful.

use serde::{Deserialize, Serialize};

use crate::{Direction, GridDim, TileCoord};

/// Dimension-order routing discipline. The Xeon mesh routes vertically
/// first ([`RoutingDiscipline::VerticalFirst`], paper Sec. II); the
/// horizontal-first variant exists to study how sensitive the mapping
/// method is to this assumption (`ablate_routing_assumption`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingDiscipline {
    /// Y then X — the documented Xeon behaviour.
    #[default]
    VerticalFirst,
    /// X then Y — a hypothetical mesh the method's constraints do not
    /// describe.
    HorizontalFirst,
}

/// A single ingress event: a packet arrived at `tile` moving in
/// `true_direction`, counted by the PMON under `observed_label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IngressEvent {
    /// The tile receiving the packet.
    pub tile: TileCoord,
    /// The actual travel direction of the packet (ground truth).
    pub true_direction: Direction,
    /// The channel label the tile's PMON counts this ingress under. Equal to
    /// `true_direction` for vertical channels; mirrored on odd-column tiles
    /// for horizontal channels.
    pub observed_label: Direction,
}

impl IngressEvent {
    fn new(tile: TileCoord, true_direction: Direction) -> Self {
        let observed_label = if true_direction.is_horizontal() && tile.col % 2 == 1 {
            true_direction.mirror_horizontal()
        } else {
            true_direction
        };
        Self {
            tile,
            true_direction,
            observed_label,
        }
    }
}

/// The full event trace of one routed transfer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    source: TileCoord,
    sink: TileCoord,
    events: Vec<IngressEvent>,
}

impl Route {
    /// Source tile of the transfer.
    pub fn source(&self) -> TileCoord {
        self.source
    }

    /// Sink tile of the transfer.
    pub fn sink(&self) -> TileCoord {
        self.sink
    }

    /// All ingress events in travel order (vertical segment first).
    pub fn events(&self) -> &[IngressEvent] {
        &self.events
    }

    /// Number of mesh links traversed.
    pub fn hop_count(&self) -> usize {
        self.events.len()
    }
}

/// Traces the dimension-order (vertical first, then horizontal) route of a
/// packet from `source` to `sink` on a `dim` grid.
///
/// Returns the ingress events at every tile the packet *arrives at*: the
/// tiles of the source column strictly between source and turn point, the
/// turn tile itself, the tiles of the sink row strictly between turn point
/// and sink, and the sink. A zero-length route (source == sink) has no
/// events.
///
/// # Panics
///
/// Panics if `source` or `sink` lie outside `dim`.
///
/// ```
/// use coremap_mesh::{route::route, Direction, GridDim, TileCoord};
///
/// let dim = GridDim::new(5, 6);
/// let r = route(TileCoord::new(4, 0), TileCoord::new(2, 2), dim);
/// // Vertical first: up through (3,0) and (2,0), then right through (2,1)
/// // and (2,2).
/// let dirs: Vec<Direction> = r.events().iter().map(|e| e.true_direction).collect();
/// assert_eq!(
///     dirs,
///     vec![Direction::Up, Direction::Up, Direction::Right, Direction::Right]
/// );
/// assert_eq!(r.hop_count(), 4);
/// ```
pub fn route(source: TileCoord, sink: TileCoord, dim: GridDim) -> Route {
    route_with(source, sink, dim, RoutingDiscipline::VerticalFirst)
}

/// Traces a dimension-order route under an explicit discipline; see
/// [`route`].
///
/// # Panics
///
/// Panics if `source` or `sink` lie outside `dim`.
pub fn route_with(
    source: TileCoord,
    sink: TileCoord,
    dim: GridDim,
    discipline: RoutingDiscipline,
) -> Route {
    assert!(dim.contains(source), "source {source} outside grid {dim}");
    assert!(dim.contains(sink), "sink {sink} outside grid {dim}");

    let mut events = Vec::with_capacity(source.hop_distance(sink));

    if discipline == RoutingDiscipline::HorizontalFirst && sink.col != source.col {
        // Horizontal segment along the source row first.
        let dir = if sink.col < source.col {
            Direction::Left
        } else {
            Direction::Right
        };
        let cols: Box<dyn Iterator<Item = usize>> = if sink.col < source.col {
            Box::new((sink.col..source.col).rev())
        } else {
            Box::new(source.col + 1..=sink.col)
        };
        for col in cols {
            events.push(IngressEvent::new(TileCoord::new(source.row, col), dir));
        }
        // Then vertical along the sink column.
        if sink.row != source.row {
            let dir = if sink.row < source.row {
                Direction::Up
            } else {
                Direction::Down
            };
            let rows: Box<dyn Iterator<Item = usize>> = if sink.row < source.row {
                Box::new((sink.row..source.row).rev())
            } else {
                Box::new(source.row + 1..=sink.row)
            };
            for row in rows {
                events.push(IngressEvent::new(TileCoord::new(row, sink.col), dir));
            }
        }
        return Route {
            source,
            sink,
            events,
        };
    }

    // Vertical segment along the source column.
    if sink.row != source.row {
        let dir = if sink.row < source.row {
            Direction::Up
        } else {
            Direction::Down
        };
        let rows: Box<dyn Iterator<Item = usize>> = if sink.row < source.row {
            Box::new((sink.row..source.row).rev())
        } else {
            Box::new(source.row + 1..=sink.row)
        };
        for row in rows {
            events.push(IngressEvent::new(TileCoord::new(row, source.col), dir));
        }
    }

    // Horizontal segment along the sink row.
    if sink.col != source.col {
        let dir = if sink.col < source.col {
            Direction::Left
        } else {
            Direction::Right
        };
        let cols: Box<dyn Iterator<Item = usize>> = if sink.col < source.col {
            Box::new((sink.col..source.col).rev())
        } else {
            Box::new(source.col + 1..=sink.col)
        };
        for col in cols {
            events.push(IngressEvent::new(TileCoord::new(sink.row, col), dir));
        }
    }

    Route {
        source,
        sink,
        events,
    }
}

/// A directed mesh link: the edge entered by an ingress event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Tile the packet leaves.
    pub from: TileCoord,
    /// Tile the packet enters.
    pub to: TileCoord,
}

impl Route {
    /// The directed links this route occupies, in travel order.
    pub fn links(&self) -> Vec<Link> {
        let mut prev = self.source;
        self.events
            .iter()
            .map(|e| {
                let l = Link {
                    from: prev,
                    to: e.tile,
                };
                prev = e.tile;
                l
            })
            .collect()
    }
}

/// Number of directed links two routes share — the contention overlap that
/// ring/mesh interference side channels exploit ([Paccagnella et al.,
/// USENIX Security'21], the location-based attack class the paper's intro
/// motivates).
pub fn shared_links(a: &Route, b: &Route) -> usize {
    use std::collections::BTreeSet;
    let la: BTreeSet<Link> = a.links().into_iter().collect();
    b.links().iter().filter(|l| la.contains(l)).count()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    const DIM: GridDim = GridDim { rows: 5, cols: 6 };

    fn dirs(r: &Route) -> Vec<Direction> {
        r.events().iter().map(|e| e.true_direction).collect()
    }

    fn tiles(r: &Route) -> Vec<TileCoord> {
        r.events().iter().map(|e| e.tile).collect()
    }

    #[test]
    fn self_route_is_empty() {
        let r = route(TileCoord::new(2, 2), TileCoord::new(2, 2), DIM);
        assert!(r.events().is_empty());
        assert_eq!(r.hop_count(), 0);
    }

    #[test]
    fn vertical_only_down() {
        let r = route(TileCoord::new(0, 3), TileCoord::new(3, 3), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(1, 3),
                TileCoord::new(2, 3),
                TileCoord::new(3, 3)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Down));
    }

    #[test]
    fn vertical_only_up() {
        let r = route(TileCoord::new(4, 1), TileCoord::new(1, 1), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(3, 1),
                TileCoord::new(2, 1),
                TileCoord::new(1, 1)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Up));
    }

    #[test]
    fn horizontal_only_right() {
        let r = route(TileCoord::new(2, 0), TileCoord::new(2, 3), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(2, 1),
                TileCoord::new(2, 2),
                TileCoord::new(2, 3)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Right));
    }

    #[test]
    fn horizontal_only_left() {
        let r = route(TileCoord::new(0, 5), TileCoord::new(0, 2), DIM);
        assert_eq!(
            tiles(&r),
            vec![
                TileCoord::new(0, 4),
                TileCoord::new(0, 3),
                TileCoord::new(0, 2)
            ]
        );
        assert!(dirs(&r).iter().all(|&d| d == Direction::Left));
    }

    #[test]
    fn l_shape_vertical_first() {
        // From (4,0) to (0,5): all vertical hops happen in the source column
        // before any horizontal hop in the sink row.
        let r = route(TileCoord::new(4, 0), TileCoord::new(0, 5), DIM);
        assert_eq!(r.hop_count(), 9);
        let ds = dirs(&r);
        let first_horizontal = ds.iter().position(|d| d.is_horizontal()).unwrap();
        assert!(ds[..first_horizontal].iter().all(|d| d.is_vertical()));
        assert!(ds[first_horizontal..].iter().all(|d| d.is_horizontal()));
        // Vertical hops stay in the source column, horizontal in sink row.
        for e in &r.events()[..first_horizontal] {
            assert_eq!(e.tile.col, 0);
        }
        for e in &r.events()[first_horizontal..] {
            assert_eq!(e.tile.row, 0);
        }
    }

    #[test]
    fn turn_tile_receives_vertical_ingress() {
        // Turn tile (sink row, source column) is the last vertical receiver.
        let r = route(TileCoord::new(3, 1), TileCoord::new(1, 4), DIM);
        let turn = TileCoord::new(1, 1);
        let ev = r.events().iter().find(|e| e.tile == turn).unwrap();
        assert_eq!(ev.true_direction, Direction::Up);
    }

    #[test]
    fn hop_count_equals_manhattan_distance() {
        for src in DIM.iter_row_major() {
            for dst in DIM.iter_row_major() {
                let r = route(src, dst, DIM);
                assert_eq!(r.hop_count(), src.hop_distance(dst), "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn odd_column_flips_horizontal_label_only() {
        let r = route(TileCoord::new(0, 0), TileCoord::new(0, 3), DIM);
        for e in r.events() {
            assert_eq!(e.true_direction, Direction::Right);
            if e.tile.col % 2 == 1 {
                assert_eq!(e.observed_label, Direction::Left);
            } else {
                assert_eq!(e.observed_label, Direction::Right);
            }
        }
    }

    #[test]
    fn vertical_labels_are_truthful_everywhere() {
        let r = route(TileCoord::new(0, 1), TileCoord::new(4, 1), DIM);
        for e in r.events() {
            assert_eq!(e.observed_label, e.true_direction);
        }
    }

    #[test]
    fn observed_horizontal_labels_alternate_along_path() {
        // Eastbound along a row: labels must alternate R,L,R,L,... starting
        // from the first receiving column's parity — the reason the true
        // horizontal direction is unrecoverable from labels alone.
        let r = route(TileCoord::new(2, 0), TileCoord::new(2, 5), DIM);
        let labels: Vec<Direction> = r.events().iter().map(|e| e.observed_label).collect();
        assert_eq!(
            labels,
            vec![
                Direction::Left,  // col 1 (odd, flipped)
                Direction::Right, // col 2
                Direction::Left,  // col 3
                Direction::Right, // col 4
                Direction::Left,  // col 5
            ]
        );
        // Westbound over the same tiles yields the same *set* of labels per
        // parity class, demonstrating the ambiguity.
        let back = route(TileCoord::new(2, 5), TileCoord::new(2, 0), DIM);
        let back_labels: Vec<Direction> = back.events().iter().map(|e| e.observed_label).collect();
        assert_eq!(
            back_labels,
            vec![
                Direction::Left,  // col 4 (even, truthful)
                Direction::Right, // col 3 (odd, flipped)
                Direction::Left,  // col 2
                Direction::Right, // col 1
                Direction::Left,  // col 0
            ]
        );
    }

    #[test]
    fn horizontal_first_reverses_segment_order() {
        let r = route_with(
            TileCoord::new(4, 0),
            TileCoord::new(2, 2),
            DIM,
            RoutingDiscipline::HorizontalFirst,
        );
        let ds = dirs(&r);
        let first_vertical = ds.iter().position(|d| d.is_vertical()).unwrap();
        assert!(ds[..first_vertical].iter().all(|d| d.is_horizontal()));
        assert!(ds[first_vertical..].iter().all(|d| d.is_vertical()));
        // Horizontal hops stay in the source row, vertical in sink column.
        for e in &r.events()[..first_vertical] {
            assert_eq!(e.tile.row, 4);
        }
        for e in &r.events()[first_vertical..] {
            assert_eq!(e.tile.col, 2);
        }
        assert_eq!(r.hop_count(), 4);
        assert_eq!(r.events().last().unwrap().tile, TileCoord::new(2, 2));
    }

    #[test]
    fn disciplines_agree_on_straight_paths() {
        for (src, dst) in [
            (TileCoord::new(0, 0), TileCoord::new(0, 4)),
            (TileCoord::new(4, 2), TileCoord::new(1, 2)),
        ] {
            let yx = route(src, dst, DIM);
            let xy = route_with(src, dst, DIM, RoutingDiscipline::HorizontalFirst);
            assert_eq!(yx, xy);
        }
    }

    #[test]
    fn links_follow_the_event_trace() {
        let r = route(TileCoord::new(2, 0), TileCoord::new(0, 1), DIM);
        let links = r.links();
        assert_eq!(links.len(), r.hop_count());
        assert_eq!(links[0].from, TileCoord::new(2, 0));
        assert_eq!(links.last().unwrap().to, TileCoord::new(0, 1));
        // Consecutive links chain.
        for w in links.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn shared_links_counts_common_directed_edges() {
        // Two southbound flows down the same column share the overlap of
        // their vertical segments.
        let a = route(TileCoord::new(0, 2), TileCoord::new(4, 2), DIM);
        let b = route(TileCoord::new(1, 2), TileCoord::new(3, 2), DIM);
        assert_eq!(shared_links(&a, &b), 2); // links 1->2 and 2->3
                                             // Opposite directions share nothing (links are directed).
        let c = route(TileCoord::new(4, 2), TileCoord::new(0, 2), DIM);
        assert_eq!(shared_links(&a, &c), 0);
        // Disjoint columns share nothing.
        let d = route(TileCoord::new(0, 5), TileCoord::new(4, 5), DIM);
        assert_eq!(shared_links(&a, &d), 0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn route_panics_outside_grid() {
        let _ = route(TileCoord::new(9, 9), TileCoord::new(0, 0), DIM);
    }
}

#[cfg(test)]
mod proptests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use proptest::prelude::*;

    fn coord_strategy(dim: GridDim) -> impl Strategy<Value = TileCoord> {
        (0..dim.rows, 0..dim.cols).prop_map(|(r, c)| TileCoord::new(r, c))
    }

    proptest! {
        #[test]
        fn route_ends_at_sink(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            if src == dst {
                prop_assert!(r.events().is_empty());
            } else {
                prop_assert_eq!(r.events().last().unwrap().tile, dst);
            }
        }

        #[test]
        fn route_is_contiguous(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            let mut prev = src;
            for e in r.events() {
                // Each event's tile is one step from the previous position in
                // the event's true direction.
                prop_assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
                prev = e.tile;
            }
        }

        #[test]
        fn vertical_receivers_share_source_column_horizontal_share_sink_row(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            for e in r.events() {
                if e.true_direction.is_vertical() {
                    prop_assert_eq!(e.tile.col, src.col);
                } else {
                    prop_assert_eq!(e.tile.row, dst.row);
                }
            }
        }

        #[test]
        fn horizontal_first_routes_are_contiguous_and_complete(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route_with(src, dst, dim, RoutingDiscipline::HorizontalFirst);
            prop_assert_eq!(r.hop_count(), src.hop_distance(dst));
            let mut prev = src;
            for e in r.events() {
                prop_assert_eq!(prev.step(e.true_direction, dim), Some(e.tile));
                prev = e.tile;
            }
            if src != dst {
                prop_assert_eq!(r.events().last().unwrap().tile, dst);
            }
            // Mirror property: horizontal receivers share the source row,
            // vertical receivers the sink column.
            for e in r.events() {
                if e.true_direction.is_horizontal() {
                    prop_assert_eq!(e.tile.row, src.row);
                } else {
                    prop_assert_eq!(e.tile.col, dst.col);
                }
            }
        }

        #[test]
        fn vertical_receivers_lie_in_row_bounding_box(
            (src, dst) in (coord_strategy(GridDim{rows:6, cols:8}),
                           coord_strategy(GridDim{rows:6, cols:8}))
        ) {
            let dim = GridDim::new(6, 8);
            let r = route(src, dst, dim);
            for e in r.events().iter().filter(|e| e.true_direction.is_vertical()) {
                // Paper Eq. (1): for up channels R_s > R_k >= R_e (and the
                // mirrored version for down channels).
                match e.true_direction {
                    Direction::Up => {
                        prop_assert!(src.row > e.tile.row && e.tile.row >= dst.row);
                    }
                    Direction::Down => {
                        prop_assert!(src.row < e.tile.row && e.tile.row <= dst.row);
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
