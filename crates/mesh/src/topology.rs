//! Data-driven topology descriptions: the generalization of the hardwired
//! die templates into a "topology zoo".
//!
//! A [`Topology`] describes everything the mapping methodology must assume
//! about an interconnect before it can fit observations to it:
//!
//! * the tile-class grid — which positions are core-capable and which hold
//!   IMC or system tiles,
//! * an optional *harvest mask* — tiles fused off (disabled) or reduced to
//!   LLC-only at manufacturing time,
//! * the routing discipline packets follow ([`RoutingDiscipline`]), and
//! * the CHA and OS-core numbering schemes that map hidden IDs onto grid
//!   positions.
//!
//! The three Xeon dies the paper measures are provided as builtin
//! descriptions ([`Topology::builtin`]); user-supplied floorplans load from
//! the `coremap-topology/v1` JSON format ([`Topology::from_json`]). Higher
//! layers treat a set of topologies as *hypotheses*: one ILP reconstruction
//! is attempted per topology and the best fit wins (see
//! `coremap-core::topology_select`).

use std::fmt;
use std::sync::LazyLock;

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::floorplan::{ChaNumbering, CoreNumbering};
use crate::route::RoutingDiscipline;
use crate::{ChaId, GridDim, TileCoord};

/// Schema tag of the topology file format.
pub const TOPOLOGY_SCHEMA: &str = "coremap-topology/v1";

/// The on-disk `coremap-topology/v1` description of a topology.
///
/// This is the serde-facing mirror of [`Topology`]: every field is plain
/// data, validation happens when converting into a `Topology` via
/// [`TryFrom`]. Serializing a `Topology` produces this spec, so a
/// parse → build → serialize round trip is byte-stable. Every field is
/// present in the JSON document (an absent harvest mask is an empty list,
/// an absent core order is `null`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Must equal [`TOPOLOGY_SCHEMA`].
    pub schema: String,
    /// Human-readable topology name, reported by hypothesis selection.
    pub name: String,
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
    /// Positions of integrated memory controller tiles.
    pub imc: Vec<TileCoord>,
    /// Positions of non-core system tiles (UPI/PCIe agents).
    pub system: Vec<TileCoord>,
    /// Order in which enabled CHAs are numbered over the grid.
    pub cha_numbering: ChaNumbering,
    /// Rule mapping core-bearing CHA IDs to OS core IDs.
    pub core_numbering: CoreNumbering,
    /// Routing discipline of the interconnect.
    pub routing: RoutingDiscipline,
    /// Harvest mask: tiles fully disabled (defective core and slice).
    pub disabled: Vec<TileCoord>,
    /// Harvest mask: tiles with the core fused off but the CHA/LLC active.
    pub llc_only: Vec<TileCoord>,
    /// Optional explicit OS-core enumeration: CHA IDs in OS-core order,
    /// overriding `core_numbering`. Must name exactly the core-bearing CHAs
    /// of the harvested grid.
    pub core_order: Option<Vec<u16>>,
}

/// A validated interconnect topology: tile-class grid, harvest mask,
/// routing discipline and ID numbering schemes.
///
/// Construct one from a [`TopologySpec`] (`TryFrom`), from JSON
/// ([`Topology::from_json`]), or look up a builtin ([`Topology::builtin`]).
/// Position accessors return precomputed slices — the tables are built once
/// at validation time, never re-derived on the mapper hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    dim: GridDim,
    imc: Vec<TileCoord>,
    system: Vec<TileCoord>,
    cha_numbering: ChaNumbering,
    core_numbering: CoreNumbering,
    routing: RoutingDiscipline,
    disabled: Vec<TileCoord>,
    llc_only: Vec<TileCoord>,
    core_order: Option<Vec<ChaId>>,
    /// Core-capable positions in CHA numbering order, precomputed.
    core_capable: Vec<TileCoord>,
}

// The vendored serde derive has no `try_from`/`into` container attributes,
// so Topology's serde impls delegate to the spec mirror by hand: serializing
// goes through `TopologySpec::from`, deserializing re-runs validation.
impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        TopologySpec::from(self.clone()).to_value()
    }
}

impl Deserialize for Topology {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let spec = TopologySpec::from_value(value)?;
        Topology::try_from(spec).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl TryFrom<TopologySpec> for Topology {
    type Error = TopologyError;

    fn try_from(spec: TopologySpec) -> Result<Self, TopologyError> {
        if spec.schema != TOPOLOGY_SCHEMA {
            return Err(TopologyError::BadSchema { found: spec.schema });
        }
        if spec.rows == 0 || spec.cols == 0 {
            return Err(TopologyError::EmptyGrid);
        }
        let dim = GridDim::new(spec.rows, spec.cols);
        if let RoutingDiscipline::Ring { .. } = spec.routing {
            let degenerate = dim.rows.min(dim.cols) < 2 && dim.tile_count() > 2;
            if !dim.tile_count().is_multiple_of(2) || degenerate {
                return Err(TopologyError::RingParity { dim });
            }
        }

        // Each grid position may belong to at most one tile-class list:
        // duplicated or cross-listed coordinates are overlapping tiles.
        let mut claimed = std::collections::BTreeSet::new();
        let classes = [&spec.imc, &spec.system, &spec.disabled, &spec.llc_only];
        for coords in classes {
            for &coord in coords {
                if !dim.contains(coord) {
                    return Err(TopologyError::OutOfGrid { coord });
                }
                if !claimed.insert(coord) {
                    return Err(TopologyError::OverlappingTiles { coord });
                }
            }
        }

        let is_capable = |c: &TileCoord| !spec.imc.contains(c) && !spec.system.contains(c);
        let core_capable: Vec<TileCoord> = match spec.cha_numbering {
            ChaNumbering::ColumnMajor => dim.iter_column_major().filter(is_capable).collect(),
            ChaNumbering::RowMajor => dim.iter_row_major().filter(is_capable).collect(),
        };

        // Validate an explicit core order against the harvested grid: it
        // must name exactly the core-bearing CHAs, and in particular must
        // not number a CHA whose core was harvested away.
        let core_order = match &spec.core_order {
            None => None,
            Some(order) => {
                let enabled: Vec<TileCoord> = core_capable
                    .iter()
                    .copied()
                    .filter(|c| !spec.disabled.contains(c))
                    .collect();
                let mut core_chas = std::collections::BTreeSet::new();
                let mut llc_chas = std::collections::BTreeSet::new();
                for (idx, coord) in enabled.iter().enumerate() {
                    if spec.llc_only.contains(coord) {
                        llc_chas.insert(idx as u16);
                    } else {
                        core_chas.insert(idx as u16);
                    }
                }
                let mut seen = std::collections::BTreeSet::new();
                for &cha in order {
                    if llc_chas.contains(&cha) {
                        return Err(TopologyError::HarvestedCoreNumbered { cha });
                    }
                    if !core_chas.contains(&cha) || !seen.insert(cha) {
                        return Err(TopologyError::BadCoreOrder { cha });
                    }
                }
                if seen.len() != core_chas.len() {
                    return Err(TopologyError::IncompleteCoreOrder {
                        listed: seen.len(),
                        cores: core_chas.len(),
                    });
                }
                Some(order.iter().map(|&c| ChaId::new(c)).collect())
            }
        };

        Ok(Topology {
            name: spec.name,
            dim,
            imc: spec.imc,
            system: spec.system,
            cha_numbering: spec.cha_numbering,
            core_numbering: spec.core_numbering,
            routing: spec.routing,
            disabled: spec.disabled,
            llc_only: spec.llc_only,
            core_order,
            core_capable,
        })
    }
}

impl From<Topology> for TopologySpec {
    fn from(t: Topology) -> TopologySpec {
        TopologySpec {
            schema: TOPOLOGY_SCHEMA.to_owned(),
            name: t.name,
            rows: t.dim.rows,
            cols: t.dim.cols,
            imc: t.imc,
            system: t.system,
            cha_numbering: t.cha_numbering,
            core_numbering: t.core_numbering,
            routing: t.routing,
            disabled: t.disabled,
            llc_only: t.llc_only,
            core_order: t
                .core_order
                .map(|o| o.iter().map(|c| c.index() as u16).collect()),
        }
    }
}

impl Topology {
    /// Topology name (unique within a hypothesis set by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid dimensions.
    pub fn dim(&self) -> GridDim {
        self.dim
    }

    /// Routing discipline of the interconnect.
    pub fn routing(&self) -> RoutingDiscipline {
        self.routing
    }

    /// CHA numbering scheme.
    pub fn cha_numbering(&self) -> ChaNumbering {
        self.cha_numbering
    }

    /// OS-core numbering scheme.
    pub fn core_numbering(&self) -> CoreNumbering {
        self.core_numbering
    }

    /// Positions of the IMC tiles (precomputed table, no allocation).
    pub fn imc_positions(&self) -> &[TileCoord] {
        &self.imc
    }

    /// Positions of the system tiles (precomputed table, no allocation).
    pub fn system_positions(&self) -> &[TileCoord] {
        &self.system
    }

    /// Core-capable positions in CHA numbering order (precomputed table).
    pub fn core_capable_positions(&self) -> &[TileCoord] {
        &self.core_capable
    }

    /// Number of core-capable tiles.
    pub fn core_capable_count(&self) -> usize {
        self.core_capable.len()
    }

    /// Harvest mask: fully disabled tiles.
    pub fn disabled_mask(&self) -> &[TileCoord] {
        &self.disabled
    }

    /// Harvest mask: LLC-only tiles.
    pub fn llc_only_mask(&self) -> &[TileCoord] {
        &self.llc_only
    }

    /// Explicit OS-core enumeration override, if the spec declared one.
    pub fn core_order(&self) -> Option<&[ChaId]> {
        self.core_order.as_deref()
    }

    /// Parses a `coremap-topology/v1` JSON document.
    pub fn from_json(json: &str) -> Result<Topology, TopologyError> {
        let spec: TopologySpec =
            serde_json::from_str(json).map_err(|e| TopologyError::Parse { msg: e.to_string() })?;
        Topology::try_from(spec)
    }

    /// Serializes to the `coremap-topology/v1` JSON format.
    ///
    /// # Panics
    ///
    /// Never panics: the spec mirror of a validated topology always
    /// serializes.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self, pretty: bool) -> String {
        let spec: TopologySpec = self.clone().into();
        let out = if pretty {
            serde_json::to_string_pretty(&spec)
        } else {
            serde_json::to_string(&spec)
        };
        // audit: allow(panic-safety): infallible — TopologySpec is a plain data struct with no map keys or non-string types that serde_json can reject
        out.expect("topology spec serializes")
    }

    /// Looks up a builtin topology by name.
    pub fn builtin(name: &str) -> Option<&'static Topology> {
        BUILTINS.iter().copied().find(|t| t.name == name)
    }

    /// All builtin topologies: the three Xeon dies plus the routing-variant
    /// hypotheses used by topology selection.
    pub fn builtins() -> &'static [&'static Topology] {
        LazyLock::force(&BUILTINS).as_slice()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} grid)", self.name, self.dim)
    }
}

/// Builds a validated topology from literal parts; used for the builtin
/// table, where the inputs are known-good by construction.
#[allow(clippy::expect_used, clippy::too_many_arguments)]
fn builtin_spec(
    name: &str,
    rows: usize,
    cols: usize,
    imc: Vec<TileCoord>,
    system: Vec<TileCoord>,
    cha_numbering: ChaNumbering,
    core_numbering: CoreNumbering,
    routing: RoutingDiscipline,
) -> Topology {
    let spec = TopologySpec {
        schema: TOPOLOGY_SCHEMA.to_owned(),
        name: name.to_owned(),
        rows,
        cols,
        imc,
        system,
        cha_numbering,
        core_numbering,
        routing,
        disabled: Vec::new(),
        llc_only: Vec::new(),
        core_order: None,
    };
    // audit: allow(panic-safety): infallible — builtin specs are literal constants validated by the builtin_* unit tests
    Topology::try_from(spec).expect("builtin topology is valid")
}

fn skylake_geometry(name: &str, routing: RoutingDiscipline) -> Topology {
    builtin_spec(
        name,
        5,
        6,
        vec![TileCoord::new(1, 0), TileCoord::new(1, 5)],
        Vec::new(),
        ChaNumbering::ColumnMajor,
        CoreNumbering::Stride4Class,
        routing,
    )
}

/// Skylake XCC server die (paper Fig. 1): 5x6 grid, IMC tiles at (1,0) and
/// (1,5), column-major CHA numbering, stride-4 core enumeration.
static SKYLAKE_XCC: LazyLock<Topology> =
    LazyLock::new(|| skylake_geometry("skylake-xcc", RoutingDiscipline::VerticalFirst));

/// Cascade Lake XCC die (the Platinum 8259CL part): geometrically identical
/// to Skylake XCC — the generations share the die layout, so hypothesis
/// selection cannot (and should not) separate them from observations alone.
static CASCADELAKE_XCC: LazyLock<Topology> =
    LazyLock::new(|| skylake_geometry("cascadelake-xcc", RoutingDiscipline::VerticalFirst));

/// Ice Lake server die (paper Fig. 5): 6x8 grid, four IMC tiles on the
/// left/right edges, four corner system tiles, row-major CHA numbering.
static ICELAKE_XCC: LazyLock<Topology> = LazyLock::new(|| {
    builtin_spec(
        "icelake-xcc",
        6,
        8,
        vec![
            TileCoord::new(2, 0),
            TileCoord::new(2, 7),
            TileCoord::new(4, 0),
            TileCoord::new(4, 7),
        ],
        vec![
            TileCoord::new(0, 0),
            TileCoord::new(0, 7),
            TileCoord::new(5, 0),
            TileCoord::new(5, 7),
        ],
        ChaNumbering::RowMajor,
        CoreNumbering::Ascending,
        RoutingDiscipline::VerticalFirst,
    )
});

/// Counterfactual Skylake-geometry die routing X-then-Y: the hypothesis the
/// routing-assumption ablation tests against.
static SKYLAKE_XCC_XFIRST: LazyLock<Topology> =
    LazyLock::new(|| skylake_geometry("skylake-xcc-xfirst", RoutingDiscipline::HorizontalFirst));

/// Counterfactual Skylake-geometry die with quadrant-local (SNC-style)
/// routing: traffic crosses quadrant boundaries through a clamped gateway.
static SKYLAKE_XCC_QUAD: LazyLock<Topology> =
    LazyLock::new(|| skylake_geometry("skylake-xcc-quad", RoutingDiscipline::QuadrantLocal));

/// A 28-tile ring interconnect modelled on a 4x7 all-core grid: every tile
/// is core-capable and packets walk a fixed Hamiltonian cycle (the *Lord of
/// the Ring(s)* interconnect family).
static RING_28: LazyLock<Topology> = LazyLock::new(|| {
    builtin_spec(
        "ring-28",
        4,
        7,
        Vec::new(),
        Vec::new(),
        ChaNumbering::ColumnMajor,
        CoreNumbering::Ascending,
        RoutingDiscipline::Ring { clockwise: true },
    )
});

static BUILTINS: LazyLock<[&'static Topology; 6]> = LazyLock::new(|| {
    [
        &SKYLAKE_XCC,
        &CASCADELAKE_XCC,
        &ICELAKE_XCC,
        &SKYLAKE_XCC_XFIRST,
        &SKYLAKE_XCC_QUAD,
        &RING_28,
    ]
});

/// Builtin topology handles, for delegation from `DieTemplate`.
pub(crate) fn skylake_xcc() -> &'static Topology {
    &SKYLAKE_XCC
}

/// See [`skylake_xcc`].
pub(crate) fn icelake_xcc() -> &'static Topology {
    &ICELAKE_XCC
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn base_spec() -> TopologySpec {
        TopologySpec {
            schema: TOPOLOGY_SCHEMA.to_owned(),
            name: "test".to_owned(),
            rows: 3,
            cols: 4,
            imc: vec![TileCoord::new(1, 0)],
            system: Vec::new(),
            cha_numbering: ChaNumbering::ColumnMajor,
            core_numbering: CoreNumbering::Ascending,
            routing: RoutingDiscipline::VerticalFirst,
            disabled: Vec::new(),
            llc_only: Vec::new(),
            core_order: None,
        }
    }

    #[test]
    fn builtins_cover_the_three_xeon_dies_and_variants() {
        let names: Vec<&str> = Topology::builtins().iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "skylake-xcc",
                "cascadelake-xcc",
                "icelake-xcc",
                "skylake-xcc-xfirst",
                "skylake-xcc-quad",
                "ring-28",
            ]
        );
        assert!(Topology::builtin("skylake-xcc").is_some());
        assert!(Topology::builtin("nope").is_none());
    }

    #[test]
    fn skylake_builtin_matches_paper_geometry() {
        let t = Topology::builtin("skylake-xcc").unwrap();
        assert_eq!(t.dim(), GridDim::new(5, 6));
        assert_eq!(t.core_capable_count(), 28);
        assert_eq!(t.imc_positions().len(), 2);
        assert_eq!(t.core_capable_positions()[0], TileCoord::new(0, 0));
        // (1,0) is an IMC: capable order skips straight to (2,0).
        assert_eq!(t.core_capable_positions()[1], TileCoord::new(2, 0));
    }

    #[test]
    fn cascadelake_shares_skylake_geometry() {
        let skx = Topology::builtin("skylake-xcc").unwrap();
        let clx = Topology::builtin("cascadelake-xcc").unwrap();
        assert_eq!(skx.dim(), clx.dim());
        assert_eq!(skx.core_capable_positions(), clx.core_capable_positions());
        assert_ne!(skx.name(), clx.name());
    }

    #[test]
    fn rejects_wrong_schema() {
        let spec = TopologySpec {
            schema: "coremap-topology/v0".to_owned(),
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::BadSchema { .. })
        ));
    }

    #[test]
    fn rejects_overlapping_tiles() {
        let c = TileCoord::new(1, 0);
        let spec = TopologySpec {
            system: vec![c], // also an IMC in base_spec
            ..base_spec()
        };
        assert_eq!(
            Topology::try_from(spec).unwrap_err(),
            TopologyError::OverlappingTiles { coord: c }
        );
        // A duplicate within one list is the same defect.
        let spec = TopologySpec {
            disabled: vec![TileCoord::new(0, 0), TileCoord::new(0, 0)],
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::OverlappingTiles { .. })
        ));
    }

    #[test]
    fn rejects_out_of_grid_tiles() {
        let spec = TopologySpec {
            disabled: vec![TileCoord::new(9, 9)],
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::OutOfGrid { .. })
        ));
    }

    #[test]
    fn rejects_harvested_core_still_numbered() {
        // 3x4 grid minus one IMC = 11 capable tiles. CHA 0 sits at (0,0);
        // mark it LLC-only (core harvested) and still list it in core_order.
        let spec = TopologySpec {
            llc_only: vec![TileCoord::new(0, 0)],
            core_order: Some((0..11).collect()),
            ..base_spec()
        };
        assert_eq!(
            Topology::try_from(spec).unwrap_err(),
            TopologyError::HarvestedCoreNumbered { cha: 0 }
        );
    }

    #[test]
    fn rejects_incomplete_or_bogus_core_order() {
        let spec = TopologySpec {
            core_order: Some(vec![0, 1]),
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::IncompleteCoreOrder { .. })
        ));
        let spec = TopologySpec {
            core_order: Some(vec![0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::BadCoreOrder { .. })
        ));
    }

    #[test]
    fn rejects_odd_ring() {
        let spec = TopologySpec {
            rows: 3,
            cols: 3,
            imc: Vec::new(),
            routing: RoutingDiscipline::Ring { clockwise: true },
            ..base_spec()
        };
        assert!(matches!(
            Topology::try_from(spec),
            Err(TopologyError::RingParity { .. })
        ));
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let topo = Topology::builtin("icelake-xcc").unwrap();
        let json = topo.to_json(true);
        let parsed = Topology::from_json(&json).unwrap();
        assert_eq!(&parsed, topo);
        assert_eq!(parsed.to_json(true), json);
    }

    #[test]
    fn from_json_reports_parse_errors() {
        assert!(matches!(
            Topology::from_json("{not json"),
            Err(TopologyError::Parse { .. })
        ));
    }
}
