//! # coremap-mesh
//!
//! Substrate model of the Intel Xeon Scalable mesh interconnect: the grid of
//! *core tiles* that the mapping methodology of *"Know Your Neighbor:
//! Physically Locating Xeon Processor Cores on the Core Tile Grid"* (DATE
//! 2022) reverse-engineers.
//!
//! The crate provides:
//!
//! * Strongly-typed identifiers ([`ChaId`], [`OsCoreId`], [`Ppin`]) and grid
//!   geometry ([`TileCoord`], [`GridDim`], [`Direction`]).
//! * [`Floorplan`]s describing which grid position holds which kind of tile
//!   (core + CHA/LLC, LLC-only, disabled core, integrated memory controller),
//!   plus die templates for the Skylake/Cascade Lake XCC die and the Ice Lake
//!   die, with defect-driven tile disabling and the column-major CHA
//!   renumbering observed in the paper (Sec. III-B).
//! * Dimension-order ("Y then X") [`route`](route::route) tracing that yields
//!   the per-tile *ingress* ring-channel events an uncore PMON would count,
//!   including the odd-column horizontal channel flip that makes the true
//!   left/right travel direction unobservable (Sec. II-C.4).
//!
//! Higher layers ([`coremap-uncore`](https://docs.rs/coremap-uncore),
//! [`coremap-core`](https://docs.rs/coremap-core)) drive traffic through a
//! floorplan and reconstruct it from the observable events only.
//!
//! ```
//! use coremap_mesh::{DieTemplate, FloorplanBuilder, TileCoord};
//!
//! # fn main() -> Result<(), coremap_mesh::FloorplanError> {
//! // A fully-enabled Skylake XCC die: 28 core tiles on a 5x6 grid.
//! let plan = FloorplanBuilder::new(DieTemplate::SkylakeXcc).build()?;
//! assert_eq!(plan.cha_count(), 28);
//! assert_eq!(plan.dim().rows, 5);
//! assert_eq!(plan.dim().cols, 6);
//! // The tile in the upper-left corner is a core tile with CHA 0.
//! let coord = TileCoord::new(0, 0);
//! assert!(plan.tile(coord).kind().has_cha());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod floorplan;
mod geom;
mod ids;
pub mod route;
mod tile;
pub mod topology;

pub use error::{FloorplanError, TopologyError};
pub use floorplan::{ChaNumbering, CoreNumbering, DieTemplate, Floorplan, FloorplanBuilder};
pub use geom::{Direction, GridDim, TileCoord};
pub use ids::{ChaId, OsCoreId, Ppin};
pub use route::{IngressEvent, Link, Route, RoutingDiscipline};
pub use tile::{Tile, TileKind};
pub use topology::{Topology, TopologySpec, TOPOLOGY_SCHEMA};
