//! Strongly-typed identifiers used throughout the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a Cache-Home Agent (CHA), the mesh stop of a core tile.
///
/// CHA IDs index the uncore-PMON MSR banks. On Skylake/Cascade Lake parts
/// they are assigned in column-major order over the enabled tiles of the die
/// (paper Sec. III-B); crucially they are *not* the IDs the operating system
/// uses for cores, and the mapping between the two ID spaces is the subject
/// of step 1 of the methodology (Sec. II-A).
///
/// ```
/// use coremap_mesh::ChaId;
/// let cha = ChaId::new(7);
/// assert_eq!(cha.index(), 7);
/// assert_eq!(cha.to_string(), "CHA7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChaId(u16);

impl ChaId {
    /// Creates a CHA identifier from its raw index.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Raw index of this CHA, usable to address its PMON MSR bank.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHA{}", self.0)
    }
}

impl From<u16> for ChaId {
    fn from(v: u16) -> Self {
        Self::new(v)
    }
}

/// Identifier of a logical processor core as enumerated by the operating
/// system (e.g. the `cpuN` index on Linux, with hyperthreading folded away).
///
/// Worker threads are pinned using OS core IDs; mesh traffic is observed per
/// [`ChaId`](crate::ChaId). The two spaces are related by a hidden,
/// per-instance mapping (paper Table I).
///
/// ```
/// use coremap_mesh::OsCoreId;
/// let core = OsCoreId::new(3);
/// assert_eq!(core.index(), 3);
/// assert_eq!(core.to_string(), "cpu3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OsCoreId(u16);

impl OsCoreId {
    /// Creates an OS core identifier from its raw index.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Raw index of this core in the OS enumeration order.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OsCoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u16> for OsCoreId {
    fn from(v: u16) -> Self {
        Self::new(v)
    }
}

/// Protected Processor Inventory Number: the per-chip serial number exposed
/// through an MSR on Xeon parts.
///
/// The paper associates each recovered core map with the PPIN of the CPU
/// instance it was measured on, so the (root-privileged) mapping step has to
/// run only once per physical chip.
///
/// ```
/// use coremap_mesh::Ppin;
/// let ppin = Ppin::new(0xDEAD_BEEF_0042);
/// assert_eq!(ppin.value(), 0xDEAD_BEEF_0042);
/// assert_eq!(format!("{ppin}"), "PPIN-0000deadbeef0042");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ppin(u64);

impl Ppin {
    /// Wraps a raw 64-bit PPIN value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Raw 64-bit value as read from the PPIN MSR.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ppin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPIN-{:016x}", self.0)
    }
}

impl From<u64> for Ppin {
    fn from(v: u64) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cha_id_round_trip() {
        let cha = ChaId::new(25);
        assert_eq!(cha.index(), 25);
        assert_eq!(ChaId::from(25u16), cha);
    }

    #[test]
    fn os_core_id_round_trip() {
        let core = OsCoreId::new(17);
        assert_eq!(core.index(), 17);
        assert_eq!(OsCoreId::from(17u16), core);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ChaId::new(2) < ChaId::new(10));
        assert!(OsCoreId::new(0) < OsCoreId::new(1));
    }

    #[test]
    fn ppin_display_is_hex_padded() {
        assert_eq!(Ppin::new(1).to_string(), "PPIN-0000000000000001");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ChaId::new(4), "four");
        assert_eq!(m.get(&ChaId::new(4)), Some(&"four"));
    }
}
