//! Grid geometry: coordinates, dimensions and ring-channel directions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Dimensions of a core tile grid: `rows x cols` (the paper's `T_h x T_w`).
///
/// ```
/// use coremap_mesh::{GridDim, TileCoord};
/// let dim = GridDim::new(5, 6);
/// assert_eq!(dim.tile_count(), 30);
/// assert!(dim.contains(TileCoord::new(4, 5)));
/// assert!(!dim.contains(TileCoord::new(5, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridDim {
    /// Number of tile rows (`T_h`).
    pub rows: usize,
    /// Number of tile columns (`T_w`).
    pub cols: usize,
}

impl GridDim {
    /// Creates a new grid dimension.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        Self { rows, cols }
    }

    /// Total number of grid positions.
    pub const fn tile_count(self) -> usize {
        self.rows * self.cols
    }

    /// Whether `coord` lies inside the grid.
    pub const fn contains(self, coord: TileCoord) -> bool {
        coord.row < self.rows && coord.col < self.cols
    }

    /// Iterates over every coordinate in column-major order (columns left to
    /// right, rows top to bottom within a column) — the order in which
    /// Skylake-generation dies assign CHA IDs to enabled tiles.
    pub fn iter_column_major(self) -> impl Iterator<Item = TileCoord> {
        let rows = self.rows;
        (0..self.cols).flat_map(move |col| (0..rows).map(move |row| TileCoord { row, col }))
    }

    /// Iterates over every coordinate in row-major order.
    pub fn iter_row_major(self) -> impl Iterator<Item = TileCoord> {
        let cols = self.cols;
        (0..self.rows).flat_map(move |row| (0..cols).map(move |col| TileCoord { row, col }))
    }

    /// Linear index of a coordinate in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn linear_index(self, coord: TileCoord) -> usize {
        assert!(self.contains(coord), "coordinate {coord} outside {self}");
        coord.row * self.cols + coord.col
    }
}

impl fmt::Display for GridDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Position of a tile on the grid. Row 0 is the top ("north") edge, column 0
/// the left ("west") edge, matching the die photographs in the paper's
/// Fig. 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Row index (0 = top).
    pub row: usize,
    /// Column index (0 = left).
    pub col: usize,
}

impl TileCoord {
    /// Creates a coordinate.
    pub const fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }

    /// Manhattan (hop) distance to `other`: the number of mesh links a
    /// dimension-order-routed packet traverses between the two tiles.
    ///
    /// ```
    /// use coremap_mesh::TileCoord;
    /// let a = TileCoord::new(0, 0);
    /// let b = TileCoord::new(2, 3);
    /// assert_eq!(a.hop_distance(b), 5);
    /// ```
    pub fn hop_distance(self, other: TileCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// The neighbouring coordinate in `dir`, if it stays within `dim`.
    pub fn step(self, dir: Direction, dim: GridDim) -> Option<TileCoord> {
        let (row, col) = match dir {
            Direction::Up => (self.row.checked_sub(1)?, self.col),
            Direction::Down => (self.row + 1, self.col),
            Direction::Left => (self.row, self.col.checked_sub(1)?),
            Direction::Right => (self.row, self.col + 1),
        };
        let next = TileCoord { row, col };
        dim.contains(next).then_some(next)
    }

    /// All in-grid neighbours of this coordinate, paired with the direction
    /// leading to them.
    pub fn neighbors(self, dim: GridDim) -> impl Iterator<Item = (Direction, TileCoord)> {
        Direction::ALL
            .into_iter()
            .filter_map(move |dir| self.step(dir, dim).map(|c| (dir, c)))
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r{}, c{})", self.row, self.col)
    }
}

/// Travel direction of a packet on the mesh, equivalently the ring data
/// ("BL") channel class its hop occupies.
///
/// The uncore PMON exposes one *ingress-occupancy* counter per direction
/// (`VERT_RING_BL_IN_USE.{UP,DN}` and `HORZ_RING_BL_IN_USE.{LF,RT}`, paper
/// Sec. II-B). Vertical directions are reported truthfully; horizontal
/// directions are scrambled by the odd-column tile flip (see
/// [`route`](crate::route)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward row 0 (north).
    Up,
    /// Toward the last row (south).
    Down,
    /// Toward column 0 (west).
    Left,
    /// Toward the last column (east).
    Right,
}

impl Direction {
    /// All four directions, vertical first.
    pub const ALL: [Direction; 4] = [
        Direction::Up,
        Direction::Down,
        Direction::Left,
        Direction::Right,
    ];

    /// Whether this is a vertical (up/down) channel.
    pub const fn is_vertical(self) -> bool {
        matches!(self, Direction::Up | Direction::Down)
    }

    /// Whether this is a horizontal (left/right) channel.
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Direction::Left | Direction::Right)
    }

    /// The opposite direction.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
        }
    }

    /// Horizontal mirror: swaps left and right, leaves vertical directions
    /// untouched. This is what the odd-column tile flip applies to the
    /// *observed label* of a horizontal channel.
    pub const fn mirror_horizontal(self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
            other => other,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Up => "up",
            Direction::Down => "down",
            Direction::Left => "left",
            Direction::Right => "right",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_order_matches_cha_numbering() {
        let dim = GridDim::new(2, 3);
        let order: Vec<_> = dim.iter_column_major().collect();
        assert_eq!(
            order,
            vec![
                TileCoord::new(0, 0),
                TileCoord::new(1, 0),
                TileCoord::new(0, 1),
                TileCoord::new(1, 1),
                TileCoord::new(0, 2),
                TileCoord::new(1, 2),
            ]
        );
    }

    #[test]
    fn row_major_covers_all_tiles_once() {
        let dim = GridDim::new(3, 4);
        let order: Vec<_> = dim.iter_row_major().collect();
        assert_eq!(order.len(), 12);
        let mut dedup = order.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn step_respects_bounds() {
        let dim = GridDim::new(2, 2);
        let origin = TileCoord::new(0, 0);
        assert_eq!(origin.step(Direction::Up, dim), None);
        assert_eq!(origin.step(Direction::Left, dim), None);
        assert_eq!(
            origin.step(Direction::Down, dim),
            Some(TileCoord::new(1, 0))
        );
        assert_eq!(
            origin.step(Direction::Right, dim),
            Some(TileCoord::new(0, 1))
        );
    }

    #[test]
    fn neighbors_of_interior_tile() {
        let dim = GridDim::new(3, 3);
        let mid = TileCoord::new(1, 1);
        assert_eq!(mid.neighbors(dim).count(), 4);
        let corner = TileCoord::new(0, 0);
        assert_eq!(corner.neighbors(dim).count(), 2);
    }

    #[test]
    fn hop_distance_is_symmetric() {
        let a = TileCoord::new(1, 4);
        let b = TileCoord::new(3, 0);
        assert_eq!(a.hop_distance(b), b.hop_distance(a));
        assert_eq!(a.hop_distance(a), 0);
    }

    #[test]
    fn direction_predicates() {
        assert!(Direction::Up.is_vertical());
        assert!(!Direction::Up.is_horizontal());
        assert!(Direction::Left.is_horizontal());
        assert_eq!(Direction::Up.opposite(), Direction::Down);
        assert_eq!(Direction::Left.mirror_horizontal(), Direction::Right);
        assert_eq!(Direction::Down.mirror_horizontal(), Direction::Down);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        let _ = GridDim::new(0, 3);
    }

    #[test]
    fn linear_index_row_major() {
        let dim = GridDim::new(3, 4);
        assert_eq!(dim.linear_index(TileCoord::new(0, 0)), 0);
        assert_eq!(dim.linear_index(TileCoord::new(1, 2)), 6);
        assert_eq!(dim.linear_index(TileCoord::new(2, 3)), 11);
    }
}
