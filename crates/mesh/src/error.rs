//! Error types for floorplan construction.

use std::fmt;

use crate::TileCoord;

/// Error building a [`Floorplan`](crate::Floorplan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanError {
    /// A position passed to the builder is outside the die grid.
    OutOfGrid {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// A position passed to the builder does not hold a core-capable tile
    /// (it is an IMC or system tile on the die template).
    NotCoreCapable {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The same position was both disabled and marked LLC-only.
    ConflictingAssignment {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The requested configuration leaves no enabled cores.
    NoCores,
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfGrid { coord } => {
                write!(f, "tile position {coord} is outside the die grid")
            }
            FloorplanError::NotCoreCapable { coord } => {
                write!(f, "tile position {coord} is not core-capable on this die")
            }
            FloorplanError::ConflictingAssignment { coord } => {
                write!(f, "tile position {coord} is both disabled and LLC-only")
            }
            FloorplanError::NoCores => f.write_str("floorplan would have no enabled cores"),
        }
    }
}

impl std::error::Error for FloorplanError {}
