//! Error types for floorplan and topology construction.

use std::fmt;

use crate::{GridDim, TileCoord};

/// Error building a [`Floorplan`](crate::Floorplan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanError {
    /// A position passed to the builder is outside the die grid.
    OutOfGrid {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// A position passed to the builder does not hold a core-capable tile
    /// (it is an IMC or system tile on the die template).
    NotCoreCapable {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The same position was both disabled and marked LLC-only.
    ConflictingAssignment {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The requested configuration leaves no enabled cores.
    NoCores,
    /// Extra tiles were harvested on a topology that pins an explicit core
    /// order, invalidating its CHA numbering.
    CoreOrderConflict,
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfGrid { coord } => {
                write!(f, "tile position {coord} is outside the die grid")
            }
            FloorplanError::NotCoreCapable { coord } => {
                write!(f, "tile position {coord} is not core-capable on this die")
            }
            FloorplanError::ConflictingAssignment { coord } => {
                write!(f, "tile position {coord} is both disabled and LLC-only")
            }
            FloorplanError::NoCores => f.write_str("floorplan would have no enabled cores"),
            FloorplanError::CoreOrderConflict => {
                f.write_str("extra harvest invalidates the topology's explicit core order")
            }
        }
    }
}

impl std::error::Error for FloorplanError {}

/// Error validating a [`Topology`](crate::Topology) description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The document's schema tag is not `coremap-topology/v1`.
    BadSchema {
        /// The schema string found in the document.
        found: String,
    },
    /// The grid has zero rows or columns.
    EmptyGrid,
    /// A tile-class position lies outside the declared grid.
    OutOfGrid {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The same grid position is claimed by more than one tile class (or
    /// listed twice within one class).
    OverlappingTiles {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// The explicit core order numbers a CHA whose core the harvest mask
    /// fused off (an LLC-only tile cannot appear in the OS enumeration).
    HarvestedCoreNumbered {
        /// The CHA ID that was numbered despite being harvested.
        cha: u16,
    },
    /// The explicit core order names a CHA that does not exist or names one
    /// twice.
    BadCoreOrder {
        /// The offending CHA ID.
        cha: u16,
    },
    /// The explicit core order does not cover every core-bearing CHA.
    IncompleteCoreOrder {
        /// Number of CHAs listed.
        listed: usize,
        /// Number of core-bearing CHAs on the harvested grid.
        cores: usize,
    },
    /// A ring routing discipline needs a grid that admits a Hamiltonian
    /// cycle (even tile count, no degenerate single-row/column line).
    RingParity {
        /// The offending grid dimensions.
        dim: GridDim,
    },
    /// The document is not valid JSON for the spec shape.
    Parse {
        /// Parser diagnostic.
        msg: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::BadSchema { found } => {
                write!(f, "unsupported topology schema '{found}'")
            }
            TopologyError::EmptyGrid => f.write_str("topology grid has zero extent"),
            TopologyError::OutOfGrid { coord } => {
                write!(f, "tile position {coord} is outside the topology grid")
            }
            TopologyError::OverlappingTiles { coord } => {
                write!(
                    f,
                    "tile position {coord} is claimed by more than one tile class"
                )
            }
            TopologyError::HarvestedCoreNumbered { cha } => {
                write!(f, "core order numbers CHA {cha} whose core is harvested")
            }
            TopologyError::BadCoreOrder { cha } => {
                write!(
                    f,
                    "core order entry {cha} is not a distinct core-bearing CHA"
                )
            }
            TopologyError::IncompleteCoreOrder { listed, cores } => {
                write!(f, "core order lists {listed} of {cores} core-bearing CHAs")
            }
            TopologyError::RingParity { dim } => {
                write!(
                    f,
                    "ring routing cannot close a Hamiltonian cycle on a {dim} grid"
                )
            }
            TopologyError::Parse { msg } => write!(f, "topology document parse error: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
